"""Unit tests for mailboxes, barriers and latches."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.resources import Barrier, Latch, Mailbox


class TestMailbox:
    def test_deliver_then_receive(self):
        sim = Simulator()
        box = Mailbox(sim)
        box.deliver("env1", "payload1")

        def recv():
            env, payload = yield box.receive(lambda e: True)
            return (env, payload)

        p = sim.spawn(recv())
        sim.run()
        assert p.value == ("env1", "payload1")

    def test_receive_then_deliver(self):
        sim = Simulator()
        box = Mailbox(sim)

        def recv():
            return (yield box.receive(lambda e: e == "x"))

        def send():
            yield 1.0
            box.deliver("x", 42)

        p = sim.spawn(recv())
        sim.spawn(send())
        sim.run()
        assert p.value == ("x", 42)
        assert sim.now == 1.0

    def test_predicate_matching_skips_nonmatching(self):
        sim = Simulator()
        box = Mailbox(sim)
        box.deliver("a", 1)
        box.deliver("b", 2)

        def recv():
            return (yield box.receive(lambda e: e == "b"))

        p = sim.spawn(recv())
        sim.run()
        assert p.value == ("b", 2)
        assert box.unexpected_count == 1  # "a" still queued

    def test_fifo_within_matching(self):
        sim = Simulator()
        box = Mailbox(sim)
        box.deliver("x", "first")
        box.deliver("x", "second")
        results = []

        def recv():
            for _ in range(2):
                _e, p = yield box.receive(lambda e: e == "x")
                results.append(p)

        sim.spawn(recv())
        sim.run()
        assert results == ["first", "second"]

    def test_posted_receives_fifo(self):
        sim = Simulator()
        box = Mailbox(sim)
        results = []

        def recv(i):
            _e, p = yield box.receive(lambda e: True)
            results.append((i, p))

        sim.spawn(recv(0))
        sim.spawn(recv(1))

        def send():
            yield 1.0
            box.deliver("m", "one")
            box.deliver("m", "two")

        sim.spawn(send())
        sim.run()
        assert results == [(0, "one"), (1, "two")]

    def test_probe(self):
        sim = Simulator()
        box = Mailbox(sim)
        assert not box.probe(lambda e: True)
        box.deliver("e", 0)
        assert box.probe(lambda e: True)
        assert not box.probe(lambda e: e == "other")


class TestBarrier:
    def test_barrier_releases_all_at_last_arrival(self):
        sim = Simulator()
        bar = Barrier(sim, 3)
        times = []

        def worker(delay):
            yield delay
            yield bar.arrive()
            times.append(sim.now)

        for d in (1.0, 2.0, 5.0):
            sim.spawn(worker(d))
        sim.run()
        assert times == [5.0, 5.0, 5.0]

    def test_barrier_is_reusable(self):
        sim = Simulator()
        bar = Barrier(sim, 2)
        log = []

        def worker(i):
            for round_no in range(3):
                yield (i + 1) * 1.0
                yield bar.arrive()
                log.append((round_no, i, sim.now))

        sim.spawn(worker(0))
        sim.spawn(worker(1))
        sim.run()
        rounds = {r for r, _i, _t in log}
        assert rounds == {0, 1, 2}
        # both workers leave each round at the same time
        for r in rounds:
            ts = {t for rr, _i, t in log if rr == r}
            assert len(ts) == 1

    def test_size_one_barrier_is_noop(self):
        sim = Simulator()
        bar = Barrier(sim, 1)

        def worker():
            yield bar.arrive()
            return sim.now

        p = sim.spawn(worker())
        sim.run()
        assert p.value == 0.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Barrier(Simulator(), 0)


class TestLatch:
    def test_latch_counts_down(self):
        sim = Simulator()
        latch = Latch(sim, 3)

        def waiter():
            return (yield latch.event)

        p = sim.spawn(waiter())
        latch.hit()
        latch.hit()
        latch.hit("done")
        sim.run()
        assert p.value == "done"

    def test_extra_hit_rejected(self):
        sim = Simulator()
        latch = Latch(sim, 1)
        latch.hit()
        with pytest.raises(RuntimeError):
            latch.hit()

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            Latch(Simulator(), 0)
