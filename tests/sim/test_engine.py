"""Unit tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.sim.engine import AllOf, DeadlockError, Simulator


class TestClockAndTimeouts:
    def test_time_advances_by_yielded_delays(self):
        sim = Simulator()
        log = []

        def proc():
            log.append(sim.now)
            yield 1.5
            log.append(sim.now)
            yield 2.5
            log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [0.0, 1.5, 4.0]

    def test_zero_delay_allowed(self):
        sim = Simulator()

        def proc():
            yield 0
            return sim.now

        p = sim.spawn(proc())
        sim.run()
        assert p.value == 0.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.timeout(-1)

    def test_run_until(self):
        sim = Simulator()

        def proc():
            yield 10.0

        sim.spawn(proc())
        assert sim.run(until=3.0) == 3.0
        assert sim.now == 3.0
        sim.run()
        assert sim.now == 10.0

    def test_fifo_tie_break_is_deterministic(self):
        sim = Simulator()
        order = []

        def proc(tag):
            yield 1.0
            order.append(tag)

        for i in range(5):
            sim.spawn(proc(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]


class TestEvents:
    def test_event_wakes_waiter_with_value(self):
        sim = Simulator()
        ev = sim.event()
        got = []

        def waiter():
            got.append((yield ev))

        def firer():
            yield 2.0
            ev.trigger("hello")

        sim.spawn(waiter())
        sim.spawn(firer())
        sim.run()
        assert got == ["hello"]
        assert sim.now == 2.0

    def test_already_triggered_event_resumes_immediately(self):
        sim = Simulator()
        ev = sim.event()
        ev.trigger(42)

        def waiter():
            return (yield ev)

        p = sim.spawn(waiter())
        sim.run()
        assert p.value == 42

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.trigger()
        with pytest.raises(RuntimeError):
            ev.trigger()

    def test_multiple_waiters_all_wake(self):
        sim = Simulator()
        ev = sim.event()
        woke = []

        def waiter(i):
            yield ev
            woke.append(i)

        for i in range(4):
            sim.spawn(waiter(i))

        def firer():
            yield 1.0
            ev.trigger()

        sim.spawn(firer())
        sim.run()
        assert sorted(woke) == [0, 1, 2, 3]


class TestJoinAndAllOf:
    def test_join_returns_child_value(self):
        sim = Simulator()

        def child():
            yield 3.0
            return "result"

        def parent():
            value = yield sim.spawn(child())
            return (value, sim.now)

        p = sim.spawn(parent())
        sim.run()
        assert p.value == ("result", 3.0)

    def test_join_finished_process(self):
        sim = Simulator()

        def child():
            return 7
            yield  # pragma: no cover

        def parent():
            c = sim.spawn(child())
            yield 5.0
            return (yield c)

        p = sim.spawn(parent())
        sim.run()
        assert p.value == 7

    def test_allof_waits_for_slowest(self):
        sim = Simulator()

        def main():
            evs = [sim.timeout(d, value=d) for d in (1.0, 4.0, 2.0)]
            values = yield AllOf(evs)
            return (values, sim.now)

        p = sim.spawn(main())
        sim.run()
        assert p.value == ([1.0, 4.0, 2.0], 4.0)

    def test_allof_with_all_triggered(self):
        sim = Simulator()

        def main():
            evs = [sim.event() for _ in range(2)]
            for i, ev in enumerate(evs):
                ev.trigger(i)
            return (yield AllOf(evs))

        p = sim.spawn(main())
        sim.run()
        assert p.value == [0, 1]


class TestErrors:
    def test_deadlock_detection(self):
        sim = Simulator()

        def stuck():
            yield sim.event()  # nobody will ever trigger this

        sim.spawn(stuck())
        with pytest.raises(DeadlockError):
            sim.run()

    def test_bad_yield_type(self):
        sim = Simulator()

        def bad():
            yield "nonsense"

        sim.spawn(bad())
        with pytest.raises(TypeError):
            sim.run()

    def test_exception_propagates(self):
        sim = Simulator()

        def boom():
            yield 1.0
            raise ValueError("inside process")

        sim.spawn(boom())
        with pytest.raises(ValueError, match="inside process"):
            sim.run()

    def test_value_of_running_process_rejected(self):
        sim = Simulator()

        def proc():
            yield 1.0

        p = sim.spawn(proc())
        with pytest.raises(RuntimeError):
            _ = p.value


class TestCallLater:
    def test_call_later_fires_in_order(self):
        sim = Simulator()
        log = []
        sim.call_later(2.0, log.append, "b")
        sim.call_later(1.0, log.append, "a")
        sim.call_later(2.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_call_later_negative_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.call_later(-0.1, print)
