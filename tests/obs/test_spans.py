"""Unit tests for runtime spans and the Chrome-trace export."""

from __future__ import annotations

import json
import os
import threading

from repro.obs import spans as sp


class TestSpanRecorder:
    def test_records_name_duration_and_attrs(self):
        rec = sp.SpanRecorder()
        with rec.record("stage", app="bt"):
            pass
        (span,) = rec.spans()
        assert span.name == "stage"
        assert span.duration >= 0.0
        assert span.attrs == {"app": "bt"}
        assert span.depth == 0

    def test_nesting_tracks_depth(self):
        rec = sp.SpanRecorder()
        with rec.record("outer"):
            with rec.record("inner"):
                pass
        by_name = {s.name: s for s in rec.spans()}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1

    def test_span_recorded_even_on_error(self):
        rec = sp.SpanRecorder()
        try:
            with rec.record("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert len(rec) == 1

    def test_max_spans_drops_and_counts(self):
        rec = sp.SpanRecorder(max_spans=2)
        for _ in range(5):
            with rec.record("s"):
                pass
        assert len(rec) == 2
        assert rec.dropped == 3

    def test_totals_aggregate_per_name(self):
        rec = sp.SpanRecorder()
        for _ in range(3):
            with rec.record("a"):
                pass
        with rec.record("b"):
            pass
        totals = rec.totals()
        assert totals["a"]["count"] == 3
        assert totals["b"]["count"] == 1
        assert totals["a"]["total_s"] >= totals["a"]["max_s"]


class TestProcessWideSpan:
    def test_noop_when_disabled(self):
        sp.disable_spans()
        assert not sp.spans_enabled()
        ctx = sp.span("anything")
        assert ctx is sp._NULL_SPAN
        with ctx:
            pass  # must be a working (no-op) context manager

    def test_span_recording_scopes_and_restores(self):
        sp.disable_spans()
        with sp.span_recording() as rec:
            assert sp.spans_enabled()
            with sp.span("inside", k=1):
                pass
        assert not sp.spans_enabled()
        assert [s.name for s in rec.spans()] == ["inside"]

    def test_enable_disable(self):
        rec = sp.enable_spans()
        try:
            assert sp.get_recorder() is rec
            with sp.span("x"):
                pass
            assert len(rec) == 1
        finally:
            sp.disable_spans()
        assert sp.get_recorder() is None


class TestChromeTraceExport:
    def test_event_shape_and_units(self, tmp_path):
        rec = sp.SpanRecorder()
        with rec.record("outer", app="cg"):
            with rec.record("inner"):
                pass
        trace = rec.to_chrome_trace()
        assert trace["displayTimeUnit"] == "ms"
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 2
        for ev in slices:
            assert ev["ts"] >= 0.0 and ev["dur"] >= 0.0
            assert "pid" in ev and "tid" in ev
        # sorted by start time: outer starts first
        assert slices[0]["name"] == "outer"
        assert slices[0]["args"]["app"] == "cg"

        path = tmp_path / "trace.json"
        rec.dump(path)
        assert json.loads(path.read_text())["traceEvents"] == trace["traceEvents"]

    def test_spans_carry_real_pid(self):
        rec = sp.SpanRecorder()
        with rec.record("here"):
            pass
        (span,) = rec.spans()
        assert span.pid == os.getpid()
        (slice_ev,) = [e for e in rec.to_chrome_trace()["traceEvents"] if e["ph"] == "X"]
        assert slice_ev["pid"] == os.getpid()

    def test_two_threads_get_distinct_tids_and_metadata(self):
        """Spans recorded on two threads must carry distinct ``tid``s and
        the export must name both threads — otherwise chrome://tracing
        collapses them onto one lane."""
        rec = sp.SpanRecorder()

        def work(name: str):
            with rec.record(name):
                pass

        t = threading.Thread(target=work, args=("worker",))
        with rec.record("main"):
            pass
        t.start()
        t.join()
        by_name = {s.name: s for s in rec.spans()}
        assert by_name["main"].thread_id != by_name["worker"].thread_id
        assert by_name["main"].pid == by_name["worker"].pid == os.getpid()

        trace = rec.to_chrome_trace()
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert {e["tid"] for e in slices} == {
            by_name["main"].thread_id,
            by_name["worker"].thread_id,
        }
        # one thread_name metadata record per (pid, tid) lane, first
        assert len(meta) == 2
        assert all(e["name"] == "thread_name" for e in meta)
        assert {(e["pid"], e["tid"]) for e in meta} == {
            (s["pid"], s["tid"]) for s in slices
        }
        assert trace["traceEvents"][: len(meta)] == meta


class TestEmit:
    def test_emit_records_a_finished_interval(self):
        import time

        rec = sp.SpanRecorder()
        t0 = time.perf_counter()
        rec.emit("client.observe", t0, 42e-6, sid="cAAA", rid=3)
        (span,) = rec.spans()
        assert span.name == "client.observe"
        assert span.duration == 42e-6
        assert span.attrs == {"sid": "cAAA", "rid": 3}
        assert span.pid == os.getpid()
        assert span.thread_id == threading.get_ident()

    def test_emit_respects_max_spans(self):
        rec = sp.SpanRecorder(max_spans=2)
        for i in range(5):
            rec.emit("x", 0.0, 0.0, i=i)
        assert len(rec) == 2
        assert rec.dropped == 3


class TestAtexitFlush:
    """Satellite: the process recorder flushes at interpreter exit."""

    def test_spans_dumped_on_exit(self, tmp_path):
        import subprocess
        import sys

        target = tmp_path / "sub" / "spans.json"  # parent must be created
        code = (
            "from repro.obs.spans import span\n"
            "with span('work', app='t'):\n"
            "    pass\n"
        )
        env = dict(
            os.environ,
            PYTHIA_SPANS="1",
            PYTHIA_SPANS_DUMP=str(target),
        )
        env.setdefault("PYTHONPATH", "src")
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr
        trace = json.loads(target.read_text())
        names = [e["name"] for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert names == ["work"]

    def test_no_dump_without_destination(self, tmp_path, monkeypatch):
        monkeypatch.delenv(sp.SPANS_DUMP_ENV, raising=False)
        with sp.span_recording():
            with sp.span("work"):
                pass
            sp._atexit_dump()  # must be a no-op, not a crash
        assert list(tmp_path.iterdir()) == []

    def test_empty_recorder_not_dumped(self, tmp_path, monkeypatch):
        target = tmp_path / "never.json"
        monkeypatch.setenv(sp.SPANS_DUMP_ENV, str(target))
        with sp.span_recording():
            sp._atexit_dump()
        assert not target.exists()
