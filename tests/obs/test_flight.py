"""Unit tests for the per-session flight recorder."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.predict import PythiaPredict
from repro.obs.flight import FLIGHT_DIR_ENV, FlightRecorder, dump_active
from tests.conftest import A, B, C, freeze


def _tracked(stream, *, capacity=64, stride=8, **kw):
    tracker = PythiaPredict(freeze(stream))
    flight = FlightRecorder(capacity, stride=stride, **kw)
    tracker.attach_flight(flight)
    return tracker, flight


class TestJournal:
    def test_run_entries_compress_steady_state(self):
        """An in-sync stream yields one ``run`` entry per stride block,
        not one entry per event."""
        stream = [A, B, C] * 32
        tracker, flight = _tracked(stream, stride=8)
        for t in stream:
            tracker.observe(t)
        entries = flight.entries()
        runs = [e for e in entries if e["kind"] == "run"]
        # the only anomaly is the initial mid-stream attach (a restart)
        assert [e for e in entries if e["kind"] != "run"] == entries[:1]
        assert entries[0]["outcome"] == "restart"
        assert len(runs) == len(stream) // 8
        assert all(e["events"] == 8 for e in runs)
        assert all(e["matched"] + e["unexpected"] + e["unknown"] <= 8 for e in runs)
        assert all(e["drift_state"] == 0 for e in runs)

    def test_anomalies_journaled_eagerly_with_collapse(self):
        stream = [A, B, C] * 8
        tracker, flight = _tracked(stream, stride=8)
        tracker.observe(A)
        for _ in range(5):
            tracker.observe_unknown()
        unknowns = [
            e for e in flight.entries()
            if e["kind"] == "observe" and e["outcome"] == "unknown"
        ]
        assert len(unknowns) == 1  # five repeats collapse into one entry
        assert unknowns[0]["count"] == 5

    def test_distinct_anomalies_do_not_collapse(self):
        stream = [A, B, C] * 8
        tracker, flight = _tracked(stream, stride=8)
        tracker.observe(A)
        tracker.observe(99)  # unknown terminal
        tracker.observe(A)  # resync = unexpected restart
        kinds = [
            (e["kind"], e.get("outcome")) for e in flight.entries() if e["kind"] == "observe"
        ]
        assert ("observe", "unknown") in kinds
        assert ("observe", "restart") in kinds

    def test_ring_is_bounded(self):
        flight = FlightRecorder(4)
        for i in range(20):
            flight.note(f"n{i}")
        entries = flight.entries()
        assert len(entries) == 4
        assert [e["message"] for e in entries] == ["n16", "n17", "n18", "n19"]
        assert entries[0]["seq"] == 17  # sequence numbers keep counting

    def test_last_prediction_recorded_in_runs(self):
        stream = [A, B, C] * 16
        tracker, flight = _tracked(stream, stride=8)
        for t in stream[:-1]:
            tracker.observe(t)
            tracker.predict(1)
        runs = [e for e in flight.entries() if e["kind"] == "run"]
        assert runs, "expected at least one run entry"
        pred = runs[-1]["prediction"]
        assert pred is not None
        assert pred["distance"] == 1
        assert 0.0 < pred["probability"] <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(0)
        with pytest.raises(ValueError):
            FlightRecorder(4, stride=0)


class TestExport:
    def test_jsonl_round_trips(self):
        flight = FlightRecorder(8, session="s1")
        flight.note("hello", run=3)
        lines = flight.to_jsonl().splitlines()
        assert len(lines) == 1
        obj = json.loads(lines[0])
        assert obj["kind"] == "note"
        assert obj["session"] == "s1"
        assert obj["run"] == 3

    def test_chrome_trace_shape(self):
        stream = [A, B, C] * 8
        tracker, flight = _tracked(stream, stride=8)
        for t in stream:
            tracker.observe(t)
        trace = flight.to_chrome_trace()
        events = trace["traceEvents"]
        assert events[0]["ph"] == "M"  # thread_name metadata first
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == len(flight.entries())
        pid = os.getpid()
        assert all(e["pid"] == pid for e in events)
        tids = {e["tid"] for e in events}
        assert len(tids) == 1  # one recorder = one lane


class TestDumping:
    def test_dump_to_explicit_path(self, tmp_path):
        flight = FlightRecorder(8, session="exp")
        flight.note("x")
        path = flight.dump(tmp_path / "out.jsonl")
        assert path == str(tmp_path / "out.jsonl")
        assert json.loads(open(path).read())["message"] == "x"
        assert flight.dumps == 1

    def test_auto_dump_without_destination_is_noop(self, monkeypatch):
        monkeypatch.delenv(FLIGHT_DIR_ENV, raising=False)
        flight = FlightRecorder(8)
        flight.note("x")
        assert flight.auto_dump() is None
        assert flight.dumps == 0

    def test_env_var_names_the_dump_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FLIGHT_DIR_ENV, str(tmp_path))
        flight = FlightRecorder(8, session="bt.pythia/t0")
        flight.note("x")
        path = flight.auto_dump()
        assert path is not None and path.startswith(str(tmp_path))
        assert os.path.basename(path) == "flight-bt.pythia_t0.jsonl"  # sanitized

    def test_dump_active_collects_live_recorders(self, tmp_path):
        a = FlightRecorder(8, session="same")
        b = FlightRecorder(8, session="same")
        empty = FlightRecorder(8, session="empty")
        a.note("a")
        b.note("b")
        paths = dump_active(tmp_path)
        # both non-empty recorders dumped, same session name disambiguated
        assert len([p for p in paths if "flight-same" in p]) == 2
        assert len(set(paths)) == len(paths)
        assert not any("empty" in p for p in paths)
        del a, b, empty


class TestAtexitFlush:
    """Satellite: configured flight recorders flush at interpreter exit."""

    def test_journal_dumped_on_exit(self, tmp_path):
        import subprocess
        import sys

        code = (
            "from repro.obs.flight import FlightRecorder\n"
            "flight = FlightRecorder(8, session='exit.test/t0')\n"
            "flight.note('bye')\n"  # never dumped explicitly
        )
        env = dict(os.environ, PYTHIA_FLIGHT_DIR=str(tmp_path))
        env.setdefault("PYTHONPATH", "src")
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr
        (path,) = tmp_path.glob("flight-*.jsonl")
        entries = [json.loads(line) for line in path.read_text().splitlines()]
        assert any(e.get("message") == "bye" for e in entries)

    def test_unconfigured_recorders_stay_silent(self, tmp_path):
        import subprocess
        import sys

        code = (
            "from repro.obs.flight import FlightRecorder\n"
            "flight = FlightRecorder(8, session='quiet/t0')\n"
            "flight.note('nothing to see')\n"
        )
        env = {k: v for k, v in os.environ.items() if k != FLIGHT_DIR_ENV}
        env["TMPDIR"] = str(tmp_path)
        env.setdefault("PYTHONPATH", "src")
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stderr
        assert list(tmp_path.glob("flight-*.jsonl")) == []
