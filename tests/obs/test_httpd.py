"""HTTP observability endpoint against a stub provider.

Daemon/supervisor integration (parity with the ``metrics`` op, drain
behaviour, worker crashes) lives in ``tests/server/test_http_chaos.py``;
here the routes, counters and failure handling are exercised in
isolation through the provider interface.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro.obs.httpd import PROMETHEUS_CONTENT_TYPE, ObservabilityHTTPServer
from repro.obs.metrics import MetricsRegistry, parse_prometheus_text


class StubProvider:
    """Minimal provider: canned payloads, scriptable readiness."""

    def __init__(self):
        self.ready = (True, "ready")
        self.profile_calls = []

    def metrics_text(self):
        return "# TYPE stub_total counter\nstub_total 7\n"

    def readiness(self):
        return self.ready

    def sessions_view(self):
        return {"tracked": 2, "sessions": [{"sid": "cAAA"}]}

    def stats_view(self):
        return {"sessions": 2}

    def profile_view(self, seconds, fmt, hz):
        self.profile_calls.append((seconds, fmt, hz))
        body = "<svg>x</svg>" if fmt == "svg" else "main;op:ping 3\n"
        return {"format": fmt, "profile": body, "report": {"samples": 3}}

    def history_view(self, window, keys):
        return {"window": window, "keys": keys, "rates": {"stub_total": 1.5}}


@pytest.fixture
def served():
    provider = StubProvider()
    registry = MetricsRegistry()
    server = ObservabilityHTTPServer(provider, registry=registry)
    with server:
        yield provider, registry, server


def fetch(server, path, timeout=5.0):
    with urllib.request.urlopen(server.url + path, timeout=timeout) as resp:
        return resp.status, dict(resp.headers), resp.read().decode()


class TestRoutes:
    def test_index_lists_routes(self, served):
        _, _, server = served
        status, _, body = fetch(server, "/")
        assert status == 200
        for route in ("/metrics", "/healthz", "/ready", "/profile"):
            assert route in body

    def test_metrics_content_type_and_body(self, served):
        _, _, server = served
        status, headers, body = fetch(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        assert parse_prometheus_text(body).value("stub_total") == 7

    def test_healthz(self, served):
        _, _, server = served
        assert fetch(server, "/healthz")[0] == 200

    def test_ready_flips_to_503(self, served):
        provider, _, server = served
        assert fetch(server, "/ready")[0] == 200
        provider.ready = (False, "draining")
        with pytest.raises(urllib.error.HTTPError) as err:
            fetch(server, "/ready")
        assert err.value.code == 503
        assert "draining" in err.value.read().decode()

    def test_json_routes(self, served):
        _, _, server = served
        _, headers, body = fetch(server, "/sessions.json")
        assert headers["Content-Type"].startswith("application/json")
        assert json.loads(body)["tracked"] == 2
        assert json.loads(fetch(server, "/stats.json")[2]) == {"sessions": 2}

    def test_profile_params_clamped_and_forwarded(self, served):
        provider, _, server = served
        _, headers, body = fetch(server, "/profile?seconds=0&hz=50")
        assert "op:ping" in body
        assert headers["Content-Type"].startswith("text/plain")
        _, headers, body = fetch(server, "/profile?format=svg")
        assert headers["Content-Type"] == "image/svg+xml"
        assert body == "<svg>x</svg>"
        fetch(server, "/profile?seconds=9999")
        seconds = [call[0] for call in provider.profile_calls]
        assert max(seconds) == 60.0  # MAX_PROFILE_SECONDS ceiling

    def test_profile_bad_format_is_400(self, served):
        _, _, server = served
        with pytest.raises(urllib.error.HTTPError) as err:
            fetch(server, "/profile?format=flame")
        assert err.value.code == 400

    def test_history_query_parsing(self, served):
        _, _, server = served
        body = json.loads(fetch(server, "/history.json?window=60&keys=a,b")[2])
        assert body["window"] == 60.0
        assert body["keys"] == ["a", "b"]
        body = json.loads(fetch(server, "/history.json")[2])
        assert body["window"] is None
        assert body["keys"] is None

    def test_unknown_route_404_with_index(self, served):
        _, _, server = served
        with pytest.raises(urllib.error.HTTPError) as err:
            fetch(server, "/nope")
        assert err.value.code == 404
        assert "/metrics" in err.value.read().decode()


class TestCountersAndErrors:
    def test_scrape_counter_labels_path_and_code(self, served):
        _, registry, server = served
        fetch(server, "/metrics")
        fetch(server, "/metrics")
        fetch(server, "/healthz")
        with pytest.raises(urllib.error.HTTPError):
            fetch(server, "/bogus")

        def counts():
            return {
                (labels["path"], labels["code"]): inst.value
                for inst in registry.collect()
                if inst.name == "pythia_http_requests_total"
                for labels in [dict(inst.labels)]
            }

        # the client sees a reply a beat before the handler thread
        # increments the counter; poll briefly instead of racing it
        deadline = time.monotonic() + 2.0
        while ("other", "404") not in counts() and time.monotonic() < deadline:
            time.sleep(0.01)
        final = counts()
        assert final[("/metrics", "200")] == 2
        assert final[("/healthz", "200")] == 1
        assert final[("other", "404")] == 1

    def test_provider_exception_is_500_not_crash(self, served):
        provider, _, server = served
        provider.history_view = lambda *_a: 1 / 0
        with pytest.raises(urllib.error.HTTPError) as err:
            fetch(server, "/history.json")
        assert err.value.code == 500
        # endpoint still alive afterwards
        assert fetch(server, "/healthz")[0] == 200


class TestLifecycle:
    def test_ephemeral_port_and_url(self, served):
        _, _, server = served
        host, port = server.address
        assert host == "127.0.0.1"
        assert port > 0
        assert server.url == f"http://127.0.0.1:{port}"

    def test_stop_releases_port(self):
        server = ObservabilityHTTPServer(StubProvider(), registry=MetricsRegistry())
        server.start()
        _, port = server.address
        server.stop()
        probe = socket.socket()
        try:
            probe.bind(("127.0.0.1", port))  # free again
        finally:
            probe.close()
