"""Sampling profiler: stack collection, op tagging, rendering."""

from __future__ import annotations

import sys
import threading
import time

import pytest

from repro.obs import profiler as prof_mod
from repro.obs.profiler import (
    SamplingProfiler,
    disable_profiler,
    enable_profiler,
    get_profiler,
    parse_collapsed,
    profile_window,
    profiler_from_env,
    render_collapsed,
    render_flamegraph,
    tag_op,
)


@pytest.fixture(autouse=True)
def _no_global_profiler():
    """Each test starts and ends with the process profiler off."""
    disable_profiler()
    yield
    disable_profiler()


def busy_thread(stop: threading.Event, name: str = "busy-loop"):
    def spin():
        while not stop.is_set():
            sum(range(200))

    thread = threading.Thread(target=spin, name=name, daemon=True)
    thread.start()
    return thread


class TestSampling:
    def test_sample_once_sees_live_threads(self):
        stop = threading.Event()
        busy_thread(stop)
        try:
            prof = SamplingProfiler(hz=50)
            sampled = prof.sample_once()
            assert sampled >= 1
            stacks = prof.snapshot()
            assert any("busy-loop" in stack for stack in stacks)
            # root first: the thread name leads, frames follow
            busy = next(s for s in stacks if s.startswith("busy-loop;"))
            assert "test_profiler.spin" in busy
        finally:
            stop.set()

    def test_background_thread_accumulates(self):
        stop = threading.Event()
        busy_thread(stop)
        prof = SamplingProfiler(hz=200).start()
        try:
            deadline = time.monotonic() + 5.0
            while prof.report()["samples"] < 10:
                assert time.monotonic() < deadline, "profiler never sampled"
                time.sleep(0.02)
        finally:
            prof.stop()
            stop.set()
        report = prof.report()
        assert report["samples"] >= 10
        assert report["distinct_stacks"] >= 1
        assert not report["running"]
        assert report["active_seconds"] > 0

    def test_sampler_skips_its_own_thread(self):
        prof = SamplingProfiler(hz=200).start()
        try:
            time.sleep(0.1)
        finally:
            prof.stop()
        assert not any(
            "pythia-profiler" in stack for stack in prof.snapshot()
        )

    def test_diff_since_isolates_a_window(self):
        prof = SamplingProfiler(hz=50)
        prof.sample_once()
        before = prof.snapshot()
        prof.sample_once()
        prof.sample_once()
        diff = prof.diff_since(before)
        assert sum(diff.values()) >= 1
        # cumulative view undisturbed
        assert sum(prof.snapshot().values()) >= sum(before.values())

    def test_reset_clears_counts(self):
        prof = SamplingProfiler(hz=50)
        prof.sample_once()
        prof.reset()
        assert prof.snapshot() == {}
        assert prof.report()["samples"] == 0

    def test_hz_must_be_positive(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)


class TestTagging:
    def test_tag_op_is_noop_without_profiler(self):
        tag = tag_op("anything")
        assert tag is prof_mod._NULL_TAG
        with tag:
            pass  # no state mutated, no error

    def test_tagged_samples_carry_op_frame(self):
        enable_profiler(hz=50)
        prof = get_profiler()
        stop = threading.Event()
        seen = threading.Event()

        def work():
            with tag_op("observe_predict"):
                seen.set()
                while not stop.is_set():
                    sum(range(100))

        thread = threading.Thread(target=work, name="tagged", daemon=True)
        thread.start()
        try:
            assert seen.wait(2.0)
            deadline = time.monotonic() + 5.0
            while not any(
                "tagged;op:observe_predict;" in s for s in prof.snapshot()
            ):
                assert time.monotonic() < deadline, "op tag never sampled"
                time.sleep(0.02)
        finally:
            stop.set()
            thread.join(timeout=2.0)

    def test_tags_nest_and_restore(self):
        enable_profiler(hz=50)
        ident = threading.get_ident()
        with tag_op("outer"):
            assert prof_mod._tags[ident] == "outer"
            with tag_op("inner"):
                assert prof_mod._tags[ident] == "inner"
            assert prof_mod._tags[ident] == "outer"
        assert ident not in prof_mod._tags


class TestProcessProfiler:
    def test_enable_disable_round_trip(self):
        assert get_profiler() is None
        prof = enable_profiler(hz=50)
        assert get_profiler() is prof
        assert prof.running
        assert enable_profiler() is prof  # idempotent
        disable_profiler()
        assert get_profiler() is None
        assert not prof.running

    def test_profiler_from_env_default_off(self, monkeypatch):
        monkeypatch.delenv("PYTHIA_PROFILE_HZ", raising=False)
        assert profiler_from_env() is None

    def test_profiler_from_env_daemon_default(self, monkeypatch):
        monkeypatch.delenv("PYTHIA_PROFILE_HZ", raising=False)
        prof = profiler_from_env(default_hz=19.0)
        assert prof is not None
        assert prof.hz == 19.0

    def test_profiler_from_env_zero_opts_out(self, monkeypatch):
        monkeypatch.setenv("PYTHIA_PROFILE_HZ", "0")
        assert profiler_from_env(default_hz=19.0) is None

    def test_profiler_from_env_override(self, monkeypatch):
        monkeypatch.setenv("PYTHIA_PROFILE_HZ", "37")
        prof = profiler_from_env()
        assert prof is not None
        assert prof.hz == 37.0

    def test_profile_window_with_temporary_profiler(self):
        stop = threading.Event()
        busy_thread(stop)
        try:
            stacks, report = profile_window(0.15, hz=100)
        finally:
            stop.set()
        assert sum(stacks.values()) >= 1
        assert report["window_seconds"] == 0.15
        assert get_profiler() is None  # temporary profiler discarded

    def test_profile_window_uses_running_profiler(self):
        running = enable_profiler(hz=100)
        stacks, _report = profile_window(0.1)
        assert get_profiler() is running  # not replaced
        assert isinstance(stacks, dict)

    def test_profile_window_boosts_above_running_rate(self):
        running = enable_profiler(hz=10)
        _stacks, report = profile_window(0.1, hz=200)
        assert get_profiler() is running  # booster was temporary
        assert report["hz"] == 200.0
        assert not report["running"]  # ... and is stopped again

    def test_profiler_lowers_and_restores_switch_interval(self):
        before = sys.getswitchinterval()
        assert before > prof_mod.SWITCH_INTERVAL_S
        enable_profiler(hz=50)
        assert sys.getswitchinterval() == pytest.approx(
            prof_mod.SWITCH_INTERVAL_S
        )
        disable_profiler()
        assert sys.getswitchinterval() == pytest.approx(before)

    def test_boosted_window_keeps_switch_interval_until_stop(self):
        before = sys.getswitchinterval()
        enable_profiler(hz=10)
        profile_window(0.05, hz=100)
        # the booster's exit must not restore the interval early
        assert sys.getswitchinterval() == pytest.approx(
            prof_mod.SWITCH_INTERVAL_S
        )
        disable_profiler()
        assert sys.getswitchinterval() == pytest.approx(before)


class TestRendering:
    def test_collapsed_round_trip(self):
        stacks = {"main;op:save_trace;trace_file.save": 7, "main;idle": 3}
        text = render_collapsed(stacks)
        assert "main;op:save_trace;trace_file.save 7" in text
        assert parse_collapsed(text) == stacks

    def test_parse_collapsed_merges_and_skips_garbage(self):
        text = "a;b 2\na;b 3\nnot-a-count x\n\n"
        assert parse_collapsed(text) == {"a;b": 5}

    def test_flamegraph_contains_frames_and_counts(self):
        stacks = {
            "main;op:observe_predict;daemon._dispatch": 60,
            "main;op:save_trace;trace_file.save": 40,
        }
        svg = render_flamegraph(stacks, title="test graph")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "op:observe_predict" in svg
        assert "op:save_trace" in svg
        assert "test graph" in svg
        assert "100 samples" in svg

    def test_flamegraph_escapes_markup(self):
        svg = render_flamegraph({"main;<evil>&frame": 1})
        assert "<evil>" not in svg
        assert "&lt;evil&gt;" in svg

    def test_flamegraph_empty_profile(self):
        svg = render_flamegraph({})
        assert svg.startswith("<svg")
        assert "0 samples" in svg
