"""Unit tests for the structured logging layer."""

from __future__ import annotations

import io
import json
import logging

from repro.obs import log


def make_logger(level="debug", fmt="kv"):
    stream = io.StringIO()
    log.configure(level, fmt=fmt, stream=stream)
    return log.get_logger("test"), stream


class TestParseSpec:
    def test_plain_level(self):
        assert log.parse_spec("debug") == (logging.DEBUG, "kv")

    def test_json_prefix(self):
        assert log.parse_spec("json:info") == (logging.INFO, "json")

    def test_level_first_also_accepted(self):
        assert log.parse_spec("info:json") == (logging.INFO, "json")

    def test_typo_falls_back_to_warning(self):
        assert log.parse_spec("dbug") == (logging.WARNING, "kv")
        assert log.parse_spec("") == (logging.WARNING, "kv")


class TestKvFormat:
    def test_event_and_fields_rendered(self):
        logger, stream = make_logger()
        logger.info("session_opened", session="s1", count=3)
        line = stream.getvalue().strip()
        assert "INFO" in line
        assert "pythia.test" in line
        assert "session_opened" in line
        assert "session=s1" in line
        assert "count=3" in line

    def test_values_with_spaces_are_quoted(self):
        logger, stream = make_logger()
        logger.info("e", path="a b")
        assert 'path="a b"' in stream.getvalue()

    def test_level_filtering(self):
        logger, stream = make_logger(level="error")
        logger.debug("hidden")
        logger.info("hidden_too")
        logger.error("shown")
        out = stream.getvalue()
        assert "hidden" not in out
        assert "shown" in out


class TestJsonFormat:
    def test_lines_are_valid_json(self):
        logger, stream = make_logger(fmt="json")
        logger.warning("lost_position", thread=2, candidates=0)
        obj = json.loads(stream.getvalue())
        assert obj["event"] == "lost_position"
        assert obj["level"] == "WARNING"
        assert obj["logger"] == "pythia.test"
        assert obj["thread"] == 2
        assert obj["candidates"] == 0


class TestConfigure:
    def test_reconfigure_replaces_handlers(self):
        _, first = make_logger()
        logger, second = make_logger()
        logger.info("once")
        assert first.getvalue() == ""
        assert "once" in second.getvalue()
        root = logging.getLogger(log.ROOT)
        assert len(root.handlers) == 1

    def test_subsystem_loggers_share_the_tree(self):
        stream = io.StringIO()
        log.configure("info", stream=stream)
        log.get_logger("server").info("from_server")
        log.get_logger("oracle").info("from_oracle")
        out = stream.getvalue()
        assert "pythia.server from_server" in out
        assert "pythia.oracle from_oracle" in out
