"""Unit tests for the dependency-free metrics registry."""

from __future__ import annotations

import threading

import pytest

from repro.obs import metrics as m


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = m.MetricsRegistry().counter("x_total")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_negative_increment_rejected(self):
        c = m.MetricsRegistry().counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_sixteen_threads_one_counter(self):
        """The registry's core guarantee: no lost updates under contention."""
        reg = m.MetricsRegistry()
        c = reg.counter("contended_total")
        per_thread = 10_000

        def bump():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 16 * per_thread

    def test_concurrent_get_or_create_same_instrument(self):
        reg = m.MetricsRegistry()
        got = []

        def create():
            got.append(reg.counter("shared_total"))

        threads = [threading.Thread(target=create) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is got[0] for c in got)


class TestGauge:
    def test_set_and_add(self):
        g = m.MetricsRegistry().gauge("g")
        g.set(10.0)
        g.add(-3.0)
        assert g.value == 7.0


class TestHistogramBuckets:
    def test_value_on_bucket_edge_counts_as_le(self):
        """Prometheus semantics: le is inclusive — a sample equal to a
        bound lands in that bound's bucket."""
        h = m.Histogram("h", buckets=(1, 2, 4))
        h.observe(2)
        buckets = dict(h.bucket_counts())
        assert buckets[1] == 0
        assert buckets[2] == 1
        assert buckets[4] == 1
        assert buckets[float("inf")] == 1

    def test_overflow_goes_to_inf(self):
        h = m.Histogram("h", buckets=(1, 2))
        h.observe(100)
        buckets = dict(h.bucket_counts())
        assert buckets[2] == 0
        assert buckets[float("inf")] == 1

    def test_cumulative_counts(self):
        h = m.Histogram("h", buckets=(1, 2, 4))
        for v in (0.5, 1.5, 1.5, 3, 10):
            h.observe(v)
        assert h.bucket_counts() == [(1, 1), (2, 3), (4, 4), (float("inf"), 5)]
        assert h.count == 5
        assert h.sum == pytest.approx(16.5)

    def test_quantile_clamped_to_observed_range(self):
        h = m.Histogram("h", buckets=(1000,))
        for _ in range(10):
            h.observe(3.0)
        # all mass in the first bucket; interpolation alone would report
        # somewhere in (0, 1000) — the clamp pins it to the real value
        assert h.quantile(0.5) == 3.0
        assert h.quantile(0.99) == 3.0

    def test_quantile_orders_correctly(self):
        h = m.Histogram("h", buckets=(1, 2, 4, 8, 16))
        for v in range(1, 17):
            h.observe(v)
        assert h.quantile(0.1) <= h.quantile(0.5) <= h.quantile(0.95)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 16.0

    def test_snapshot_keys(self):
        h = m.Histogram("h")
        h.observe(2)
        snap = h.snapshot()
        assert set(snap) == {"count", "sum", "min", "max", "p50", "p95", "p99"}
        assert snap["count"] == 1
        assert snap["min"] == snap["max"] == 2

    def test_empty_snapshot_is_zeroes(self):
        snap = m.Histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["min"] == 0.0 and snap["max"] == 0.0


class TestRegistry:
    def test_get_or_create_by_name_and_labels(self):
        reg = m.MetricsRegistry()
        a = reg.counter("x_total", {"op": "a"})
        b = reg.counter("x_total", {"op": "b"})
        assert a is not b
        assert reg.counter("x_total", {"op": "a"}) is a

    def test_kind_conflict_raises(self):
        reg = m.MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_collector_runs_at_collect_time(self):
        reg = m.MetricsRegistry()
        calls = []

        def collector(r):
            calls.append(1)
            r.gauge("computed").set(42.0)

        reg.register_collector(collector)
        snap = reg.snapshot()
        assert calls == [1]
        assert snap["computed"] == 42.0
        reg.unregister_collector(collector)
        reg.snapshot()
        assert calls == [1]

    def test_null_registry_absorbs_everything(self):
        reg = m.NullRegistry()
        assert not reg.enabled
        c = reg.counter("x_total")
        c.inc(100)
        reg.histogram("h").observe(1.0)
        assert c.value == 0
        assert reg.snapshot() == {}
        assert m.render_prometheus(reg) == ""

    def test_set_registry_swaps_process_registry(self):
        prev = m.get_registry()
        try:
            fresh = m.MetricsRegistry()
            assert m.set_registry(fresh) is fresh
            assert m.get_registry() is fresh
            assert m.metrics_enabled()
            m.set_registry(m.NullRegistry())
            assert not m.metrics_enabled()
        finally:
            m.set_registry(prev)


def _parse_exposition(text: str) -> dict[str, float]:
    """Minimal Prometheus text parser: ``name{labels}`` -> value."""
    out: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        out[key] = float(value.replace("+Inf", "inf"))
    return out


class TestPrometheusExposition:
    def test_round_trip(self):
        reg = m.MetricsRegistry()
        reg.counter("events_total", help="events").inc(7)
        reg.gauge("active", {"kind": "session"}).set(3)
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0), help="latency")
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = m.render_prometheus(reg)
        assert "# TYPE events_total counter" in text
        assert "# HELP lat_seconds latency" in text
        assert "# TYPE lat_seconds histogram" in text
        parsed = _parse_exposition(text)
        assert parsed["events_total"] == 7
        assert parsed['active{kind="session"}'] == 3
        assert parsed['lat_seconds_bucket{le="0.1"}'] == 1
        assert parsed['lat_seconds_bucket{le="1"}'] == 2
        assert parsed['lat_seconds_bucket{le="+Inf"}'] == 3
        assert parsed["lat_seconds_count"] == 3
        assert parsed["lat_seconds_sum"] == pytest.approx(5.55)

    def test_histogram_bucket_counts_are_monotone(self):
        reg = m.MetricsRegistry()
        h = reg.histogram("h", buckets=m.LATENCY_BUCKETS_S)
        for v in (1e-7, 3e-4, 0.02, 0.02, 7.0, 100.0):
            h.observe(v)
        cums = [c for _le, c in h.bucket_counts()]
        assert cums == sorted(cums)
        assert cums[-1] == 6

    def test_label_values_escaped(self):
        """Prometheus exposition: backslash, double-quote and newline in
        a label value must be escaped, or the scrape line is corrupt."""
        reg = m.MetricsRegistry()
        hostile = 'say "hi"\nand C:\\path'
        reg.counter("esc_total", {"app": hostile}).inc(2)
        text = m.render_prometheus(reg)
        line = next(ln for ln in text.splitlines() if ln.startswith("esc_total"))
        # exactly one physical line, quotes and backslashes escaped
        assert "\n" not in line
        assert 'app="say \\"hi\\"\\nand C:\\\\path"' in line
        assert line.endswith(" 2")
        # every sample in the exposition stays one-line parseable
        for sample in text.splitlines():
            if sample and not sample.startswith("#"):
                assert sample.rpartition(" ")[2] != ""

    def test_help_text_escaped(self):
        reg = m.MetricsRegistry()
        reg.counter("h_total", help="multi\nline \\ help").inc()
        text = m.render_prometheus(reg)
        help_line = next(ln for ln in text.splitlines() if ln.startswith("# HELP"))
        assert help_line == "# HELP h_total multi\\nline \\\\ help"
