"""TraceTable: offline analysis over span dumps and flight journals."""

from __future__ import annotations

import json

import pytest

from repro.obs.analysis import TraceTable, load
from repro.obs.spans import SpanRecorder


def make_chrome(tmp_path, name="spans.json"):
    """A small span dump with two traced requests + server spans."""
    rec = SpanRecorder()
    rec.emit("client.observe_predict", 0.001, 100e-6,
             op="observe_predict", sid="cAAA", rid=1,
             total_us=100.0, wire_us=60.0, queue_us=10.0, handler_us=30.0)
    rec.emit("server.observe_predict", 0.00105, 30e-6,
             op="observe_predict", sid="cAAA", rid=1,
             queue_us=10.0, handler_us=30.0)
    rec.emit("client.observe_predict", 0.002, 200e-6,
             op="observe_predict", sid="cAAA", rid=2,
             total_us=200.0, wire_us=120.0, queue_us=20.0, handler_us=60.0)
    rec.emit("server.observe_predict", 0.00210, 60e-6,
             op="observe_predict", sid="cAAA", rid=2,
             queue_us=20.0, handler_us=60.0)
    rec.emit("record.compress", 0.0005, 5e-3)  # an untraced span
    path = tmp_path / name
    rec.dump(path)
    return str(path)


def make_jsonl(tmp_path, name="flight.jsonl"):
    entries = [
        {"kind": "event", "t": 0.0011, "name": "mpi_send", "thread": 0},
        {"kind": "prediction", "t": 0.0012, "terminal": 4, "matched": True},
    ]
    path = tmp_path / name
    path.write_text("".join(json.dumps(e) + "\n" for e in entries))
    return str(path)


class TestLoading:
    def test_load_sniffs_both_formats(self, tmp_path):
        table = TraceTable.load(make_chrome(tmp_path), make_jsonl(tmp_path))
        assert len(table) == 7
        sources = set(table.column("source"))
        assert sources == {"spans.json", "flight.jsonl"}

    def test_rows_sorted_by_timestamp(self, tmp_path):
        table = TraceTable.load(make_chrome(tmp_path), make_jsonl(tmp_path))
        ts = table.column("ts")
        assert ts == sorted(ts)

    def test_metadata_events_skipped(self, tmp_path):
        path = tmp_path / "meta.json"
        path.write_text(json.dumps({"traceEvents": [
            {"ph": "M", "name": "thread_name", "pid": 1, "tid": 2,
             "args": {"name": "main"}},
            {"ph": "X", "name": "work", "ts": 1.0, "dur": 2.0,
             "pid": 1, "tid": 2},
        ]}))
        table = TraceTable.load(path)
        assert [r["name"] for r in table] == ["work"]

    def test_module_level_load_alias(self, tmp_path):
        assert len(load(make_jsonl(tmp_path))) == 2

    def test_flight_fields_flattened_into_rows(self, tmp_path):
        table = TraceTable.load(make_jsonl(tmp_path))
        row = table.filter(name="prediction").rows[0]
        assert row["terminal"] == 4
        assert row["matched"] is True
        assert row["ph"] == "i"
        assert row["dur"] == 0.0


class TestVerbs:
    @pytest.fixture
    def table(self, tmp_path):
        return TraceTable.load(make_chrome(tmp_path), make_jsonl(tmp_path))

    def test_filter_by_equality_and_predicate(self, table):
        assert len(table.filter(name="client.observe_predict")) == 2
        assert len(table.filter(sid="cAAA", rid=1)) == 2
        assert len(table.filter(lambda r: (r.get("dur") or 0) > 150)) == 2

    def test_groupby(self, table):
        groups = table.groupby("name")
        assert len(groups["client.observe_predict"]) == 2
        assert len(groups["event"]) == 1

    def test_percentile_interpolates(self):
        table = TraceTable(
            [{"name": "x", "ts": float(i), "v": float(i)} for i in range(11)]
        )
        assert table.percentile("v", 0) == 0.0
        assert table.percentile("v", 50) == 5.0
        assert table.percentile("v", 100) == 10.0
        assert table.percentile("v", 95) == pytest.approx(9.5)
        with pytest.raises(ValueError):
            table.percentile("v", 101)

    def test_percentile_of_missing_column(self, table):
        assert table.percentile("no_such_column", 50) == 0.0

    def test_summary(self, table):
        summary = table.summary("dur")
        assert summary["client.observe_predict"]["count"] == 2
        assert summary["client.observe_predict"]["max"] == pytest.approx(200.0)


class TestRequestTracing:
    @pytest.fixture
    def table(self, tmp_path):
        return TraceTable.load(make_chrome(tmp_path), make_jsonl(tmp_path))

    def test_requests_selects_client_spans(self, table):
        reqs = table.requests()
        assert len(reqs) == 2
        assert all(r["name"].startswith("client.") for r in reqs)

    def test_critical_path(self, table):
        path = table.critical_path("cAAA", 1)
        assert path == [("wire", 60.0), ("queue", 10.0), ("handler", 30.0)]
        assert table.critical_path("cAAA", 99) == []

    def test_decompose_joins_server_spans(self, table):
        rows = list(table.decompose())
        assert len(rows) == 2
        by_rid = {r["rid"]: r for r in rows}
        assert by_rid[1]["server_handler_us"] == 30.0
        assert by_rid[2]["server_handler_us"] == 60.0
        for row in rows:
            assert row["total_us"] == pytest.approx(
                row["wire_us"] + row["queue_us"] + row["handler_us"]
            )

    def test_report_shape_matches_timing_report(self, table):
        report = table.report()
        assert report["requests"] == 2
        assert report["sessions"] == ["cAAA"]
        op = report["ops"]["observe_predict"]
        for component in ("total", "wire", "queue", "handler"):
            stats = op[component]
            assert stats["count"] == 2
            for key in ("mean_us", "p50_us", "p99_us", "max_us"):
                assert key in stats
        assert op["total"]["max_us"] == pytest.approx(200.0)

    def test_report_without_traced_requests(self, tmp_path):
        table = TraceTable.load(make_jsonl(tmp_path))
        report = table.report()
        assert report == {"requests": 0, "sessions": [], "ops": {}}
