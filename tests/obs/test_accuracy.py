"""Unit tests for online prediction-accuracy scoring."""

from __future__ import annotations

import pytest

from repro.core.predict import PythiaPredict
from repro.obs.accuracy import (
    EPISODE_BUCKETS,
    AccuracyTracker,
    aggregate_stats,
    merge_reports,
)
from tests.conftest import A, B, C, freeze


class TestHitMiss:
    def test_hit_when_predicted_terminal_occurs(self):
        t = AccuracyTracker()
        t.note_prediction(5, distance=1)
        t.note_observation(5, matched=True, lost=False)
        assert (t.hits, t.misses) == (1, 0)
        assert t.hit_rate == 1.0

    def test_miss_when_a_different_terminal_occurs(self):
        t = AccuracyTracker()
        t.note_prediction(5, distance=1)
        t.note_observation(7, matched=False, lost=False)
        assert (t.hits, t.misses) == (0, 1)

    def test_distance_defers_scoring(self):
        t = AccuracyTracker()
        t.note_prediction(5, distance=2)
        t.note_observation(9, matched=True, lost=False)
        assert t.scored == 0  # target is two events away
        t.note_observation(5, matched=True, lost=False)
        assert (t.hits, t.misses) == (1, 0)

    def test_end_prediction_never_hits(self):
        t = AccuracyTracker()
        t.note_prediction(None, distance=1)  # "execution ends here"
        t.note_observation(3, matched=True, lost=False)
        assert (t.hits, t.misses) == (0, 1)

    def test_rolling_window(self):
        t = AccuracyTracker(window_size=4)
        for i in range(8):
            t.note_prediction(1, distance=1)
            t.note_observation(1 if i >= 4 else 0, matched=True, lost=False)
        assert t.hit_rate == 0.5  # lifetime: 4 of 8
        assert t.rolling_hit_rate == 1.0  # last four all hit


class TestTimeError:
    def test_absolute_error_on_hits(self):
        t = AccuracyTracker()
        t.note_prediction(5, distance=1, eta=2.0, now=10.0)
        t.note_observation(5, matched=True, lost=False, now=12.5)
        assert t.time_scored == 1
        assert t.mean_abs_time_error == pytest.approx(0.5)
        assert t.time_err_max == pytest.approx(0.5)

    def test_eta_anchored_to_last_observation(self):
        """The observe-then-predict pattern: no explicit ``now`` on the
        prediction, so the last observation's timestamp is the anchor."""
        t = AccuracyTracker()
        t.note_observation(1, matched=True, lost=False, now=1.0)
        t.note_prediction(5, distance=1, eta=1.0)
        t.note_observation(5, matched=True, lost=False, now=2.5)
        assert t.mean_abs_time_error == pytest.approx(0.5)

    def test_misses_not_time_scored(self):
        t = AccuracyTracker()
        t.note_prediction(5, distance=1, eta=2.0, now=0.0)
        t.note_observation(7, matched=False, lost=False, now=3.0)
        assert t.time_scored == 0

    def test_untimed_predictions_not_time_scored(self):
        t = AccuracyTracker()
        t.note_prediction(5, distance=1)
        t.note_observation(5, matched=True, lost=False, now=3.0)
        assert t.hits == 1 and t.time_scored == 0


class TestLostResync:
    def test_lost_counts_once_per_episode(self):
        t = AccuracyTracker()
        t.note_observation(None, matched=False, lost=True)
        t.note_observation(None, matched=False, lost=True)
        assert t.lost_events == 1
        t.note_observation(1, matched=False, lost=False)
        assert t.resyncs == 1
        t.note_observation(None, matched=False, lost=True)
        assert t.lost_events == 2

    def test_losing_position_clears_pending_claims(self):
        t = AccuracyTracker()
        t.note_prediction(5, distance=2)
        t.note_observation(None, matched=False, lost=True)
        t.note_observation(5, matched=False, lost=False)
        assert t.scored == 0  # the claim died with the position

    def test_unexpected_restart_counted(self):
        t = AccuracyTracker()
        t.note_observation(1, matched=True, lost=False)
        t.note_observation(2, matched=False, lost=False)
        assert t.unexpected_restarts == 1

    def test_report_keys(self):
        rep = AccuracyTracker().report()
        assert set(rep) == {
            "predictions_scored", "hits", "misses", "hit_rate",
            "rolling_hit_rate", "lost_events", "resyncs",
            "unexpected_restarts", "time_scored", "mean_abs_time_error",
            "max_abs_time_error", "lost_episode_lengths",
        }

    def test_one_resync_despite_repeated_mismatches_in_one_episode(self):
        """A single lost episode with many lost observations (and
        mismatches on the way back) must count exactly one resync."""
        t = AccuracyTracker()
        t.note_observation(1, matched=True, lost=False)
        for _ in range(5):  # five consecutive lost observations
            t.note_observation(None, matched=False, lost=True)
        # re-acquired via an unexpected restart: still ONE resync
        t.note_observation(2, matched=False, lost=False)
        assert t.lost_events == 1
        assert t.resyncs == 1
        assert t.unexpected_restarts == 1
        # staying in sync afterwards adds nothing
        t.note_observation(3, matched=True, lost=False)
        assert t.resyncs == 1

    def test_episode_length_histogram(self):
        t = AccuracyTracker()
        for length in (1, 3, 5):
            for _ in range(length):
                t.note_observation(None, matched=False, lost=True)
            t.note_observation(1, matched=True, lost=False)
        hist = t.episode_histogram()
        assert hist["count"] == 3
        assert hist["sum"] == 9
        assert hist["max"] == 5
        # 1 -> bucket le=1, 3 -> le=4, 5 -> le=8
        assert hist["bucket_counts"][EPISODE_BUCKETS.index(1)] == 1
        assert hist["bucket_counts"][EPISODE_BUCKETS.index(4)] == 1
        assert hist["bucket_counts"][EPISODE_BUCKETS.index(8)] == 1
        assert sum(hist["bucket_counts"]) == 3

    def test_open_episode_not_histogrammed_until_resync(self):
        t = AccuracyTracker()
        t.note_observation(None, matched=False, lost=True)
        assert t.episode_histogram()["count"] == 0
        t.note_observation(1, matched=True, lost=False)
        assert t.episode_histogram()["count"] == 1

    def test_overflow_bucket(self):
        t = AccuracyTracker()
        for _ in range(EPISODE_BUCKETS[-1] + 10):
            t.note_observation(None, matched=False, lost=True)
        t.note_observation(1, matched=True, lost=False)
        assert t.episode_histogram()["bucket_counts"][-1] == 1


class TestInsidePredictor:
    """The tracker wired into PythiaPredict, on a synthetic grammar."""

    def test_deterministic_loop_scores_hits(self):
        seq = [A, B, C] * 8
        p = PythiaPredict(freeze(seq))
        for ev in seq[:-1]:
            p.observe(ev)
            p.predict(1)
        stats = p.stats()
        assert stats["predictions_scored"] > 15
        assert stats["hit_rate"] > 0.8
        assert stats["lost_events"] == 0

    def test_unknown_event_drives_lost_then_resync(self):
        seq = [A, B, C] * 4
        p = PythiaPredict(freeze(seq))
        p.observe(A)
        p.observe(99)  # never in the reference: tracker is lost
        assert p.lost
        stats = p.stats()
        assert stats["lost_events"] == 1 and stats["resyncs"] == 0
        p.observe(A)  # re-acquires a position
        assert not p.lost
        assert p.stats()["resyncs"] == 1

    def test_observe_unknown_matches_observe_of_unknown_terminal(self):
        """The daemon path (observe_unknown) and the facade path must
        report identical statistics."""
        seq = [A, B, C] * 4
        via_terminal = PythiaPredict(freeze(seq))
        via_unknown = PythiaPredict(freeze(seq))
        for p in (via_terminal, via_unknown):
            p.observe(A)
        via_terminal.observe(99)
        via_unknown.observe_unknown()
        s1, s2 = via_terminal.stats(), via_unknown.stats()
        for key in ("observed", "unknown", "candidates", "lost_events"):
            assert s1[key] == s2[key], key


class TestAggregation:
    def test_single_report_returned_as_copy(self):
        p = PythiaPredict(freeze([A, B, C] * 4))
        p.observe(A)
        rep = p.stats()
        agg = aggregate_stats([rep])
        assert agg == rep
        assert agg is not rep

    def test_merge_recomputes_rates(self):
        t1, t2 = AccuracyTracker(), AccuracyTracker()
        for _ in range(3):
            t1.note_prediction(1, distance=1)
            t1.note_observation(1, matched=True, lost=False)
        t2.note_prediction(1, distance=1)
        t2.note_observation(2, matched=False, lost=False)
        merged = merge_reports([t1.report(), t2.report()])
        assert merged["predictions_scored"] == 4
        assert merged["hits"] == 3 and merged["misses"] == 1
        assert merged["hit_rate"] == pytest.approx(0.75)

    def test_merge_time_error_weighted_by_scored(self):
        t1, t2 = AccuracyTracker(), AccuracyTracker()
        t1.note_prediction(1, distance=1, eta=1.0, now=0.0)
        t1.note_observation(1, matched=True, lost=False, now=2.0)  # err 1.0
        for _ in range(3):
            t2.note_prediction(1, distance=1, eta=1.0, now=0.0)
            t2.note_observation(1, matched=True, lost=False, now=1.0)  # err 0
        merged = merge_reports([t1.report(), t2.report()])
        assert merged["time_scored"] == 4
        assert merged["mean_abs_time_error"] == pytest.approx(0.25)
        assert merged["max_abs_time_error"] == pytest.approx(1.0)

    def test_merge_episode_histograms(self):
        t1, t2 = AccuracyTracker(), AccuracyTracker()
        for t, length in ((t1, 2), (t2, 6)):
            for _ in range(length):
                t.note_observation(None, matched=False, lost=True)
            t.note_observation(1, matched=True, lost=False)
        merged = merge_reports([t1.report(), t2.report()])
        hist = merged["lost_episode_lengths"]
        assert hist["count"] == 2
        assert hist["sum"] == 8
        assert hist["max"] == 6
        assert sum(hist["bucket_counts"]) == 2

    def test_aggregate_sums_base_counters(self):
        reports = []
        for _ in range(2):
            p = PythiaPredict(freeze([A, B, C] * 4))
            p.observe(A)
            p.observe(B)
            reports.append(p.stats())
        agg = aggregate_stats(reports)
        assert agg["observed"] == 4
        assert agg["matched"] == 2
