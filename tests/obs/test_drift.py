"""Drift monitor: detection, hysteresis, baseline capture, wiring."""

from __future__ import annotations

import json

import pytest

from repro.core.predict import PythiaPredict
from repro.obs import metrics as m
from repro.obs.drift import (
    DIVERGED,
    DRIFTING,
    OK,
    DriftBaseline,
    DriftMonitor,
    baseline_from_replay,
)
from repro.obs.flight import FlightRecorder
from tests.conftest import A, B, C, freeze


def _monitored(stream, *, flight=None, **monitor_kwargs):
    tracker = PythiaPredict(freeze(stream))
    monitor = DriftMonitor(**monitor_kwargs)
    tracker.attach_drift(monitor)
    if flight is not None:
        tracker.attach_flight(flight)
    return tracker, monitor


class TestDetection:
    def test_in_sync_stream_stays_ok(self):
        stream = [A, B, C] * 64
        tracker, monitor = _monitored(stream)
        for t in stream[:-1]:
            tracker.observe(t)
            tracker.predict(1)
        assert monitor.state == OK
        assert monitor.transitions == []
        assert monitor.hit_ewma > 0.8

    def test_workload_switch_diverges_within_64_events(self, tmp_path):
        """Acceptance: an injected workload switch (events the reference
        never saw) must reach DIVERGED within 64 events, fire the
        callback, and auto-dump a journal containing the transition."""
        stream = [A, B, C] * 40
        flight = FlightRecorder(128, session="switch", dump_dir=str(tmp_path))
        tracker, monitor = _monitored(stream, flight=flight)
        fired = []
        monitor.on_transition(lambda old, new, snap: fired.append((old, new, snap)))

        for t in stream:  # phase 1: the recorded workload, all in sync
            tracker.observe(t)
            tracker.predict(1)
        assert monitor.state == OK
        switch_at = tracker.observed

        for i in range(64):  # phase 2: a different workload entirely
            tracker.observe_unknown()
            if monitor.state == DIVERGED:
                break
        assert monitor.state == DIVERGED
        assert tracker.observed - switch_at <= 64

        # the callback saw the escalation (possibly via DRIFTING)
        assert fired
        assert fired[-1][1] == DIVERGED
        assert fired[-1][2]["unseen_ewma"] > 0.3

        # the transition was auto-dumped with the journal around it
        dumped = list(tmp_path.glob("flight-switch.jsonl"))
        assert len(dumped) == 1
        entries = [json.loads(line) for line in dumped[0].read_text().splitlines()]
        transitions = [e for e in entries if e["kind"] == "transition"]
        assert any(e["to"] == DIVERGED for e in transitions)
        # context retained despite the unknown-event storm
        assert any(e["kind"] == "run" for e in entries)

    def test_callback_exception_does_not_kill_tracking(self):
        stream = [A, B, C] * 40
        tracker, monitor = _monitored(stream)

        @monitor.on_transition
        def _boom(old, new, snap):
            raise RuntimeError("observer bug")

        for t in stream:
            tracker.observe(t)
        for _ in range(64):
            tracker.observe_unknown()
        assert monitor.state == DIVERGED  # transition happened anyway

    def test_recovery_has_hysteresis(self):
        """After the storm ends, the monitor must see several calm ticks
        before stepping back down — no flapping on one good block."""
        stream = [A, B, C] * 200
        tracker, monitor = _monitored(stream)
        seen = []
        monitor.on_transition(lambda old, new, snap: seen.append((old, new)))
        for t in stream[:120]:
            tracker.observe(t)
            tracker.predict(1)
        for _ in range(64):
            tracker.observe_unknown()
        assert monitor.state == DIVERGED
        # one calm block is not enough to recover
        for t in (stream * 2)[: monitor.stride]:
            tracker.observe(t)
            tracker.predict(1)
        assert monitor.state == DIVERGED
        # sustained calm eventually recovers to OK
        for t in (stream * 4)[: 12 * monitor.stride]:
            tracker.observe(t)
            tracker.predict(1)
        assert monitor.state == OK
        assert seen[0][1] in (DRIFTING, DIVERGED)
        assert seen[-1][1] == OK

    def test_resync_storm_detected_without_unknown_events(self):
        """A workload switch within the known alphabet (every event seen
        before, but in the wrong order) must also trip the monitor."""
        stream = ([A] * 8 + [B] * 8 + [C] * 8) * 20
        tracker, monitor = _monitored(stream)
        for t in stream:
            tracker.observe(t)
            tracker.predict(1)
        assert monitor.state == OK
        # now a hostile order: the tracker restarts over and over
        import random

        rng = random.Random(7)
        for _ in range(128):
            tracker.observe(rng.choice([A, B, C]))
            tracker.predict(1)
        assert monitor.state != OK


class TestMonitorMechanics:
    def test_validation(self):
        with pytest.raises(ValueError):
            DriftMonitor(stride=0)
        with pytest.raises(ValueError):
            DriftMonitor(alpha=0.0)
        with pytest.raises(ValueError):
            DriftMonitor(alpha=1.5)

    def test_update_without_new_events_is_noop(self):
        stream = [A, B, C] * 8
        tracker, monitor = _monitored(stream)
        tracker.observe(A)
        monitor.update(tracker)
        updates = monitor.updates
        assert monitor.update(tracker) == monitor.state
        assert monitor.updates == updates  # no delta, no update

    def test_shared_monitor_keeps_per_tracker_deltas(self):
        stream = [A, B, C] * 32
        fg = freeze(stream)
        monitor = DriftMonitor(stride=8)
        t1 = PythiaPredict(fg)
        t2 = PythiaPredict(fg)
        t1.attach_drift(monitor)
        t2.attach_drift(monitor)
        for t in stream:
            t1.observe(t)
            t2.observe(t)
        # absorb the tail blocks (calm sessions feed on a stretched
        # cadence), then every event is accounted exactly once
        monitor.update(t1)
        monitor.update(t2)
        assert monitor.events == t1.observed + t2.observed
        assert monitor.state == OK

    def test_gauges_published(self):
        prev = m.get_registry()
        try:
            reg = m.MetricsRegistry()
            m.set_registry(reg)
            stream = [A, B, C] * 32
            tracker, monitor = _monitored(stream, gauge_every=1)
            for t in stream:
                tracker.observe(t)
            snap = reg.snapshot()
            assert snap["pythia_drift_state"] == 0
            assert "pythia_drift_hit_rate" in snap
            assert "pythia_drift_entropy" in snap
        finally:
            m.set_registry(prev)

    def test_report_shape(self):
        stream = [A, B, C] * 40
        tracker, monitor = _monitored(stream)
        for t in stream:
            tracker.observe(t)
        for _ in range(64):
            tracker.observe_unknown()
        report = monitor.report()
        assert report["state"] == DIVERGED
        assert report["baseline"] == DriftBaseline().to_obj()
        assert report["transitions"]
        assert report["transitions"][-1]["to"] == DIVERGED
        json.dumps(report)  # JSON-safe end to end


class TestBaseline:
    def test_baseline_from_replay_of_regular_stream(self):
        stream = [A, B, C] * 64
        base = baseline_from_replay(freeze(stream), stream)
        assert base.hit_rate > 0.9
        assert base.unseen_ratio == 0.0
        assert base.resync_rate < 0.05
        assert base.entropy >= 0.0

    def test_noisy_baseline_prevents_false_alarms(self):
        """A monitor given the replay baseline of an *irregular* stream
        must not alarm when the live run behaves like that reference."""
        import random

        rng = random.Random(11)
        stream = [rng.randrange(3) for _ in range(600)]
        fg = freeze(stream)
        base = baseline_from_replay(fg, stream)
        tracker = PythiaPredict(fg)
        calibrated = DriftMonitor(base)
        tracker.attach_drift(calibrated)
        for t in stream:
            tracker.observe(t)
            tracker.predict(1)
        assert calibrated.state == OK

    def test_round_trip(self):
        base = DriftBaseline(hit_rate=0.7, unseen_ratio=0.1, resync_rate=0.2, entropy=1.5)
        assert DriftBaseline.from_obj(base.to_obj()) == base
