"""Metrics history ring: rates, deltas, windows, persistence."""

from __future__ import annotations

import time

import pytest

from repro.obs.history import (
    DEFAULT_RATE_KEYS,
    MetricsHistory,
    history_from_env,
    sample_key,
)
from repro.obs.metrics import MetricsRegistry, render_prometheus


def filled(points, key="pythia_server_requests_total"):
    """A ring pre-loaded with ``(t, value)`` points for one key."""
    hist = MetricsHistory(MetricsRegistry(), capacity=1000)
    for t, v in points:
        hist.record_values({key: float(v)}, now=float(t))
    return hist


class TestSampleKey:
    def test_bare_name(self):
        assert sample_key("x_total") == "x_total"

    def test_labels_sorted_and_quoted(self):
        key = sample_key("x_total", {"b": "2", "a": "1"})
        assert key == 'x_total{a="1",b="2"}'


class TestRecording:
    def test_record_flattens_registry(self):
        reg = MetricsRegistry()
        reg.counter("r_total").inc(5)
        reg.gauge("g", {"sid": "a"}).set(2)
        hist = MetricsHistory(reg)
        hist.record(now=100.0)
        keys = hist.keys()
        assert "r_total" in keys
        assert 'g{sid="a"}' in keys

    def test_record_histograms_as_sum_and_count(self):
        reg = MetricsRegistry()
        reg.histogram("lat_seconds").observe(0.5)
        hist = MetricsHistory(reg)
        hist.record(now=1.0)
        assert hist.series("lat_seconds_sum") == [(1.0, 0.5)]
        assert hist.series("lat_seconds_count") == [(1.0, 1.0)]

    def test_record_page_skips_buckets(self):
        reg = MetricsRegistry()
        reg.histogram("lat_seconds").observe(0.5)
        reg.counter("r_total").inc(3)
        hist = MetricsHistory(None)
        hist.record_page(render_prometheus(reg), now=1.0)
        keys = hist.keys()
        assert "r_total" in keys
        assert "lat_seconds_sum" in keys
        assert not any("_bucket" in k for k in keys)

    def test_ring_is_bounded(self):
        hist = MetricsHistory(MetricsRegistry(), capacity=3)
        for i in range(10):
            hist.record_values({"x": float(i)}, now=float(i))
        assert len(hist) == 3
        assert hist.series("x") == [(7.0, 7.0), (8.0, 8.0), (9.0, 9.0)]

    def test_capacity_floor(self):
        with pytest.raises(ValueError):
            MetricsHistory(MetricsRegistry(), capacity=1)


class TestQueries:
    def test_delta_and_rate(self):
        hist = filled([(0, 100), (10, 150), (20, 300)])
        key = "pythia_server_requests_total"
        assert hist.delta(key) == 200
        assert hist.rate(key) == pytest.approx(10.0)  # 200 over 20s

    def test_rate_clamps_counter_resets(self):
        # process restart at t=20: counter drops 300 -> 5
        hist = filled([(0, 100), (10, 300), (20, 5), (30, 105)])
        key = "pythia_server_requests_total"
        # positive increases only: 200 + 100 over 30s
        assert hist.rate(key) == pytest.approx(300 / 30)

    def test_window_clips_old_entries(self):
        hist = filled([(0, 0), (100, 100), (110, 160)])
        key = "pythia_server_requests_total"
        assert hist.rate(key, window_s=15) == pytest.approx(6.0)
        assert hist.delta(key, window_s=15) == 60

    def test_insufficient_points_is_none(self):
        hist = filled([(0, 100)])
        key = "pythia_server_requests_total"
        assert hist.rate(key) is None
        assert hist.delta(key) is None
        assert hist.rate("absent") is None

    def test_percentiles_over_gauge(self):
        hist = MetricsHistory(MetricsRegistry())
        for i, v in enumerate([1, 2, 3, 4, 100]):
            hist.record_values({"g": float(v)}, now=float(i))
        pcts = hist.percentiles("g", (0.5, 1.0))
        assert pcts[0.5] == 3
        assert pcts[1.0] == 100
        assert hist.percentiles("absent") is None
        with pytest.raises(ValueError):
            hist.percentiles("g", (1.5,))

    def test_view_shape(self):
        hist = filled([(0, 0), (1, 60), (2, 120)])
        view = hist.view()
        key = "pythia_server_requests_total"
        assert view["entries"] == 3
        assert view["span_seconds"] == 2.0
        assert view["rates"][key] == pytest.approx(60.0)
        assert view["series"][key] == [[0.0, 0.0], [1.0, 60.0], [2.0, 120.0]]

    def test_view_decimates_to_max_points(self):
        hist = filled([(float(i), float(i)) for i in range(500)])
        view = hist.view(max_points=50)
        series = view["series"]["pythia_server_requests_total"]
        assert len(series) == 50
        assert series[-1] == [499.0, 499.0]  # newest kept

    def test_view_explicit_keys(self):
        hist = filled([(0, 0), (1, 5)], key="custom_total")
        view = hist.view(keys=["custom_total"])
        assert list(view["series"]) == ["custom_total"]

    def test_default_rate_keys_match_exported_names(self):
        # the daemon exports counters under these exact spellings; a
        # typo here would silently produce empty default views
        assert "pythia_server_requests_total" in DEFAULT_RATE_KEYS
        assert "pythia_server_events_observed" in DEFAULT_RATE_KEYS


class TestBackgroundThread:
    def test_start_stop_records(self):
        reg = MetricsRegistry()
        reg.counter("r_total").inc(1)
        hist = MetricsHistory(reg, interval=0.05)
        hist.start()
        try:
            deadline = time.monotonic() + 5.0
            while len(hist) < 2:
                assert time.monotonic() < deadline, "ring never filled"
                time.sleep(0.02)
        finally:
            hist.stop()
        assert not hist.running
        assert hist.series("r_total")

    def test_bad_collector_does_not_kill_the_thread(self):
        reg = MetricsRegistry()

        def boom(_reg):
            raise RuntimeError("collector bug")

        reg.register_collector(boom)
        hist = MetricsHistory(reg, interval=0.05)
        hist.start()
        try:
            time.sleep(0.2)
            assert hist.running
        finally:
            hist.stop()


class TestPersistence:
    def test_jsonl_round_trip(self, tmp_path):
        hist = filled([(1.5, 10), (2.5, 30)])
        path = str(tmp_path / "history.jsonl")
        assert hist.dump(path) == 2
        loaded = MetricsHistory.load(path)
        key = "pythia_server_requests_total"
        assert loaded.series(key) == [(1.5, 10.0), (2.5, 30.0)]
        assert loaded.rate(key) == pytest.approx(20.0)

    def test_to_jsonl_one_line_per_entry(self):
        hist = filled([(1, 1), (2, 2)])
        lines = hist.to_jsonl().strip().splitlines()
        assert len(lines) == 2


class TestEnv:
    def test_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("PYTHIA_HISTORY", "0")
        assert history_from_env() is None

    def test_defaults(self, monkeypatch):
        for var in ("PYTHIA_HISTORY", "PYTHIA_HISTORY_INTERVAL",
                    "PYTHIA_HISTORY_CAP"):
            monkeypatch.delenv(var, raising=False)
        hist = history_from_env()
        assert hist is not None
        assert hist.interval == 1.0
        assert hist.capacity == 600

    def test_tuned(self, monkeypatch):
        monkeypatch.setenv("PYTHIA_HISTORY_INTERVAL", "0.5")
        monkeypatch.setenv("PYTHIA_HISTORY_CAP", "10")
        hist = history_from_env()
        assert hist.interval == 0.5
        assert hist.capacity == 10


class TestMonotonicTimeline:
    """Regression: the ring must key its timeline on the monotonic
    clock, so an NTP step / backwards wall-clock jump cannot corrupt
    windows, rates or spans (only display timestamps follow the wall)."""

    def test_backwards_wall_jump_does_not_break_rate(self, monkeypatch):
        hist = MetricsHistory(MetricsRegistry(), capacity=1000)
        key = "pythia_server_requests_total"
        mono = iter([100.0, 101.0, 102.0, 103.0, 104.0])
        # wall clock steps back 1h between the 2nd and 3rd snapshot
        wall = iter([1000.0, 1001.0, 1001.0 - 3600.0, 1002.0 - 3600.0,
                     1003.0 - 3600.0])
        monkeypatch.setattr(time, "monotonic", lambda: next(mono))
        monkeypatch.setattr(time, "time", lambda: next(wall))
        for v in (0, 10, 20, 30, 40):
            hist.record_values({key: float(v)})
        # 40 requests over 4 monotonic seconds; the wall jump is invisible
        assert hist.rate(key) == pytest.approx(10.0)
        assert hist.delta(key) == 40.0
        assert hist.view(keys=[key])["span_seconds"] == pytest.approx(4.0)

    def test_backwards_wall_jump_does_not_clip_windows(self, monkeypatch):
        hist = MetricsHistory(MetricsRegistry(), capacity=1000)
        mono = iter([10.0, 11.0, 12.0])
        wall = iter([5000.0, 1.0, 2.0])  # giant backwards step after entry 1
        monkeypatch.setattr(time, "monotonic", lambda: next(mono))
        monkeypatch.setattr(time, "time", lambda: next(wall))
        for v in (1, 2, 3):
            hist.record_values({"g": float(v)})
        # a 10s window spans all three entries on the monotonic clock,
        # even though wall timestamps went 5000 -> 1 -> 2
        assert [v for _, v in hist.series("g", window_s=10.0)] == [1.0, 2.0, 3.0]
        assert hist.percentiles("g", (0.5,), window_s=10.0)[0.5] == 2.0

    def test_wall_timestamps_still_drive_display_and_jsonl(self, monkeypatch):
        hist = MetricsHistory(MetricsRegistry(), capacity=10)
        monkeypatch.setattr(time, "monotonic", lambda: 55.0)
        monkeypatch.setattr(time, "time", lambda: 1234.5)
        hist.record_values({"g": 1.0})
        assert hist.entries() == [(1234.5, {"g": 1.0})]
        assert hist.series("g") == [(1234.5, 1.0)]
        assert '"t": 1234.5' in hist.to_jsonl()

    def test_explicit_now_pins_both_clocks(self):
        hist = filled([(1.0, 0), (2.0, 100)])
        assert hist.rate("pythia_server_requests_total") == pytest.approx(100.0)
        assert hist.entries()[0][0] == 1.0
