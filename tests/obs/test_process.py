"""Process metrics: /proc parsing and off-Linux degradation."""

from __future__ import annotations

import os

from repro.obs.metrics import MetricsRegistry, render_prometheus
from repro.obs.process import read_process_stats, register_process_metrics


class TestReadProcessStats:
    def test_portable_fields_always_present(self):
        stats = read_process_stats()
        assert stats["cpu_seconds"] >= 0
        assert stats["threads"] >= 1
        assert stats["start_time"] > 0

    def test_proc_fields_on_linux(self):
        if not os.path.exists("/proc/self/stat"):
            return  # nothing /proc-specific to check here
        stats = read_process_stats()
        assert stats["rss_bytes"] > 0
        assert stats["vsize_bytes"] > stats["rss_bytes"] / 1000
        assert stats["open_fds"] >= 3  # stdin/stdout/stderr at least
        # started after the 2020 epoch, not in the future
        import time

        assert 1.6e9 < stats["start_time"] <= time.time() + 1

    def test_graceful_without_proc(self):
        stats = read_process_stats(proc="/nonexistent-proc")
        assert "cpu_seconds" in stats  # os.times fallback
        assert "threads" in stats
        assert "start_time" in stats
        assert "rss_bytes" not in stats  # memory honestly omitted
        assert "open_fds" not in stats


class TestRegisterProcessMetrics:
    def test_exposition_carries_process_family(self):
        reg = MetricsRegistry()
        register_process_metrics(reg)
        text = render_prometheus(reg)
        assert "pythia_process_cpu_seconds_total" in text
        assert "pythia_process_threads" in text
        assert "pythia_process_start_time_seconds" in text
        assert "# TYPE pythia_process_cpu_seconds_total counter" in text

    def test_idempotent_registration(self):
        reg = MetricsRegistry()
        register_process_metrics(reg)
        register_process_metrics(reg)
        text = render_prometheus(reg)
        assert text.count("# TYPE pythia_process_cpu_seconds_total") == 1

    def test_values_fresh_at_scrape_time(self):
        reg = MetricsRegistry()
        register_process_metrics(reg)
        render_prometheus(reg)
        # burn a little CPU between scrapes
        sum(i * i for i in range(200_000))
        first = _cpu(render_prometheus(reg))
        sum(i * i for i in range(2_000_000))
        second = _cpu(render_prometheus(reg))
        assert second >= first


def _cpu(text: str) -> float:
    from repro.obs.metrics import parse_prometheus_text

    return parse_prometheus_text(text).value("pythia_process_cpu_seconds_total")
