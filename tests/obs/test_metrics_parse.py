"""Prometheus exposition round-trip: parse_prometheus_text vs render.

Guards the exposition contract the ops console depends on: HELP/TYPE
metadata per family, ``_sum``/``_count`` series and cumulative ``le``
buckets on histograms, label escaping — anything render emits, parse
must read back unchanged.
"""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    Histogram,
    MetricsRegistry,
    merge_expositions,
    parse_prometheus_text,
    quantile_from_buckets,
    render_prometheus,
)


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("requests_total", help="total requests").inc(42)
    reg.counter("requests_total", {"op": "observe"}).inc(7)
    reg.gauge("sessions_active", help="live sessions").set(3)
    hist = reg.histogram("latency_seconds", buckets=LATENCY_BUCKETS_S,
                         help="request latency")
    for value in (1e-6, 5e-6, 1e-4, 2e-3):
        hist.observe(value)
    return reg


class TestRoundTrip:
    def test_values_survive(self):
        parsed = parse_prometheus_text(render_prometheus(populated_registry()))
        assert parsed.value("requests_total") == 42
        assert parsed.value("requests_total", {"op": "observe"}) == 7
        assert parsed.value("sessions_active") == 3

    def test_histogram_sum_count_and_buckets(self):
        parsed = parse_prometheus_text(render_prometheus(populated_registry()))
        assert parsed.value("latency_seconds_count") == 4
        assert parsed.value("latency_seconds_sum") == pytest.approx(
            1e-6 + 5e-6 + 1e-4 + 2e-3
        )
        buckets = parsed.buckets("latency_seconds")
        assert buckets, "no le buckets parsed"
        bounds, counts = zip(*buckets)
        assert counts == tuple(sorted(counts)), "buckets must be cumulative"
        assert bounds[-1] == math.inf
        assert counts[-1] == 4  # +Inf bucket equals _count

    def test_help_and_type_metadata(self):
        parsed = parse_prometheus_text(render_prometheus(populated_registry()))
        assert parsed.families["requests_total"]["type"] == "counter"
        assert parsed.families["requests_total"]["help"] == "total requests"
        assert parsed.families["sessions_active"]["type"] == "gauge"
        assert parsed.families["latency_seconds"]["type"] == "histogram"

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        nasty = 'a"b\\c\nd'
        reg.counter("weird_total", {"who": nasty}).inc(1)
        parsed = parse_prometheus_text(render_prometheus(reg))
        assert parsed.value("weird_total", {"who": nasty}) == 1

    def test_quantiles_from_parsed_buckets(self):
        reg = MetricsRegistry()
        hist = reg.histogram("q_seconds", buckets=LATENCY_BUCKETS_S)
        for _ in range(100):
            hist.observe(3e-5)
        parsed = parse_prometheus_text(render_prometheus(reg))
        p50 = parsed.quantile("q_seconds", 0.50)
        # every sample landed in one bucket; the quantile lands inside it
        lo = max(b for b in LATENCY_BUCKETS_S if b < 3e-5)
        hi = min(b for b in LATENCY_BUCKETS_S if b >= 3e-5)
        assert lo <= p50 <= hi


class TestParser:
    def test_series_enumerates_label_sets(self):
        reg = MetricsRegistry()
        reg.counter("x_total", {"op": "a"}).inc(1)
        reg.counter("x_total", {"op": "b"}).inc(2)
        parsed = parse_prometheus_text(render_prometheus(reg))
        series = {labels["op"]: v for labels, v in parsed.series("x_total")}
        assert series == {"a": 1, "b": 2}

    def test_missing_metric_is_none(self):
        parsed = parse_prometheus_text("")
        assert parsed.value("nope") is None
        assert parsed.buckets("nope") == []
        assert parsed.quantile("nope", 0.5) is None

    def test_malformed_lines_skipped(self):
        text = "\n".join([
            "# random comment",
            "not_a_metric_line",
            "ok_total 5",
            "",
        ])
        parsed = parse_prometheus_text(text)
        assert parsed.value("ok_total") == 5

    def test_inf_values(self):
        parsed = parse_prometheus_text('x_bucket{le="+Inf"} 3\nx_count 3\n')
        assert parsed.buckets("x") == [(math.inf, 3)]


class TestQuantileFromBuckets:
    def test_empty_is_zero(self):
        # None-for-missing is ParsedMetrics.quantile's job; the raw
        # helper degrades to 0.0 so callers can render without guards
        assert quantile_from_buckets([], 0.5) == 0.0

    def test_single_bucket_interpolates_from_zero(self):
        assert quantile_from_buckets([(1.0, 10)], 0.5) == pytest.approx(0.5)
        assert quantile_from_buckets([(1.0, 10)], 1.0) == pytest.approx(1.0)

    def test_interpolates_within_bucket(self):
        pairs = [(1.0, 0), (2.0, 100)]
        assert 1.0 <= quantile_from_buckets(pairs, 0.5) <= 2.0

    def test_inf_bucket_clamps_to_top_finite_bound(self):
        pairs = [(1.0, 0), (math.inf, 10)]
        assert quantile_from_buckets(pairs, 0.99) == pytest.approx(1.0)


class TestHistogramMerge:
    def test_merge_folds_counts_and_extremes(self):
        a = Histogram("h", buckets=(1.0, 2.0))
        b = Histogram("h", buckets=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(5.0)
        a.merge(b)
        snap = a.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(7.0)
        assert snap["min"] == pytest.approx(0.5)
        assert snap["max"] == pytest.approx(5.0)

    def test_merge_requires_identical_buckets(self):
        a = Histogram("h", buckets=(1.0, 2.0))
        b = Histogram("h", buckets=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b)


class TestMergeExpositions:
    """The supervisor's merged scrape must stay a valid exposition."""

    @staticmethod
    def worker_page(cpu: float) -> str:
        reg = MetricsRegistry()
        reg.counter("pythia_server_requests_total", help="total requests").inc(10)
        reg.counter(
            "pythia_process_cpu_seconds_total", help="cpu seconds"
        )._set_total(cpu)
        return render_prometheus(reg)

    @staticmethod
    def own_page() -> str:
        reg = MetricsRegistry()
        reg.gauge("pythia_worker_up", {"worker": "0"}, help="worker alive").set(1)
        reg.counter(
            "pythia_process_cpu_seconds_total", help="cpu seconds"
        )._set_total(0.5)
        return render_prometheus(reg)

    def test_worker_label_injected(self):
        merged = merge_expositions({0: self.worker_page(1.0),
                                    1: self.worker_page(2.0)})
        parsed = parse_prometheus_text(merged)
        per_worker = {
            labels["worker"]: v
            for labels, v in parsed.series("pythia_process_cpu_seconds_total")
        }
        assert per_worker == {"0": 1.0, "1": 2.0}

    def test_headers_once_per_family_across_workers(self):
        merged = merge_expositions({0: self.worker_page(1.0),
                                    1: self.worker_page(2.0)})
        for family in ("pythia_server_requests_total",
                       "pythia_process_cpu_seconds_total"):
            assert merged.count(f"# TYPE {family} ") == 1
            assert merged.count(f"# HELP {family} ") == 1

    def test_own_page_family_overlap_stays_deduped(self):
        # pythia_process_* exists in every worker AND the supervisor:
        # the merged page must still announce each family exactly once
        merged = merge_expositions(
            {0: self.worker_page(1.0), 1: self.worker_page(2.0)},
            own=self.own_page(),
        )
        assert merged.count("# TYPE pythia_process_cpu_seconds_total ") == 1
        assert merged.count("# HELP pythia_process_cpu_seconds_total ") == 1
        parsed = parse_prometheus_text(merged)
        series = parsed.series("pythia_process_cpu_seconds_total")
        assert len(series) == 3  # two workers + the supervisor itself

    def test_own_page_labels_preserved_not_injected(self):
        merged = merge_expositions({1: self.worker_page(1.0)},
                                   own=self.own_page())
        parsed = parse_prometheus_text(merged)
        # the supervisor's own sample carries no injected worker label...
        assert parsed.value("pythia_process_cpu_seconds_total") == 0.5
        # ...and its pre-labeled series survive verbatim
        assert parsed.value("pythia_worker_up", {"worker": "0"}) == 1

    def test_every_noncomment_line_parses(self):
        merged = merge_expositions(
            {0: self.worker_page(1.0)}, own=self.own_page()
        )
        parsed = parse_prometheus_text(merged)
        samples = sum(1 for line in merged.splitlines()
                      if line and not line.startswith("#"))
        assert samples == len(parsed.samples)


class TestRegistryRemove:
    def test_remove_drops_series_from_exposition(self):
        reg = MetricsRegistry()
        reg.counter("s_total", {"session": "cAAA"}).inc(1)
        reg.counter("s_total", {"session": "cBBB"}).inc(1)
        assert reg.remove("s_total", {"session": "cAAA"}) is True
        assert reg.remove("s_total", {"session": "cAAA"}) is False
        text = render_prometheus(reg)
        assert 'session="cAAA"' not in text
        assert 'session="cBBB"' in text
