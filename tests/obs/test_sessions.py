"""SessionStats: the daemon's bounded per-client-session telemetry table."""

from __future__ import annotations

import threading

import pytest

from repro.obs.sessions import DEFAULT_SESSION_CAPACITY, SessionEntry, SessionStats


class TestSessionEntry:
    def test_snapshot_shape(self):
        entry = SessionEntry("c1", now=100.0)
        entry.requests = 3
        entry.ops["observe"] = 3
        entry.lat.observe(2e-6, 40e-6)
        snap = entry.snapshot()
        assert snap["sid"] == "c1"
        assert snap["requests"] == 3
        assert snap["ops"] == {"observe": 3}
        assert snap["queue_us"]["p50"] > 0
        assert snap["handler_us"]["max"] >= snap["handler_us"]["p50"] > 0
        # JSON-safe: only scalars, dicts and lists
        import json

        json.dumps(snap)


class TestSessionStats:
    def test_record_accumulates(self):
        table = SessionStats(capacity=4)
        for rid in range(1, 6):
            table.record("c1", "observe", rid, 1e-6, 10e-6)
        table.record("c1", "predict", 6, 1e-6, 10e-6, error=True)
        entry = table.get("c1")
        assert entry is not None
        assert entry.requests == 6
        assert entry.errors == 1
        assert entry.last_rid == 6
        assert entry.ops == {"observe": 5, "predict": 1}
        assert entry.rid_regressions == 0

    def test_rid_regression_detected(self):
        table = SessionStats(capacity=4)
        table.record("c1", "observe", 5, 0.0, 0.0)
        table.record("c1", "observe", 5, 0.0, 0.0)  # duplicate
        table.record("c1", "observe", 3, 0.0, 0.0)  # replay
        table.record("c1", "observe", 6, 0.0, 0.0)  # forward again
        entry = table.get("c1")
        assert entry.rid_regressions == 2
        assert entry.last_rid == 6

    def test_rid_none_is_not_a_regression(self):
        table = SessionStats(capacity=4)
        table.record("c1", "observe", None, 0.0, 0.0)
        table.record("c1", "observe", None, 0.0, 0.0)
        assert table.get("c1").rid_regressions == 0
        assert table.get("c1").last_rid == 0

    def test_lru_eviction_bounds_table(self):
        table = SessionStats(capacity=3)
        for i in range(10):
            table.record(f"c{i}", "observe", 1, 0.0, 0.0)
        assert len(table) == 3
        assert table.evicted == 7
        kept = [e.sid for e in table.entries()]
        assert kept == ["c7", "c8", "c9"]

    def test_activity_refreshes_lru_position(self):
        table = SessionStats(capacity=2)
        table.record("old", "observe", 1, 0.0, 0.0)
        table.record("new", "observe", 1, 0.0, 0.0)
        table.record("old", "observe", 2, 0.0, 0.0)  # touch -> MRU
        table.record("newest", "observe", 1, 0.0, 0.0)
        assert table.get("old") is not None
        assert table.get("new") is None  # the stale one went

    def test_on_evict_callback_receives_entries(self):
        table = SessionStats(capacity=1)
        gone: list[str] = []
        table.on_evict(lambda entry: gone.append(entry.sid))
        table.record("a", "observe", 1, 0.0, 0.0)
        table.record("b", "observe", 1, 0.0, 0.0)
        table.record("c", "observe", 1, 0.0, 0.0)
        assert gone == ["a", "b"]

    def test_on_evict_callback_may_use_the_table(self):
        """Callbacks run outside the lock — re-entering must not deadlock."""
        table = SessionStats(capacity=1)
        seen_len: list[int] = []
        table.on_evict(lambda entry: seen_len.append(len(table)))
        table.record("a", "observe", 1, 0.0, 0.0)
        table.record("b", "observe", 1, 0.0, 0.0)
        assert seen_len == [1]

    def test_snapshot_is_the_sessions_op_payload(self):
        table = SessionStats(capacity=8)
        table.record("c1", "observe", 1, 1e-6, 5e-6)
        snap = table.snapshot()
        assert snap["capacity"] == 8
        assert snap["tracked"] == 1
        assert snap["evicted"] == 0
        assert [row["sid"] for row in snap["sessions"]] == ["c1"]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SessionStats(capacity=0)
        assert SessionStats().capacity == DEFAULT_SESSION_CAPACITY

    def test_concurrent_recording(self):
        table = SessionStats(capacity=16)
        n_threads, per_thread = 8, 200

        def worker(idx: int) -> None:
            for rid in range(1, per_thread + 1):
                table.record(f"c{idx}", "observe", rid, 1e-6, 1e-6)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(table) == n_threads
        for i in range(n_threads):
            entry = table.get(f"c{i}")
            assert entry.requests == per_thread
            assert entry.last_rid == per_thread
            assert entry.rid_regressions == 0
