"""OpsConsole: the live console rendered from fake poll snapshots."""

from __future__ import annotations

import io

from repro.obs.metrics import MetricsRegistry, render_prometheus
from repro.obs.top import OpsConsole


def metrics_text(requests=100, active=2, queue_s=(1e-5,), handler=None):
    reg = MetricsRegistry()
    reg.counter("pythia_server_requests_total").inc(requests)
    reg.counter("pythia_server_predictions_served").inc(requests // 2)
    reg.counter("pythia_server_events_observed").inc(requests * 3)
    reg.gauge("pythia_server_sessions_active").set(active)
    queue = reg.histogram("pythia_server_queue_seconds")
    for value in queue_s:
        queue.observe(value)
    for op, values in (handler or {}).items():
        hist = reg.histogram("pythia_server_request_seconds", {"op": op})
        for value in values:
            hist.observe(value)
    return render_prometheus(reg)


def sessions_table(rows=()):
    return {
        "capacity": 256,
        "tracked": len(rows),
        "evicted": 3,
        "sessions": list(rows),
    }


def session_row(sid="cAAA", **over):
    row = {
        "sid": sid,
        "requests": 42,
        "errors": 1,
        "last_rid": 42,
        "rid_regressions": 0,
        "hit_rate": 0.875,
        "drift_state": "ok",
        "handler_us": {"p50": 12.5, "p99": 80.0, "max": 95.0},
        "age_s": 1.25,
    }
    row.update(over)
    return row


class TestFrame:
    def test_header_and_throughput(self):
        console = OpsConsole(lambda: {}, out=io.StringIO(), clear=False)
        frame = console.frame(
            {"metrics": metrics_text(), "sessions": sessions_table()}
        )
        assert "sessions: 2 live" in frame
        assert "0 tracked (cap 256, evicted 3)" in frame
        assert "throughput" in frame
        # first frame has no previous scrape -> no rates yet
        assert "requests -" in frame

    def test_rates_from_successive_scrapes(self):
        console = OpsConsole(lambda: {}, out=io.StringIO(), clear=False)
        console.frame({"metrics": metrics_text(requests=100)})
        frame = console.frame({"metrics": metrics_text(requests=350)}, dt=1.0)
        assert "requests 250/s" in frame

    def test_latency_rows(self):
        frame = OpsConsole(lambda: {}, out=io.StringIO(), clear=False).frame(
            {
                "metrics": metrics_text(
                    queue_s=[2e-6] * 10,
                    handler={"observe_predict": [50e-6] * 10},
                )
            }
        )
        assert "queue (dispatch)" in frame
        assert "handler:observe_predict" in frame

    def test_session_rows(self):
        frame = OpsConsole(lambda: {}, out=io.StringIO(), clear=False).frame(
            {
                "metrics": metrics_text(),
                "sessions": sessions_table(
                    [
                        session_row(),
                        session_row(
                            sid="cBBB", drift_state="diverged", hit_rate=None
                        ),
                    ]
                ),
            }
        )
        assert "cAAA" in frame
        assert "87.5%" in frame
        assert "!diverged" in frame  # drift flag on the degraded session

    def test_draining_flag(self):
        reg = MetricsRegistry()
        reg.gauge("pythia_server_draining").set(1)
        frame = OpsConsole(lambda: {}, out=io.StringIO(), clear=False).frame(
            {"metrics": render_prometheus(reg)}
        )
        assert "[DRAINING]" in frame


class TestHistoryRows:
    def test_sparkline_and_rate_from_history(self):
        history = {
            "series": {
                "pythia_server_requests_total": [
                    [float(t), float(t * 60)] for t in range(10)
                ]
            },
            "rates": {"pythia_server_requests_total": 60.0},
        }
        frame = OpsConsole(lambda: {}, out=io.StringIO(), clear=False).frame(
            {"metrics": metrics_text(), "history": history}
        )
        line = next(
            ln for ln in frame.splitlines() if "server_requests" in ln
        )
        assert "60/s" in line
        assert any(ch in line for ch in "▁▂▃▄▅▆▇█")

    def test_no_history_no_sparkline_rows(self):
        frame = OpsConsole(lambda: {}, out=io.StringIO(), clear=False).frame(
            {"metrics": metrics_text()}
        )
        assert not any(ch in frame for ch in "▁▂▃▄▅▆▇█")

    def test_supervisor_history_rates_without_series(self):
        # the supervisor's merged history has rates but no series
        frame = OpsConsole(lambda: {}, out=io.StringIO(), clear=False).frame(
            {
                "metrics": metrics_text(),
                "history": {"rates": {"pythia_server_requests_total": 12.0}},
            }
        )
        assert "12/s" in frame

    def test_per_session_rate_diffs_successive_frames(self):
        console = OpsConsole(lambda: {}, out=io.StringIO(), clear=False)
        console.frame(
            {
                "metrics": metrics_text(),
                "sessions": sessions_table([session_row(requests=100)]),
            }
        )
        frame = console.frame(
            {
                "metrics": metrics_text(),
                "sessions": sessions_table([session_row(requests=150)]),
            },
            dt=2.0,
        )
        line = next(ln for ln in frame.splitlines() if "cAAA" in ln)
        assert "25/s" in line  # 50 requests over 2 s

    def test_first_frame_session_rate_is_dash(self):
        frame = OpsConsole(lambda: {}, out=io.StringIO(), clear=False).frame(
            {
                "metrics": metrics_text(),
                "sessions": sessions_table([session_row()]),
            }
        )
        assert "req/s" in frame  # column present, value still unknown


class TestRun:
    def test_run_bounded_iterations(self):
        out = io.StringIO()
        calls = []

        def poll():
            calls.append(1)
            return {"metrics": metrics_text(requests=100 * len(calls))}

        console = OpsConsole(poll, interval=0.0, out=out, clear=False)
        assert console.run(iterations=3) == 0
        assert len(calls) == 3
        assert out.getvalue().count("throughput") == 3

    def test_unreachable_daemon_reported_not_raised(self):
        out = io.StringIO()

        def poll():
            raise OSError("connection refused")

        console = OpsConsole(poll, interval=0.0, out=out, clear=False)
        assert console.run(iterations=2) == 1
        assert "daemon unreachable" in out.getvalue()

    def test_recovery_resets_rate_baseline(self):
        out = io.StringIO()
        state = {"n": 0}

        def poll():
            state["n"] += 1
            if state["n"] == 2:
                raise OSError("blip")
            return {"metrics": metrics_text(requests=100 * state["n"])}

        console = OpsConsole(poll, interval=0.0, out=out, clear=False)
        console.run(iterations=3)
        # frame 3 is the first after recovery: no baseline -> no rate
        throughput_lines = [
            line for line in out.getvalue().splitlines() if "throughput" in line
        ]
        assert len(throughput_lines) == 2  # frames 1 and 3 (2 errored)
        assert "requests -" in throughput_lines[-1]

    def test_clear_defaults_to_isatty(self):
        out = io.StringIO()  # not a TTY
        console = OpsConsole(lambda: {}, out=out)
        assert console.clear is False
