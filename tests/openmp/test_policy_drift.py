"""AdaptivePythiaPolicy under drift: DIVERGED forces vanilla fallback."""

from __future__ import annotations

from repro.obs.drift import DIVERGED, DRIFTING, OK, DriftMonitor
from repro.openmp.policies import AdaptivePythiaPolicy

THRESHOLDS = [(1e-4, 1), (1e-3, 4)]


class TestDriftFallback:
    def test_diverged_forces_vanilla_thread_count(self):
        policy = AdaptivePythiaPolicy(thresholds=THRESHOLDS)
        assert policy.threads_for("r", 5e-5, 8) == 1  # trusting the oracle
        policy.drift_transition(OK, DIVERGED, {})
        assert policy.force_fallback
        assert policy.threads_for("r", 5e-5, 8) == 8  # same prediction, vanilla
        assert policy.decisions["drift_fallback"] == 1

    def test_drifting_keeps_trusting_predictions(self):
        policy = AdaptivePythiaPolicy(thresholds=THRESHOLDS)
        policy.drift_transition(OK, DRIFTING, {})
        assert not policy.force_fallback
        assert policy.threads_for("r", 5e-5, 8) == 1

    def test_recovery_restores_adaptive_decisions(self):
        policy = AdaptivePythiaPolicy(thresholds=THRESHOLDS)
        policy.drift_transition(OK, DIVERGED, {})
        policy.drift_transition(DIVERGED, OK, {})
        assert not policy.force_fallback
        assert policy.threads_for("r", 5e-5, 8) == 1

    def test_monitor_wiring_end_to_end(self):
        """Constructing with drift_monitor registers the callback; a real
        monitor transition flips the policy."""
        monitor = DriftMonitor()
        policy = AdaptivePythiaPolicy(thresholds=THRESHOLDS, drift_monitor=monitor)
        assert policy.drift_transition in monitor.callbacks
        monitor._transition(DIVERGED, None)
        assert policy.force_fallback
        assert policy.threads_for("r", 5e-5, 8) == 8

    def test_decision_counters_split_three_ways(self):
        policy = AdaptivePythiaPolicy(thresholds=THRESHOLDS)
        policy.threads_for("r", None, 8)  # no prediction: plain fallback
        policy.threads_for("r", 5e-5, 8)  # adaptive
        policy.drift_transition(OK, DIVERGED, {})
        policy.threads_for("r", 5e-5, 8)  # drift fallback
        assert policy.decisions == {
            "adaptive": 1,
            "fallback": 1,
            "drift_fallback": 1,
        }
