"""Unit tests for the simulated GOMP runtime and thread policies."""

from __future__ import annotations

import pytest

from repro.machines import PUDDING
from repro.openmp.costmodel import RegionCostModel
from repro.openmp.policies import (
    AdaptivePythiaPolicy,
    FixedThreadsPolicy,
    MaxThreadsPolicy,
)
from repro.openmp.runtime import GompRuntime


class TestGompRuntime:
    def test_clock_advances_per_region(self):
        rt = GompRuntime(PUDDING, max_threads=8)
        d1 = rt.parallel("r1", 1e-3)
        assert rt.clock == pytest.approx(d1)
        d2 = rt.parallel("r2", 1e-3)
        assert rt.clock == pytest.approx(d1 + d2)

    def test_serial_phase(self):
        rt = GompRuntime(PUDDING)
        rt.serial(0.5)
        assert rt.clock == 0.5
        with pytest.raises(ValueError):
            rt.serial(-1)

    def test_vanilla_uses_max_threads(self):
        rt = GompRuntime(PUDDING, max_threads=24, policy=MaxThreadsPolicy())
        rt.parallel("big", 1e-2)
        assert rt.omp_get_num_threads() == 24

    def test_fixed_policy(self):
        rt = GompRuntime(PUDDING, max_threads=24, policy=FixedThreadsPolicy(4))
        rt.parallel("r", 1e-3)
        assert rt.omp_get_num_threads() == 4

    def test_average_team(self):
        rt = GompRuntime(PUDDING, max_threads=8, policy=FixedThreadsPolicy(8))
        for _ in range(5):
            rt.parallel("r", 1e-3)
        assert rt.average_team == 8.0

    def test_invalid_max_threads(self):
        with pytest.raises(ValueError):
            GompRuntime(PUDDING, max_threads=0)

    def test_interceptor_sees_begin_end(self):
        calls = []

        class Shim:
            def region_begin(self, rid, clock):
                calls.append(("begin", rid, clock))
                return None

            def region_end(self, rid, clock):
                calls.append(("end", rid, clock))

            def overhead(self):
                return 0.0

        rt = GompRuntime(PUDDING, max_threads=4, interceptor=Shim())
        rt.parallel("regionX", 1e-3)
        assert [c[0] for c in calls] == ["begin", "end"]
        assert calls[0][1] == calls[1][1] == "regionX"
        assert calls[1][2] > calls[0][2]  # end is after the region ran

    def test_interceptor_overhead_charged(self):
        class Shim:
            def region_begin(self, rid, clock):
                return None

            def region_end(self, rid, clock):
                pass

            def overhead(self):
                return 1.0  # absurdly large, to be visible

        rt = GompRuntime(PUDDING, max_threads=4, interceptor=Shim())
        rt.parallel("r", 1e-3)
        assert rt.clock > 2.0  # two overhead charges


class TestAdaptivePolicy:
    @pytest.fixture
    def policy(self):
        return AdaptivePythiaPolicy(
            cost_model=RegionCostModel(PUDDING), max_threads=24
        )

    def test_thresholds_sorted_and_nonempty(self, policy):
        bounds = [b for b, _n in policy.thresholds]
        assert bounds == sorted(bounds)
        assert policy.thresholds

    def test_short_duration_gets_one_thread(self, policy):
        assert policy.threads_for("r", 1e-6, 24) == 1

    def test_long_duration_gets_max(self, policy):
        assert policy.threads_for("r", 0.5, 24) == 24

    def test_monotone_in_duration(self, policy):
        durations = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2)
        teams = [policy.threads_for("r", d, 24) for d in durations]
        assert teams == sorted(teams)

    def test_no_prediction_falls_back_to_max(self, policy):
        assert policy.threads_for("r", None, 24) == 24
        assert policy.decisions["fallback"] == 1

    def test_requires_model_or_thresholds(self):
        with pytest.raises(ValueError):
            AdaptivePythiaPolicy()

    def test_explicit_thresholds(self):
        policy = AdaptivePythiaPolicy(thresholds=[(1e-4, 1), (1e-3, 8)])
        assert policy.threads_for("r", 5e-5, 24) == 1
        assert policy.threads_for("r", 5e-4, 24) == 8
        assert policy.threads_for("r", 5e-3, 24) == 24

    def test_adaptive_beats_vanilla_on_mixed_workload(self):
        model = RegionCostModel(PUDDING)
        mixed = [20e-3] * 3 + [2e-6] * 30  # a few big + many tiny regions

        def run(policy):
            rt = GompRuntime(PUDDING, max_threads=24, policy=policy)
            for i, work in enumerate(mixed * 50):
                # feed the adaptive policy a perfect duration estimate
                d_est = model.region_time(work, 24)
                n = policy.threads_for(i, d_est, 24)
                rt.parallel(i, work) if isinstance(policy, MaxThreadsPolicy) else None
                if not isinstance(policy, MaxThreadsPolicy):
                    rt.pool.acquire(n)
                    rt.clock += model.region_time(work, n)
            return rt.clock

        vanilla = run(MaxThreadsPolicy())
        adaptive = run(AdaptivePythiaPolicy(cost_model=model, max_threads=24))
        assert adaptive < vanilla
