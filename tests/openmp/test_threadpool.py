"""Unit tests for the GOMP thread-pool model (park vs destroy)."""

from __future__ import annotations

import pytest

from repro.machines import PUDDING
from repro.openmp.threadpool import ThreadPool


class TestGrowth:
    def test_first_growth_spawns(self):
        pool = ThreadPool(PUDDING, "park")
        cost = pool.acquire(8)
        assert pool.team_size == 8
        assert pool.stats["spawns"] == 7  # master already exists
        assert cost == pytest.approx(7 * PUDDING.thread_spawn)

    def test_capped_at_hw_threads(self):
        pool = ThreadPool(PUDDING, "park")
        pool.acquire(10_000)
        assert pool.team_size == PUDDING.hw_threads

    def test_invalid_team_rejected(self):
        with pytest.raises(ValueError):
            ThreadPool(PUDDING).acquire(0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ThreadPool(PUDDING, "yolo")


class TestParkMode:
    """The paper's modification: spurious threads wait to be reused."""

    def test_shrink_then_grow_wakes_cheaply(self):
        pool = ThreadPool(PUDDING, "park")
        pool.acquire(16)
        shrink_cost = pool.acquire(2)
        assert shrink_cost == 0.0  # parking is free
        grow_cost = pool.acquire(16)
        assert pool.stats["wakes"] == 14
        assert grow_cost == pytest.approx(14 * PUDDING.thread_wake)
        assert pool.stats["spawns"] == 15  # no new spawns on regrow

    def test_oscillation_is_cheap(self):
        pool = ThreadPool(PUDDING, "park")
        pool.acquire(24)
        total = sum(pool.acquire(n) for n in (1, 24, 1, 24, 1, 24))
        # three regrows of 23 wakes each
        assert total == pytest.approx(3 * 23 * PUDDING.thread_wake)


class TestDestroyMode:
    """Default GNU OpenMP: shrinking destroys threads."""

    def test_shrink_pays_destroy(self):
        pool = ThreadPool(PUDDING, "destroy")
        pool.acquire(16)
        cost = pool.acquire(2)
        assert cost == pytest.approx(14 * PUDDING.thread_destroy)
        assert pool.stats["destroys"] == 14

    def test_regrow_pays_spawn_again(self):
        pool = ThreadPool(PUDDING, "destroy")
        pool.acquire(16)
        pool.acquire(2)
        cost = pool.acquire(16)
        assert cost == pytest.approx(14 * PUDDING.thread_spawn)

    def test_destroy_mode_much_pricier_than_park(self):
        def oscillate(mode):
            pool = ThreadPool(PUDDING, mode)
            pool.acquire(24)
            return sum(pool.acquire(n) for n in (1, 24) * 10)

        assert oscillate("destroy") > oscillate("park") * 5
