"""Unit tests for the parallel-region cost model."""

from __future__ import annotations

import pytest

from repro.machines import PIXEL, PUDDING
from repro.openmp.costmodel import RegionCostModel


@pytest.fixture
def model():
    return RegionCostModel(PUDDING)


class TestRegionTime:
    def test_single_thread_has_no_overhead(self, model):
        assert model.region_time(1e-3, 1) == pytest.approx(1e-3)

    def test_overhead_grows_with_threads(self, model):
        costs = [model.fork_cost(n) + model.barrier_cost(n) for n in (2, 4, 8, 24)]
        assert costs == sorted(costs)
        assert costs[0] > 0

    def test_big_region_speeds_up_with_threads(self, model):
        work = 10e-3
        assert model.region_time(work, 24) < model.region_time(work, 1) / 4

    def test_small_region_slows_down_with_threads(self, model):
        work = 2e-6
        assert model.region_time(work, 24) > model.region_time(work, 1)

    def test_threads_capped_at_hw_threads(self, model):
        assert model.region_time(1e-3, 10_000) == model.region_time(
            1e-3, PUDDING.hw_threads
        )

    def test_negative_work_rejected(self, model):
        with pytest.raises(ValueError):
            model.region_time(-1.0, 4)

    def test_parallel_fraction(self, model):
        # an 80%-parallel region cannot beat its serial part
        work = 1e-3
        t = model.region_time(work, 24, parallel_fraction=0.8)
        assert t > 0.2 * work


class TestBestThreads:
    def test_tiny_work_prefers_one_thread(self, model):
        assert model.best_threads(1e-6, 24) == 1

    def test_huge_work_prefers_max(self, model):
        assert model.best_threads(50e-3, 24) == 24

    def test_crossover_is_monotone(self, model):
        best = [model.best_threads(w, 24) for w in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2)]
        assert best == sorted(best)

    def test_candidate_ladder(self):
        assert RegionCostModel.candidate_counts(24) == [1, 2, 4, 8, 16, 24]
        assert RegionCostModel.candidate_counts(16) == [1, 2, 4, 8, 16]
        assert RegionCostModel.candidate_counts(1) == [1]


class TestMachines:
    def test_pudding_slower_clock_than_pixel(self):
        assert PUDDING.ghz < PIXEL.ghz
        assert PUDDING.cores > PIXEL.cores

    def test_hw_threads(self):
        assert PUDDING.hw_threads == 48
        assert PIXEL.hw_threads == 32
