"""Smoke + shape tests for the experiment harness (reduced scale)."""

from __future__ import annotations

from repro.experiments.fig7 import fig7_bt_grammar
from repro.experiments.fig8 import fig8_accuracy, render_fig8
from repro.experiments.fig9 import fig9_prediction_cost, render_fig9
from repro.experiments.fig10_13 import fig10_11_problem_size_sweep, render_omp_sweep
from repro.experiments.fig14 import fig14_error_rate, render_fig14
from repro.experiments.harness import (
    mpi_predict_run,
    mpi_record_run,
    mpi_vanilla_run,
    temp_trace_path,
)
from repro.experiments.report import format_pct, format_time, render_series, render_table
from repro.experiments.table1 import render_table1, table1_record_overhead
from repro.machines import PUDDING

class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["a", "long header"], [[1, 2], ["xx", "yy"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # all lines same width

    def test_render_series(self):
        text = render_series("x", [1, 2], {"s1": [0.1, 0.2], "s2": [1.0, 2.0]})
        assert "s1" in text and "s2" in text

    def test_format_time_scales(self):
        assert format_time(2.0).endswith(" s")
        assert format_time(2e-3).endswith(" ms")
        assert format_time(2e-6).endswith(" us")
        assert format_time(2e-9).endswith(" ns")

    def test_format_pct(self):
        assert format_pct(0.385) == "38.5 %"


class TestHarness:
    def test_vanilla_vs_record_overhead_is_small(self, tmp_path):
        vanilla = mpi_vanilla_run("ft", "small", ranks=4)
        record = mpi_record_run("ft", "small", str(tmp_path / "t.pythia"), ranks=4)
        assert record.events > 0
        assert abs(record.time - vanilla.time) / vanilla.time < 0.05

    def test_predict_run_scores(self, tmp_path):
        path = str(tmp_path / "t.pythia")
        mpi_record_run("bt", "small", path, ranks=4)
        predict = mpi_predict_run("bt", "small", path, ranks=4, distances=(1, 8))
        assert predict.accuracy(1) > 0.95
        assert predict.accuracy(8) > 0.9

    def test_temp_trace_path_unique(self):
        assert temp_trace_path("x") != temp_trace_path("x")


class TestTable1:
    def test_rows_and_rendering(self):
        rows = table1_record_overhead(["ep", "ft"], ws="small", ranks=4)
        assert len(rows) == 2
        text = render_table1(rows)
        assert "EP.Small" in text and "FT.Small" in text
        for row in rows:
            assert abs(row.overhead_pct) < 5.0


class TestFig7:
    def test_bt_grammar_matches_paper_shape(self):
        text = fig7_bt_grammar(ws="small", ranks=4, rank=1)
        assert "Bcast(0)^6" in text
        assert "^200" in text
        assert "Wait^2" in text
        assert "Waitall" in text


class TestFig8:
    def test_bt_curves(self):
        res = fig8_accuracy(["bt"], distances=(1, 16), ranks=4)[0]
        assert set(res.curves) == {"small", "medium", "large"}
        for curve in res.curves.values():
            assert all(a > 0.9 for a in curve)
        assert "bt" in render_fig8([res])


class TestFig9:
    def test_cost_positive_and_growing(self):
        res = fig9_prediction_cost(["bt"], ws="small", distances=(1, 16), ranks=4,
                                   repeats=5)[0]
        assert res.cost_s[0] > 0
        assert res.cost_s[1] > res.cost_s[0]
        assert "bt" in render_fig9([res])


class TestFig10:
    def test_predict_beats_vanilla_small_size(self):
        res = fig10_11_problem_size_sweep((PUDDING,), sizes=(10,))[0]
        assert res.predict[0] < res.vanilla[0]
        assert abs(res.record[0] - res.vanilla[0]) / res.vanilla[0] < 0.02
        assert "Pudding" in render_omp_sweep([res], "t")


class TestFig14:
    def test_error_rate_degradation(self):
        res = fig14_error_rate(PUDDING, size=10, rates=(0.0, 0.5))
        assert res.predict[0] < res.predict[1] <= res.vanilla * 1.1
        assert "error rate" in render_fig14(res)


class TestMainModule:
    def test_quick_run_writes_artifacts(self, tmp_path):
        from repro.experiments.__main__ import main

        out = str(tmp_path / "results")
        rc = main(["--quick", "-o", out, "--only", "table1", "fig7"])
        assert rc == 0
        import os

        assert os.path.exists(os.path.join(out, "table1.txt"))
        assert os.path.exists(os.path.join(out, "fig7.txt"))
