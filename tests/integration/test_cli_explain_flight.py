"""CLI: ``pythia-trace explain`` / ``pythia-trace flight`` end to end."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.harness import mpi_record_run
from repro.server import OracleServer, TraceStore


@pytest.fixture(scope="module")
def trace(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli") / "cg.pythia")
    mpi_record_run("cg", "small", path, ranks=2, seed=0, timestamps=True)
    return path


class TestExplainVerb:
    def test_local_explain_prints_provenance(self, trace, capsys):
        assert main(["explain", trace, "--prime", "64", "--top-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "after 64 reference events:" in out
        assert "explain distance=1" in out
        assert "p=" in out
        assert "rules" in out

    def test_daemon_explain_matches_local(self, trace, tmp_path, capsys):
        with OracleServer(str(tmp_path / "s.sock"), store=TraceStore(capacity=2)) as srv:
            assert main(["explain", trace, "--prime", "64", "--top-k", "2"]) == 0
            local_out = capsys.readouterr().out
            assert (
                main(
                    ["explain", trace, "--prime", "64", "--top-k", "2",
                     "--socket", srv.socket_path]
                )
                == 0
            )
            remote_out = capsys.readouterr().out
        # identical rendering modulo the traversal provenance: the daemon
        # serves the same compiled tracker, so every line matches
        assert remote_out == local_out


class TestFlightVerb:
    def test_jsonl_to_stdout(self, trace, capsys):
        assert main(["flight", trace, "--prime", "128"]) == 0
        out = capsys.readouterr().out
        lines = [ln for ln in out.splitlines() if ln.startswith("{")]
        entries = [json.loads(ln) for ln in lines]
        assert any(e["kind"] == "run" for e in entries)
        assert "drift state: ok" in out

    def test_chrome_to_file(self, trace, tmp_path, capsys):
        out_path = str(tmp_path / "flight.json")
        assert main(
            ["flight", trace, "--prime", "64", "--format", "chrome", "-o", out_path]
        ) == 0
        trace_obj = json.loads(open(out_path).read())
        assert trace_obj["traceEvents"][0]["ph"] == "M"
        assert "chrome trace" in capsys.readouterr().out

    def test_daemon_flight_dump(self, trace, tmp_path, capsys):
        with OracleServer(str(tmp_path / "s.sock"), store=TraceStore(capacity=2)) as srv:
            assert (
                main(["flight", trace, "--prime", "96", "--socket", srv.socket_path])
                == 0
            )
        out = capsys.readouterr().out
        entries = [json.loads(ln) for ln in out.splitlines() if ln.startswith("{")]
        assert any(e["kind"] == "run" for e in entries)
        assert "drift state: ok" in out
