"""A full record->predict cycle with metrics on, snapshotted to disk.

CI points ``PYTHIA_METRICS_DUMP`` at a workspace path and uploads the
resulting JSON as a build artifact, so every run leaves a browsable
metrics baseline (event counts, candidate-set histograms, hit rates).
"""

from __future__ import annotations

import json
import os

from repro.experiments.harness import mpi_predict_run, mpi_record_run
from repro.obs import metrics as obs_metrics


def test_record_predict_cycle_dumps_metrics_snapshot(tmp_path):
    prev = obs_metrics.get_registry()
    registry = obs_metrics.set_registry(obs_metrics.MetricsRegistry())
    try:
        trace = str(tmp_path / "bt.pythia")
        record = mpi_record_run("bt", "small", trace, ranks=4, timestamps=True)
        assert record.events > 0
        predict = mpi_predict_run("bt", "small", trace, ranks=4)
        assert predict.accuracy_report["hit_rate"] > 0.9
        assert predict.accuracy_report["predictions_scored"] > 0

        snapshot = registry.snapshot()
        assert snapshot["pythia_record_events_total"] == record.events
        assert snapshot["pythia_predict_observe_total"] > 0
        assert snapshot["pythia_predict_hits_total"] > 0
        assert snapshot["pythia_mpi_blocking_seconds{fn=MPI_Waitall}"]["count"] > 0

        dump_path = os.environ.get(
            "PYTHIA_METRICS_DUMP", str(tmp_path / "metrics-snapshot.json")
        )
        with open(dump_path, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=1, default=str, sort_keys=True)
        assert os.path.getsize(dump_path) > 0
    finally:
        obs_metrics.set_registry(prev)
