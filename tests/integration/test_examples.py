"""The example scripts must run end to end (they are documentation)."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES = [
    "quickstart.py",
    "mpi_oracle.py",
    "adaptive_openmp.py",
    "trace_anatomy.py",
    "oracle_service.py",
    "observability.py",
    "fault_tolerance.py",
    "ops_console.py",
    "http_observability.py",
]
ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(ROOT, "examples", name), *args],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    out = run_example(name)
    assert out.strip()


def test_quickstart_predicts():
    out = run_example("quickstart.py")
    assert "mode=record" in out
    assert "mode=predict" in out
    assert "event in 1 steps" in out


def test_adaptive_openmp_reports_gain():
    out = run_example("adaptive_openmp.py", "20")
    assert "improvement over vanilla" in out
    assert "PYTHIA-PREDICT" in out


def test_oracle_service_shares_one_load():
    out = run_example("oracle_service.py")
    assert "2 sessions" in out
    assert "1 load(s)" in out  # both apps shared one cached trace bundle
    assert "predictions served" in out


def test_trace_anatomy_shows_paper_figures():
    out = run_example("trace_anatomy.py")
    assert "Fig 1" in out and "abbcbcab" in out
    assert "distinct estimates" in out


def test_fault_tolerance_rides_out_the_crash():
    out = run_example("fault_tolerance.py")
    assert "200/200 events" in out  # agreement survives crash + fallback
    assert "'reconnects': 1" in out
    assert "'fallbacks': 1" in out
    assert "resync" in out and "fallback" in out  # flight journal entries


def test_observability_reports_accuracy():
    out = run_example("observability.py")
    assert "hit rate" in out
    assert "mean |time error|" in out
    assert "1 lost, 1 resyncs" in out
    assert "pythia_predict_hits_total" in out


def test_ops_console_decomposes_and_correlates():
    out = run_example("ops_console.py")
    # one request decomposed live into wire/queue/handler
    for component in ("wire", "queue", "handler"):
        assert component in out, component
    # both named sessions reach the daemon's table with no duplicate rids
    assert "solver-rank0" in out and "viz-sidecar" in out
    assert "duplicates=0" in out
    # a rendered ops-console frame and the offline analyze report
    assert "throughput" in out
    assert "traced requests from sessions" in out


def test_http_observability_scrapes_and_profiles(tmp_path):
    out = run_example(
        "http_observability.py", "--out-dir", str(tmp_path),
        "--load-seconds", "1.5", "--profile-seconds", "0.8",
    )
    assert "scrape endpoint http://127.0.0.1:" in out
    assert "/ready: 200 'ready (2/2 workers)'" in out
    assert "workers ['0', '1']" in out
    assert "scrape validated" in out
    assert "history rates" in out and "requests_total" in out
    # the CI artifacts landed and the flamegraph is a real SVG
    svg = (tmp_path / "flamegraph.svg").read_text()
    assert svg.startswith("<svg") and "samples" in svg
    assert (tmp_path / "metrics.prom").read_text().count(
        "# TYPE pythia_worker_up gauge") == 1
    import json

    history = json.loads((tmp_path / "history.json").read_text())
    assert history["role"] == "supervisor"
