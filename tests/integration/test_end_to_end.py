"""End-to-end integration tests: record on one run, predict on the next."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.apps.base import get_app
from repro.core.oracle import Pythia
from repro.experiments.harness import mpi_predict_run, mpi_record_run
from repro.mpi import NetworkModel, mpirun
from repro.runtime.mpi_interpose import MPIRuntimeSystem


class TestRecordThenPredictAcrossProcessBoundary:
    """The paper's workflow: the trace file is the only shared state."""

    def test_trace_file_roundtrip_through_disk(self, tmp_path):
        path = str(tmp_path / "bt.pythia.gz")  # compressed on purpose
        record = mpi_record_run("bt", "small", path, ranks=4)
        assert record.events > 0
        predict = mpi_predict_run("bt", "medium", path, ranks=4, distances=(1, 32))
        assert predict.accuracy(1) > 0.95
        assert predict.accuracy(32) > 0.9

    @pytest.mark.parametrize("app", ["cg", "mg", "minife"])
    def test_regular_apps_predictable_across_working_sets(self, app, tmp_path):
        path = str(tmp_path / f"{app}.pythia")
        mpi_record_run(app, "small", path, ranks=4)
        predict = mpi_predict_run(app, "large", path, ranks=4, distances=(1,),
                                  sample_stride=4)
        assert predict.accuracy(1) > 0.75

    def test_auto_mode_switches_between_runs(self, tmp_path):
        path = str(tmp_path / "auto.pythia")
        app = get_app("ft")
        net = NetworkModel(ranks_per_node=2)

        first = Pythia(path)  # no file yet -> records
        assert first.recording
        mpirun(4, app.main, "small", 0, network=net,
               interceptor_factory=lambda r, c: MPIRuntimeSystem(first, r, c))
        first.finish()

        second = Pythia(path)  # file exists -> predicts
        assert second.predicting
        shims = []

        def factory(r, c):
            shim = MPIRuntimeSystem(second, r, c, distances=(1,))
            shims.append(shim)
            return shim

        mpirun(4, app.main, "small", 0, network=net, interceptor_factory=factory)
        assert any(s.scores[1].correct > 0 for s in shims)


class TestTimingPredictions:
    def test_region_duration_estimates_near_truth(self, tmp_path):
        from repro.apps.lulesh_omp import LULESH_OMP_REGIONS, lulesh_omp_run, region_work
        from repro.machines import PUDDING
        from repro.openmp.costmodel import RegionCostModel
        from repro.openmp.policies import MaxThreadsPolicy
        from repro.openmp.runtime import GompRuntime
        from repro.runtime.omp_interpose import OMPRuntimeSystem

        path = str(tmp_path / "omp.pythia")
        oracle = Pythia(path, mode="record", record_timestamps=True)
        rt = GompRuntime(PUDDING, max_threads=24, policy=MaxThreadsPolicy(),
                         interceptor=OMPRuntimeSystem(oracle))
        lulesh_omp_run(rt, 12, timesteps=40)
        oracle.finish()

        # replay: collected D_est must track the true region times
        model = RegionCostModel(PUDDING)
        oracle2 = Pythia(path, mode="predict")
        shim = OMPRuntimeSystem(oracle2)
        estimates: dict[int, float] = {}

        class Spy:
            def region_begin(self, rid, clock):
                d = shim.region_begin(rid, clock)
                if d is not None:
                    estimates[rid] = d
                return d

            def region_end(self, rid, clock):
                shim.region_end(rid, clock)

            def overhead(self):
                return shim.overhead()

        rt2 = GompRuntime(PUDDING, max_threads=24, policy=MaxThreadsPolicy(),
                          interceptor=Spy())
        lulesh_omp_run(rt2, 12, timesteps=40)
        assert len(estimates) >= 25
        for region in LULESH_OMP_REGIONS:
            if region.rid not in estimates:
                continue
            truth = model.region_time(region_work(region, 12), 24)
            assert estimates[region.rid] == pytest.approx(truth, rel=0.5)


class TestCLI:
    def test_cli_record_predict_dump(self, tmp_path):
        from repro.cli import main

        trace = str(tmp_path / "cli.pythia")
        assert main(["apps"]) == 0
        assert main(["record", "ft", trace, "--ws", "small", "--ranks", "4"]) == 0
        assert main(["predict", "ft", trace, "--ws", "small", "--ranks", "4",
                     "--distances", "1,4"]) == 0
        assert main(["dump", trace, "--head", "5"]) == 0

    def test_cli_entrypoint_subprocess(self, tmp_path):
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "apps"],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0
        assert "quicksilver" in result.stdout
