"""Unit tests for the PYTHIA MPI runtime system (interposition shim)."""

from __future__ import annotations

import pytest

from repro.core.oracle import Pythia
from repro.mpi import NetworkModel, mpirun
from repro.runtime.mpi_interpose import MPIRuntimeSystem

NET = NetworkModel(latency=1e-4, ranks_per_node=2)


def ring_app(comm, iters=30):
    """A simple ring-exchange loop with a final allreduce."""
    nxt = (comm.rank + 1) % comm.size
    prv = (comm.rank - 1) % comm.size
    for _ in range(iters):
        rreq = comm.irecv(source=prv, tag=1)
        sreq = comm.isend(None, dest=nxt, tag=1, size=64)
        yield from comm.wait(rreq)
        yield from comm.wait(sreq)
        yield comm.compute(1e-4)
    yield from comm.allreduce(0.0)


def record(path, ranks=4, iters=30):
    oracle = Pythia(path, mode="record", record_timestamps=False)
    mpirun(ranks, ring_app, iters, network=NET,
           interceptor_factory=lambda r, c: MPIRuntimeSystem(oracle, r, c))
    return oracle.finish()


class TestRecording:
    def test_events_recorded_per_rank(self, tmp_path):
        trace = record(str(tmp_path / "ring.pythia"))
        assert set(trace.threads) == {0, 1, 2, 3}
        # 30 * (irecv isend wait wait) + allreduce = 121 events per rank
        for tid in trace.threads:
            assert trace.thread(tid).event_count == 121

    def test_payloads_distinguish_destinations(self, tmp_path):
        trace = record(str(tmp_path / "ring.pythia"))
        names = [str(ev) for ev in trace.registry]
        assert any(n.startswith("MPI_Isend(") for n in names)

    def test_overhead_charged_to_simulated_time(self, tmp_path):
        vanilla = mpirun(4, ring_app, 30, network=NET)
        oracle = Pythia(str(tmp_path / "t.pythia"), mode="record",
                        record_timestamps=False)
        recorded = mpirun(4, ring_app, 30, network=NET,
                          interceptor_factory=lambda r, c: MPIRuntimeSystem(oracle, r, c))
        oracle.finish()
        assert recorded.time > vanilla.time
        assert recorded.time < vanilla.time * 1.05  # but only slightly


class TestPredicting:
    @pytest.fixture
    def trace_path(self, tmp_path):
        path = str(tmp_path / "ring.pythia")
        record(path)
        return path

    def test_distance1_accuracy_on_identical_run(self, trace_path):
        oracle = Pythia(trace_path, mode="predict")
        shims = []

        def factory(r, c):
            shim = MPIRuntimeSystem(oracle, r, c, distances=(1, 4))
            shims.append(shim)
            return shim

        mpirun(4, ring_app, 30, network=NET, interceptor_factory=factory)
        for shim in shims:
            assert shim.scores[1].accuracy > 0.95
            assert shim.scores[4].accuracy > 0.9
            assert shim.scores[1].total > 10

    def test_longer_replay_mispredicts_only_at_boundary(self, trace_path):
        oracle = Pythia(trace_path, mode="predict")
        shims = []

        def factory(r, c):
            shim = MPIRuntimeSystem(oracle, r, c, distances=(1,))
            shims.append(shim)
            return shim

        mpirun(4, ring_app, 60, network=NET, interceptor_factory=factory)  # 2x iters
        for shim in shims:
            score = shim.scores[1]
            assert score.accuracy > 0.9  # only the loop exit mispredicts

    def test_sample_stride_reduces_predictions(self, trace_path):
        oracle = Pythia(trace_path, mode="predict")
        shims = []

        def factory(r, c):
            shim = MPIRuntimeSystem(oracle, r, c, distances=(1,), sample_stride=10)
            shims.append(shim)
            return shim

        mpirun(4, ring_app, 30, network=NET, interceptor_factory=factory)
        for shim in shims:
            assert shim.scores[1].total <= shim.sync_points // 10 + 1

    def test_invalid_stride(self, trace_path):
        oracle = Pythia(trace_path, mode="predict")
        with pytest.raises(ValueError):
            MPIRuntimeSystem(oracle, 0, None, sample_stride=0)

    def test_error_injection_counts(self, trace_path):
        from repro.runtime.faults import ErrorInjector

        oracle = Pythia(trace_path, mode="predict")
        injector = ErrorInjector(0.5, seed=3)

        def factory(r, c):
            return MPIRuntimeSystem(oracle, r, c, distances=(1,),
                                    error_injector=injector if r == 0 else None)

        mpirun(4, ring_app, 30, network=NET, interceptor_factory=factory)
        assert injector.injected > 10
        # rank 0's predictor saw unknown events
        assert oracle.stats(0)["unknown"] == injector.injected
