"""Unit tests for the PYTHIA OpenMP runtime system."""

from __future__ import annotations

import pytest

from repro.apps.lulesh_omp import lulesh_omp_run
from repro.core.oracle import Pythia
from repro.machines import PUDDING
from repro.openmp.costmodel import RegionCostModel
from repro.openmp.policies import AdaptivePythiaPolicy, MaxThreadsPolicy
from repro.openmp.runtime import GompRuntime
from repro.runtime.faults import ErrorInjector
from repro.runtime.omp_interpose import OMPRuntimeSystem

SIZE = 12
STEPS = 60


def run_record(path):
    oracle = Pythia(path, mode="record", record_timestamps=True)
    shim = OMPRuntimeSystem(oracle)
    rt = GompRuntime(PUDDING, max_threads=24, policy=MaxThreadsPolicy(), interceptor=shim)
    t = lulesh_omp_run(rt, SIZE, timesteps=STEPS)
    oracle.finish()
    return t


class TestRecord:
    def test_trace_contains_region_pairs(self, tmp_path):
        path = str(tmp_path / "omp.pythia")
        run_record(path)
        from repro.core.trace_file import load_trace

        trace = load_trace(path)
        assert trace.event_count == STEPS * 30 * 2
        assert trace.timing is not None

    def test_region_durations_recoverable(self, tmp_path):
        path = str(tmp_path / "omp.pythia")
        run_record(path)
        oracle = Pythia(path, mode="predict")
        shim = OMPRuntimeSystem(oracle)
        model = RegionCostModel(PUDDING)
        policy = AdaptivePythiaPolicy(cost_model=model, max_threads=24)
        rt = GompRuntime(PUDDING, max_threads=24, policy=policy, interceptor=shim)
        lulesh_omp_run(rt, SIZE, timesteps=STEPS)
        # almost every region after warm-up got a usable D_est
        assert shim.stats["predictions"] > 0.9 * shim.stats["regions"] - 35


class TestPredictDrivesPolicy:
    def test_adaptive_run_is_faster(self, tmp_path):
        path = str(tmp_path / "omp.pythia")
        vanilla_rt = GompRuntime(PUDDING, max_threads=24, policy=MaxThreadsPolicy())
        vanilla = lulesh_omp_run(vanilla_rt, SIZE, timesteps=STEPS)
        run_record(path)
        oracle = Pythia(path, mode="predict")
        shim = OMPRuntimeSystem(oracle)
        policy = AdaptivePythiaPolicy(cost_model=RegionCostModel(PUDDING), max_threads=24)
        rt = GompRuntime(PUDDING, max_threads=24, policy=policy, interceptor=shim)
        adaptive = lulesh_omp_run(rt, SIZE, timesteps=STEPS)
        assert adaptive < vanilla
        assert rt.average_team < vanilla_rt.average_team

    def test_error_injection_degrades_but_never_catastrophic(self, tmp_path):
        path = str(tmp_path / "omp.pythia")
        run_record(path)

        def adaptive_time(rate):
            oracle = Pythia(path, mode="predict")
            shim = OMPRuntimeSystem(
                oracle, error_injector=ErrorInjector(rate, seed=1) if rate else None
            )
            policy = AdaptivePythiaPolicy(
                cost_model=RegionCostModel(PUDDING), max_threads=24
            )
            rt = GompRuntime(PUDDING, max_threads=24, policy=policy, interceptor=shim)
            return lulesh_omp_run(rt, SIZE, timesteps=STEPS)

        clean = adaptive_time(0.0)
        noisy = adaptive_time(0.4)
        vanilla = lulesh_omp_run(
            GompRuntime(PUDDING, max_threads=24, policy=MaxThreadsPolicy()),
            SIZE, timesteps=STEPS,
        )
        assert clean < noisy
        assert noisy <= vanilla * 1.15


class TestErrorInjector:
    def test_rate_zero_never_injects(self):
        injector = ErrorInjector(0.0)
        called = []
        for _ in range(100):
            injector.maybe_inject(lambda n, p: called.append((n, p)))
        assert not called

    def test_rate_one_always_injects(self):
        injector = ErrorInjector(1.0)
        called = []
        for _ in range(10):
            injector.maybe_inject(lambda n, p: called.append((n, p)))
        assert len(called) == 10
        # every injected payload is fresh (never matches the grammar)
        assert len({p for _n, p in called}) == 10

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ErrorInjector(1.5)

    def test_rate_statistics(self):
        injector = ErrorInjector(0.3, seed=5)
        n = 10_000
        hits = sum(injector.maybe_inject(lambda *_: None) for _ in range(n))
        assert 0.27 * n < hits < 0.33 * n
