"""The multi-worker serving tier: routing, stickiness, aggregation.

Chaos scenarios (kill -9, restart, resync) live in ``test_chaos.py``;
this module covers the supervisor's steady-state contract:

- consistent-hash routing is deterministic and sticky — one session id
  always lands on one worker, and reconnects land there too;
- predictions served through the routed path are byte-identical to a
  local oracle (the worker serves from an mmap'd artifact, so this also
  exercises the zero-copy load path end to end);
- admin ops fan out: one ``metrics`` page with a ``worker`` label on
  every sample, one ``sessions`` table tagged by worker, one ``stats``
  with summed counters and the single shared artifact path.
"""

from __future__ import annotations

import socket as socket_mod
from types import SimpleNamespace

import pytest

from repro.core.oracle import Pythia
from repro.obs.metrics import parse_prometheus_text
from repro.server import OracleSupervisor, PythiaClient
from repro.server.protocol import read_frame, write_frame
from repro.server.supervisor import HashRing
from tests.server.test_chaos import (
    FAST_RETRY,
    pred_key,
    raw_connect,
    record_loop_trace,
)


def admin(sock_path: str, request: dict) -> dict:
    """One supervisor-served request on a fresh connection."""
    sock = raw_connect(sock_path)
    try:
        write_frame(sock, request)
        response = read_frame(sock)
    finally:
        sock.close()
    assert response is not None
    return response


def sid_for_worker(sup: OracleSupervisor, wid: int, tag: str = "s") -> str:
    """A session id the ring routes to ``wid`` (deterministic search)."""
    for i in range(10_000):
        sid = f"{tag}-{i}"
        if sup.ring.route(sid) == wid:
            return sid
    raise AssertionError(f"no sid found for worker {wid}")


class TestHashRing:
    def test_deterministic_and_complete(self):
        ring = HashRing(range(4))
        homes = {f"k{i}": ring.route(f"k{i}") for i in range(200)}
        again = HashRing(range(4))
        assert {k: again.route(k) for k in homes} == homes
        # every worker owns a share of a couple hundred keys
        assert set(homes.values()) == {0, 1, 2, 3}

    def test_only_the_dead_workers_keys_move(self):
        ring = HashRing(range(4))
        keys = [f"k{i}" for i in range(300)]
        full = {k: ring.route(k) for k in keys}
        degraded = {k: ring.route(k, alive={0, 1, 2}) for k in keys}
        for k in keys:
            if full[k] != 3:
                assert degraded[k] == full[k]  # untouched sessions stay put
            else:
                assert degraded[k] in {0, 1, 2}  # orphans land on survivors
        # and they come back: same ring, full alive set, original homes
        assert {k: ring.route(k, alive={0, 1, 2, 3}) for k in keys} == full

    def test_empty_and_all_dead(self):
        assert HashRing([]).route("anything") is None
        assert HashRing(range(2)).route("k", alive=set()) is None


class TestValidation:
    def test_needs_exactly_one_address(self):
        with pytest.raises(ValueError):
            OracleSupervisor()
        with pytest.raises(ValueError):
            OracleSupervisor("/tmp/x.sock", tcp_address=("127.0.0.1", 0))

    def test_rejects_bad_worker_count_and_routing(self):
        with pytest.raises(ValueError):
            OracleSupervisor("/tmp/x.sock", workers=0)
        with pytest.raises(ValueError):
            OracleSupervisor("/tmp/x.sock", workers=2, routing="magic")
        with pytest.raises(ValueError):
            # kernel routing cannot balance a unix socket
            OracleSupervisor("/tmp/x.sock", workers=2, routing="kernel")


@pytest.fixture(scope="module")
def tier(tmp_path_factory):
    """One running 2-worker supervisor shared by the steady-state tests."""
    tmp = tmp_path_factory.mktemp("sup")
    trace_path = str(tmp / "ref.pythia")
    events = record_loop_trace(trace_path)
    sock = str(tmp / "sup.sock")
    sup = OracleSupervisor(sock, workers=2, drain_deadline=1.0)
    sup.start()
    yield SimpleNamespace(sup=sup, sock=sock, trace=trace_path, events=events)
    sup.stop()


class TestRoutedServing:
    def test_ping_answers_as_supervisor(self, tier):
        response = admin(tier.sock, {"op": "ping"})
        assert response["pong"] and response["role"] == "supervisor"
        assert response["workers"] == 2

    def test_predictions_byte_identical_to_local(self, tier):
        local = Pythia(tier.trace, mode="predict")
        client = PythiaClient(
            tier.trace, socket=tier.sock, retry=FAST_RETRY,
            fallback="raise", session_id="routed-exact",
        )
        try:
            for name, payload in tier.events[:80]:
                lm, lp = local.event_and_predict(name, payload, distance=4)
                cm, cp = client.event_and_predict(name, payload, distance=4)
                assert (lm, pred_key(lp)) == (cm, pred_key(cp))
            assert client.worker in (0, 1)  # worker id advertised
        finally:
            client.finish()

    def test_sticky_reconnects_land_on_the_same_worker(self, tier):
        sid = sid_for_worker(tier.sup, 1, tag="sticky")
        seen = []
        for _ in range(3):  # three fresh connections, same session id
            client = PythiaClient(tier.trace, socket=tier.sock, session_id=sid)
            client.event(*tier.events[0])
            seen.append(client.worker)
            client.close()
        assert seen == [1, 1, 1]
        # the supervisor's own routing answer agrees
        response = admin(tier.sock, {"op": "workers", "sid": sid})
        assert response["home"] == 1

    def test_distinct_sids_use_both_workers(self, tier):
        for wid in (0, 1):
            sid = sid_for_worker(tier.sup, wid, tag="spread")
            client = PythiaClient(tier.trace, socket=tier.sock, session_id=sid)
            for name, payload in tier.events[:10]:
                client.event(name, payload)
            assert client.worker == wid
            client.close()

    def test_workers_op_reports_live_processes(self, tier):
        table = admin(tier.sock, {"op": "workers"})["workers"]
        assert set(table) == {"0", "1"}
        pids = {row["pid"] for row in table.values()}
        assert len(pids) == 2 and all(row["alive"] for row in table.values())

    def test_merged_metrics_label_every_sample_by_worker(self, tier):
        page = admin(tier.sock, {"op": "metrics"})["text"]
        parsed = parse_prometheus_text(page)
        # every sample is worker-labeled except the supervisor's own
        # process gauges (they describe the supervisor process itself)
        workers_seen = set()
        for name, labels, _value in parsed.samples:
            if not name.startswith("pythia_"):
                continue
            if name.startswith("pythia_process_") and "worker" not in labels:
                continue
            workers_seen.add(labels["worker"])
        assert workers_seen == {"0", "1"}  # no other unlabeled sample
        up = {
            labels["worker"]: value
            for name, labels, value in parsed.samples
            if name == "pythia_worker_up"
        }
        assert up == {"0": 1.0, "1": 1.0}
        # worker metrics made it through the merge, one sample per worker
        requests = [
            labels["worker"]
            for name, labels, _value in parsed.samples
            if name == "pythia_server_requests_total"
        ]
        assert sorted(requests) == ["0", "1"]

    def test_sessions_table_is_the_tagged_union(self, tier):
        by_worker = {}
        for wid in (0, 1):
            sid = sid_for_worker(tier.sup, wid, tag="table")
            by_worker[sid] = wid
            client = PythiaClient(tier.trace, socket=tier.sock, session_id=sid)
            client.event(*tier.events[0])
            client.close()
        response = admin(tier.sock, {"op": "sessions"})
        rows = {row["sid"]: row for row in response["sessions"]}
        for sid, wid in by_worker.items():
            assert rows[sid]["worker"] == wid
            assert rows[sid]["rid_regressions"] == 0
        assert response["tracked"] >= 2

    def test_stats_sum_and_share_one_artifact(self, tier):
        # make sure both workers have loaded the trace
        for wid in (0, 1):
            client = PythiaClient(
                tier.trace, socket=tier.sock,
                session_id=sid_for_worker(tier.sup, wid, tag="warm"),
            )
            client.event(*tier.events[0])
            client.close()
        stats = admin(tier.sock, {"op": "stats"})
        assert stats["role"] == "supervisor"
        assert set(stats["workers"]) == {"0", "1"}
        store = stats["store"]
        # the host paid ONE parse+compile; every other load mapped it
        assert store["artifact_compiles"] == 1
        assert store["artifact_compiles"] + store["artifact_reuses"] >= 2
        assert len(store["artifacts"]) == 1  # same .pygx file in all workers
        assert store["artifacts"][0].endswith(".pygx")
        summed = sum(
            w["counters"]["connections_accepted"] for w in stats["workers"].values()
        )
        assert stats["counters"]["connections_accepted"] == summed

    def test_session_ops_rejected_on_admin_connections(self, tier):
        sock = raw_connect(tier.sock)
        try:
            write_frame(sock, {"op": "stats"})
            assert read_frame(sock)["ok"]
            write_frame(sock, {"op": "open_session", "trace": tier.trace})
            response = read_frame(sock)
            assert not response["ok"] and response["code"] == "bad_request"
        finally:
            sock.close()


class TestKernelRouting:
    @pytest.mark.skipif(
        not hasattr(socket_mod, "SO_REUSEPORT"), reason="no SO_REUSEPORT"
    )
    def test_tcp_reuseport_smoke(self, tmp_path):
        trace_path = str(tmp_path / "ref.pythia")
        events = record_loop_trace(trace_path)
        sup = OracleSupervisor(
            tcp_address=("127.0.0.1", 0), workers=2,
            routing="kernel", drain_deadline=1.0,
        )
        sup.start()
        try:
            host, port = sup.address
            local = Pythia(trace_path, mode="predict")
            client = PythiaClient(
                trace_path, socket=(host, port), fallback="raise"
            )
            for name, payload in events[:40]:
                lm, lp = local.event_and_predict(name, payload, distance=2)
                cm, cp = client.event_and_predict(name, payload, distance=2)
                assert (lm, pred_key(lp)) == (cm, pred_key(cp))
            assert client.worker in (0, 1)
            client.finish()
        finally:
            sup.stop()


class TestLifecycle:
    def test_drain_stops_accepting_and_workers_exit(self, tmp_path):
        trace_path = str(tmp_path / "ref.pythia")
        record_loop_trace(trace_path)
        sock = str(tmp_path / "sup.sock")
        sup = OracleSupervisor(sock, workers=2, drain_deadline=1.0)
        sup.start()
        procs = [w.proc for w in sup._workers.values()]
        sup.drain(2.0)
        assert all(p.poll() is not None for p in procs)  # workers gone
        with pytest.raises(OSError):
            raw_connect(sock, timeout=1.0)
        sup.stop()

    def test_context_manager_cleans_up(self, tmp_path):
        sock = str(tmp_path / "sup.sock")
        with OracleSupervisor(sock, workers=1, drain_deadline=1.0) as sup:
            assert admin(sock, {"op": "ping"})["pong"]
            procs = [w.proc for w in sup._workers.values()]
        assert all(p.poll() is not None for p in procs)
        import os

        assert not os.path.exists(sock)
