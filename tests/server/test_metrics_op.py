"""The daemon's ``metrics`` op: Prometheus exposition over the wire."""

from __future__ import annotations

import socket

import pytest

from repro.experiments.harness import mpi_record_run
from repro.obs import metrics as obs_metrics
from repro.server import OracleServer, PythiaClient, TraceStore
from repro.server.protocol import read_frame, write_frame


@pytest.fixture(scope="module")
def npb_trace(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("npb-metrics") / "bt.pythia")
    mpi_record_run("bt", "small", path, ranks=2, seed=0, timestamps=True)
    return path


@pytest.fixture
def fresh_registry():
    """A private process registry so counters start from zero."""
    prev = obs_metrics.get_registry()
    reg = obs_metrics.set_registry(obs_metrics.MetricsRegistry())
    yield reg
    obs_metrics.set_registry(prev)


@pytest.fixture
def server(tmp_path, fresh_registry):
    sock = str(tmp_path / "oracle.sock")
    with OracleServer(sock, store=TraceStore(capacity=4)) as srv:
        yield srv


def scrape(server) -> str:
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10.0)
    sock.connect(server.socket_path)
    try:
        write_frame(sock, {"op": "metrics"})
        response = read_frame(sock)
    finally:
        sock.close()
    assert response is not None and response["ok"]
    return response["text"]


def parse_exposition(text: str) -> dict[str, float]:
    out: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        out[key] = float(value.replace("+Inf", "inf"))
    return out


class TestMetricsOp:
    def test_families_present_on_idle_server(self, server):
        """Acceptance: record-, predict- and server-family metrics appear
        even before any traffic (the daemon pre-touches its catalogue)."""
        parsed = parse_exposition(scrape(server))
        for family in (
            "pythia_record_events_total",
            "pythia_predict_observe_total",
            "pythia_predict_hits_total",
            "pythia_server_requests_total",
            "pythia_server_sessions_active",
        ):
            assert family in parsed, family

    def test_counters_track_traffic(self, npb_trace, server):
        with PythiaClient(npb_trace, socket=server.socket_path) as client:
            registry = client.registry
            names = [str(ev) for ev in registry]
            for terminal in range(min(8, len(names))):
                ev = registry.event(terminal)
                client.event(ev.name, ev.payload)
                client.predict(1)
            parsed = parse_exposition(scrape(server))
            assert parsed["pythia_predict_observe_total"] >= 8
            assert parsed["pythia_server_sessions_active"] == 1
            assert parsed["pythia_server_events_observed"] >= 8
        parsed = parse_exposition(scrape(server))
        assert parsed["pythia_server_sessions_active"] == 0

    def test_request_latency_histogram_per_op(self, npb_trace, server):
        with PythiaClient(npb_trace, socket=server.socket_path) as client:
            client.event("never_recorded")  # forces a session + observe
        parsed = parse_exposition(scrape(server))
        # v2: latency histograms carry the framing as a proto label
        count = 'pythia_server_request_seconds_count{op="%s",proto="%s"}'
        assert parsed[count % ("observe", "binary")] == 1
        assert parsed[count % ("open_session", "json")] == 1
        assert (
            parsed['pythia_server_request_seconds_sum{op="observe",proto="binary"}']
            > 0.0
        )
        # cumulative le buckets end at +Inf == count
        assert parsed[
            'pythia_server_request_seconds_bucket'
            '{op="observe",proto="binary",le="+Inf"}'
        ] == 1

    def test_successor_cache_counters_exposed(self, npb_trace, server):
        """The compiled machine's cache counters reach the exposition."""
        parsed = parse_exposition(scrape(server))
        # pre-registered at zero before any traffic (catalogue entry)
        for family in (
            "pythia_successor_cache_hits_total",
            "pythia_successor_cache_misses_total",
            "pythia_successor_cache_evictions_total",
            "pythia_successor_det_hits_total",
        ):
            assert parsed[family] == 0, family
        with PythiaClient(npb_trace, socket=server.socket_path) as client:
            registry = client.registry
            stream = [registry.event(t) for t in range(min(6, len(list(registry))))]
            for _round in range(3):
                for ev in stream:
                    client.event_and_predict(ev.name, ev.payload)
            parsed = parse_exposition(scrape(server))
        assert parsed["pythia_successor_cache_misses_total"] > 0
        assert parsed["pythia_successor_cache_hits_total"] > 0
        assert parsed["pythia_successor_cache_entries"] > 0

    def test_deprecated_latency_keys_still_in_stats_op(self, npb_trace, server):
        """Satellite: the old _LatencyAgg snapshot keys survive as aliases."""
        with PythiaClient(npb_trace, socket=server.socket_path) as client:
            client.event("never_recorded")
            stats = client.server_stats()
        latency = stats["latency"]["observe"]
        for key in ("count", "total_ms", "mean_us", "max_us"):
            assert key in latency, key
        for key in ("p50_us", "p95_us", "p99_us"):
            assert key in latency, key
        assert latency["count"] == 1
