"""OracleServer end-to-end: parity with the in-process facade,
concurrent sessions, and hostility to malformed clients."""

from __future__ import annotations

import json
import os
import socket
import struct
import threading

import pytest

from repro.core.oracle import Pythia
from repro.experiments.harness import mpi_record_run
from repro.server import OracleServer, PythiaClient, TraceStore
from repro.server.protocol import read_frame, write_frame

@pytest.fixture(scope="module")
def npb_trace(tmp_path_factory):
    """A recorded NPB (BT) reference trace, timestamps on."""
    path = str(tmp_path_factory.mktemp("npb") / "bt.pythia")
    mpi_record_run("bt", "small", path, ranks=2, seed=0, timestamps=True)
    return path

@pytest.fixture
def server(tmp_path):
    sock = str(tmp_path / "oracle.sock")
    with OracleServer(sock, store=TraceStore(capacity=4)) as srv:
        yield srv

def npb_event_stream(trace_path: str, thread: int = 0):
    """The (name, payload) sequence rank ``thread`` produced when recorded."""
    trace = Pythia(trace_path, mode="predict").reference
    registry = trace.registry
    return [
        (registry.event(t).name, registry.event(t).payload)
        for t in trace.threads[thread].grammar.unfold()
    ]

class TestParityWithInProcessOracle:
    def test_predictions_byte_identical_on_npb(self, npb_trace, server):
        """Acceptance: remote predict == in-process predict, field by field."""
        events = npb_event_stream(npb_trace)[:300]
        local = Pythia(npb_trace, mode="predict")
        remote = PythiaClient(npb_trace, socket=server.socket_path)
        for i, (name, payload) in enumerate(events):
            assert local.event(name, payload) == remote.event(name, payload)
            for distance in (1, 8):
                lp = local.predict(distance, with_time=True)
                rp = remote.predict(distance, with_time=True)
                if lp is None:
                    assert rp is None
                    continue
                assert rp is not None, (i, distance)
                assert rp.terminal == lp.terminal
                assert rp.probability == lp.probability
                assert rp.eta == lp.eta
                assert rp.distribution == lp.distribution
        assert remote.stats() == local.stats()
        remote.finish()

    def test_duration_and_describe_match(self, npb_trace, server):
        events = npb_event_stream(npb_trace)[:64]
        local = Pythia(npb_trace, mode="predict")
        with PythiaClient(npb_trace, socket=server.socket_path) as remote:
            for name, payload in events:
                local.event(name, payload)
                remote.event(name, payload)
            assert remote.predict_duration(4) == local.predict_duration(4)
            assert remote.describe(remote.predict(1)) == local.describe(local.predict(1))

    def test_unknown_event_makes_remote_oracle_lost(self, npb_trace, server):
        with PythiaClient(npb_trace, socket=server.socket_path) as remote:
            assert remote.event("never_recorded_event") is False
            assert remote.predict(1) is None
            assert remote.stats()["unknown"] == 1

    def test_unknown_thread_raises_keyerror(self, npb_trace, server):
        with PythiaClient(npb_trace, socket=server.socket_path) as remote:
            with pytest.raises(KeyError):
                remote.event("x", thread=500)

    def test_missing_trace_raises_file_not_found(self, tmp_path, server):
        with PythiaClient(str(tmp_path / "no.pythia"), socket=server.socket_path) as remote:
            with pytest.raises(FileNotFoundError):
                remote.event("x")

    def test_observe_batch_equals_loop(self, npb_trace, server):
        events = npb_event_stream(npb_trace)[:100]
        one = PythiaClient(npb_trace, socket=server.socket_path)
        batched = PythiaClient(npb_trace, socket=server.socket_path)
        looped = [one.event(n, p) for n, p in events]
        assert batched.event_batch(events) == looped
        assert batched.predict(1) == one.predict(1)
        one.finish()
        batched.finish()


class TestFusedObservePredict:
    def test_fused_equals_observe_then_predict(self, npb_trace, server):
        """observe_predict == observe + predict, field by field, one frame."""
        events = npb_event_stream(npb_trace)[:200]
        local = Pythia(npb_trace, mode="predict")
        fused = PythiaClient(npb_trace, socket=server.socket_path)
        split = PythiaClient(npb_trace, socket=server.socket_path)
        for name, payload in events:
            fm, fp = fused.event_and_predict(name, payload, distance=4, with_time=True)
            lm, lp = local.event_and_predict(name, payload, distance=4, with_time=True)
            sm = split.event(name, payload)
            sp = split.predict(4, with_time=True)
            assert fm == lm == sm
            assert fp == lp == sp
        assert fused.stats() == split.stats() == local.stats()
        fused.finish()
        split.finish()

    def test_fused_batch_form(self, npb_trace, server):
        events = npb_event_stream(npb_trace)[:120]
        fused = PythiaClient(npb_trace, socket=server.socket_path)
        split = PythiaClient(npb_trace, socket=server.socket_path)
        matched, pred = fused.event_batch_and_predict(events, distance=2)
        assert matched == split.event_batch(events)
        assert pred == split.predict(2)
        assert fused.stats() == split.stats()
        fused.finish()
        split.finish()

    def test_require_match_skips_prediction(self, npb_trace, server):
        with PythiaClient(npb_trace, socket=server.socket_path) as remote:
            matched, pred = remote.event_and_predict(
                "never_recorded_event", require_match=True
            )
            assert matched is False
            assert pred is None
            # without require_match a lost oracle still answers None
            matched, pred = remote.event_and_predict("never_recorded_event")
            assert matched is False
            assert pred is None

    def test_fused_counters(self, npb_trace, server):
        events = npb_event_stream(npb_trace)[:10]
        with PythiaClient(npb_trace, socket=server.socket_path) as remote:
            for name, payload in events:
                remote.event_and_predict(name, payload)
            counters = remote.server_stats()["counters"]
            assert counters["events_observed"] == len(events)
            assert counters["predictions_served"] == len(events)

    def test_fused_validation_errors(self, npb_trace, server):
        from repro.server.client import OracleServiceError

        with PythiaClient(npb_trace, socket=server.socket_path) as remote:
            sid = remote._session(0)
            for bad in (
                {"op": "observe_predict", "session": sid, "name": "x", "distance": 0},
                {"op": "observe_predict", "session": sid, "name": "x", "distance": "1"},
                {"op": "observe_predict", "session": sid, "events": []},
                {"op": "observe_predict", "session": sid, "events": [["a", 1, 2]]},
                {"op": "observe_predict", "session": sid, "name": 7},
            ):
                with pytest.raises(OracleServiceError) as exc_info:
                    remote._request(**bad)
                assert exc_info.value.code == "bad_request"


class TestConcurrentSessions:
    N_CLIENTS = 16
    STEPS = 120

    def test_sixteen_concurrent_observe_predict_loops(self, npb_trace, server):
        """Acceptance: 16 clients share one daemon with no errors, and
        the daemon's counters account for every session/prediction."""
        events = npb_event_stream(npb_trace)[: self.STEPS]
        errors: list[Exception] = []
        predictions = [0] * self.N_CLIENTS
        barrier = threading.Barrier(self.N_CLIENTS)

        def app(idx: int):
            try:
                client = PythiaClient(npb_trace, socket=server.socket_path)
                barrier.wait()
                for name, payload in events:
                    client.event(name, payload)
                    if client.predict(4) is not None:
                        predictions[idx] += 1
                client.finish()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=app, args=(i,)) for i in range(self.N_CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert all(n > 0 for n in predictions)

        with PythiaClient(npb_trace, socket=server.socket_path) as probe:
            stats = probe.server_stats()
        counters = stats["counters"]
        assert counters["sessions_opened"] >= self.N_CLIENTS
        assert counters["sessions_closed"] >= self.N_CLIENTS
        assert counters["events_observed"] >= self.N_CLIENTS * self.STEPS
        assert counters["predictions_served"] >= self.N_CLIENTS * self.STEPS
        # one shared trace: every session after the first hits the store
        assert stats["store"]["misses"] == 1
        assert stats["store"]["hits"] >= self.N_CLIENTS - 1
        assert "observe" in stats["latency"]
        assert stats["latency"]["predict"]["count"] >= self.N_CLIENTS * self.STEPS

    def test_sessions_are_isolated(self, npb_trace, server):
        """Two sessions at different positions answer differently."""
        events = npb_event_stream(npb_trace)
        ahead = PythiaClient(npb_trace, socket=server.socket_path)
        behind = PythiaClient(npb_trace, socket=server.socket_path)
        for name, payload in events[:40]:
            ahead.event(name, payload)
        for name, payload in events[:10]:
            behind.event(name, payload)
        assert ahead.stats()["observed"] == 40
        assert behind.stats()["observed"] == 10
        ahead.finish()
        behind.finish()


class TestHostileClients:
    def _raw(self, server) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(5)
        sock.connect(server.socket_path)
        return sock

    def test_unknown_op_gets_error_response(self, server):
        sock = self._raw(server)
        write_frame(sock, {"op": "self_destruct"})
        response = read_frame(sock)
        assert response == {
            "ok": False,
            "code": "unknown_op",
            "error": "unknown request op 'self_destruct'",
        }
        sock.close()

    def test_missing_op_gets_error_response(self, server):
        sock = self._raw(server)
        write_frame(sock, {"hello": "world"})
        assert read_frame(sock)["code"] == "unknown_op"
        sock.close()

    def test_bad_session_gets_error_response(self, server):
        sock = self._raw(server)
        write_frame(sock, {"op": "predict", "session": "s999"})
        assert read_frame(sock)["code"] == "no_such_session"
        sock.close()

    def test_oversized_frame_drops_only_that_connection(self, npb_trace, server):
        sock = self._raw(server)
        sock.sendall(struct.pack(">I", 1 << 31))  # absurd announcement
        response = read_frame(sock)  # server answers before dropping us
        assert response["code"] == "protocol"
        assert read_frame(sock) is None  # ...and closes the connection
        sock.close()
        # the daemon survives and serves a well-behaved client
        with PythiaClient(npb_trace, socket=server.socket_path) as client:
            client.event(*npb_event_stream(npb_trace)[0])
            assert client.stats()["observed"] == 1

    def test_garbage_bytes_drop_only_that_connection(self, npb_trace, server):
        sock = self._raw(server)
        body = b"\xff\xfenot json"
        sock.sendall(struct.pack(">I", len(body)) + body)
        assert read_frame(sock)["code"] == "protocol"
        sock.close()
        with PythiaClient(npb_trace, socket=server.socket_path) as client:
            assert client.predict(1) is None  # lost (no events yet) but alive

    def test_abrupt_disconnect_reaps_sessions(self, npb_trace, server):
        sock = self._raw(server)
        write_frame(sock, {"op": "open_session", "trace": npb_trace})
        assert read_frame(sock)["ok"]
        sock.close()  # no close_session
        # the reaper runs when the connection thread unwinds
        deadline = 50
        while deadline:
            with PythiaClient(npb_trace, socket=server.socket_path) as probe:
                stats = probe.server_stats()
            if stats["sessions_active"] == 0:
                break
            deadline -= 1
            import time

            time.sleep(0.05)
        assert deadline, "orphaned session was never reaped"

    def test_malformed_fields_get_bad_request(self, npb_trace, server):
        sock = self._raw(server)
        checks = [
            ({"op": "open_session"}, "bad_request"),                      # no trace
            ({"op": "open_session", "trace": 5}, "bad_request"),          # wrong type
            ({"op": "open_session", "trace": npb_trace, "thread": "x"}, "bad_request"),
            ({"op": "open_session", "trace": npb_trace, "max_candidates": 0}, "bad_request"),
        ]
        for request, code in checks:
            write_frame(sock, request)
            response = read_frame(sock)
            assert response["ok"] is False and response["code"] == code, request
        # connection still usable after every rejected request
        write_frame(sock, {"op": "ping"})
        assert read_frame(sock)["pong"]
        sock.close()

    def test_observe_with_bad_distance_and_events(self, npb_trace, server):
        sock = self._raw(server)
        write_frame(sock, {"op": "open_session", "trace": npb_trace})
        sid = read_frame(sock)["session"]
        for request in (
            {"op": "predict", "session": sid, "distance": 0},
            {"op": "predict", "session": sid, "distance": "far"},
            {"op": "observe_batch", "session": sid, "events": "nope"},
            {"op": "observe_batch", "session": sid, "events": [["a", 1, 2, 3]]},
            {"op": "observe", "session": sid, "name": 7},
        ):
            write_frame(sock, request)
            assert read_frame(sock)["code"] == "bad_request"
        sock.close()


class TestTCP:
    def test_tcp_round_trip(self, npb_trace):
        with OracleServer(tcp_address=("127.0.0.1", 0)) as server:
            host, port = server.address
            with PythiaClient(npb_trace, socket=(host, port)) as client:
                name, payload = npb_event_stream(npb_trace)[0]
                client.event(name, payload)
                assert client.stats()["observed"] == 1


class TestServerLifecycle:
    def test_socket_file_removed_on_stop(self, tmp_path):
        sock_path = str(tmp_path / "s.sock")
        server = OracleServer(sock_path).start()
        assert os.path.exists(sock_path)
        server.stop()
        assert not os.path.exists(sock_path)

    def test_requires_exactly_one_address(self, tmp_path):
        with pytest.raises(ValueError):
            OracleServer()
        with pytest.raises(ValueError):
            OracleServer(str(tmp_path / "s"), tcp_address=("127.0.0.1", 0))
