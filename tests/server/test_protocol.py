"""Round-trip and malformed-input tests for the wire protocol."""

from __future__ import annotations

import socket
import struct
import time

import pytest

from repro.core.predict import Prediction
from repro.server.protocol import (
    ConnectionClosed,
    FrameTooLarge,
    ProtocolError,
    decode_payload,
    decode_prediction,
    encode_payload,
    encode_prediction,
    read_frame,
    write_frame,
)


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFrames:
    def test_round_trip(self, pair):
        a, b = pair
        write_frame(a, {"op": "ping", "n": 42, "text": "héllo"})
        assert read_frame(b) == {"op": "ping", "n": 42, "text": "héllo"}

    def test_many_frames_in_order(self, pair):
        a, b = pair
        for i in range(10):
            write_frame(a, {"i": i})
        assert [read_frame(b)["i"] for _ in range(10)] == list(range(10))

    def test_clean_eof_returns_none(self, pair):
        a, b = pair
        a.close()
        assert read_frame(b) is None

    def test_eof_mid_header_raises(self, pair):
        a, b = pair
        a.sendall(b"\x00\x00")  # half a header
        a.close()
        with pytest.raises(ConnectionClosed):
            read_frame(b)

    def test_eof_mid_body_raises(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", 100) + b'{"op":')  # truncated body
        a.close()
        with pytest.raises(ConnectionClosed):
            read_frame(b)

    def test_oversized_frame_rejected_on_read(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", 1 << 30))
        with pytest.raises(FrameTooLarge):
            read_frame(b, max_frame=1024)

    def test_oversized_frame_rejected_on_write(self, pair):
        a, _b = pair
        with pytest.raises(FrameTooLarge):
            write_frame(a, {"blob": "x" * 2048}, max_frame=1024)

    def test_non_json_body_rejected(self, pair):
        a, b = pair
        body = b"not json at all"
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError):
            read_frame(b)

    def test_non_object_body_rejected(self, pair):
        a, b = pair
        body = b"[1,2,3]"
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError):
            read_frame(b)

    def test_empty_object_round_trip(self, pair):
        a, b = pair
        write_frame(a, {})
        assert read_frame(b) == {}


class TestPayloadEncoding:
    @pytest.mark.parametrize(
        "payload", [None, 0, 7, -3, "dest", 1.5, True, (1, 2), ("a", 3), ()]
    )
    def test_round_trip(self, payload):
        assert decode_payload(encode_payload(payload)) == payload

    def test_tuple_convention_matches_registry(self):
        # the wire uses the exact on-disk convention, so interning agrees
        from repro.core.events import Event, EventRegistry

        reg = EventRegistry()
        tid = reg.intern(Event("MPI_Reduce", (0, "SUM")))
        restored = EventRegistry.from_obj(reg.to_obj())
        wire = decode_payload(encode_payload((0, "SUM")))
        assert restored.lookup(Event("MPI_Reduce", wire)) == tid


class TestPredictionEncoding:
    def test_none_round_trip(self):
        assert encode_prediction(None) is None
        assert decode_prediction(None) is None

    def test_full_round_trip(self):
        pred = Prediction(
            terminal=3,
            probability=0.625,
            eta=0.0123456,
            distribution={3: 0.625, 1: 0.25, None: 0.125},
        )
        assert decode_prediction(encode_prediction(pred)) == pred

    def test_end_of_execution_round_trip(self):
        pred = Prediction(terminal=None, probability=1.0, distribution={None: 1.0})
        assert decode_prediction(encode_prediction(pred)) == pred

    def test_floats_survive_json_exactly(self):
        import json

        pred = Prediction(terminal=1, probability=1 / 3, eta=1e-7 + 0.1,
                          distribution={1: 1 / 3, 2: 2 / 3})
        wire = json.loads(json.dumps(encode_prediction(pred)))
        assert decode_prediction(wire) == pred


# ----------------------------------------------------------------------
# protocol v2: binary framing
# ----------------------------------------------------------------------

from repro.server.protocol import (  # noqa: E402
    BIN_MAGIC,
    BIN_REQ,
    F_HAS_PRED,
    FrameParser,
    OP_JSON,
    OP_OBSERVE_PREDICT,
    OP_REPLY_ERROR,
    decode_bin_error,
    decode_bin_prediction,
    encode_bin_error,
    encode_bin_frame,
    encode_bin_prediction,
    encode_json_frame,
    read_frame_any,
)


class TestBinaryFrames:
    def test_magic_byte_distinguishes_framings(self, pair):
        a, b = pair
        a.sendall(encode_json_frame({"op": "ping"}))
        a.sendall(encode_bin_frame(OP_OBSERVE_PREDICT, 5, BIN_REQ.pack(1, 2, 3)))
        assert read_frame_any(b) == ("json", {"op": "ping"})
        assert read_frame_any(b) == (
            "bin", OP_OBSERVE_PREDICT, 5, BIN_REQ.pack(1, 2, 3)
        )

    def test_json_first_byte_is_zero_under_16mib(self):
        frame = encode_json_frame({"op": "x"})
        assert frame[0] == 0x00 != BIN_MAGIC

    def test_empty_body_round_trip(self, pair):
        a, b = pair
        a.sendall(encode_bin_frame(OP_REPLY_ERROR))
        assert read_frame_any(b) == ("bin", OP_REPLY_ERROR, 0, b"")

    def test_clean_eof_returns_none(self, pair):
        a, b = pair
        a.close()
        assert read_frame_any(b) is None

    def test_eof_mid_binary_header_raises(self, pair):
        a, b = pair
        a.sendall(bytes([BIN_MAGIC, OP_OBSERVE_PREDICT]))
        a.close()
        with pytest.raises(ConnectionClosed):
            read_frame_any(b)

    def test_oversized_binary_frame_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack(">BBHI", BIN_MAGIC, OP_JSON, 0, 1 << 30))
        with pytest.raises(FrameTooLarge):
            read_frame_any(b, max_frame=1024)

    def test_oversized_binary_frame_rejected_on_encode(self):
        with pytest.raises(FrameTooLarge):
            encode_bin_frame(OP_JSON, 0, b"x" * 2048, max_frame=1024)

    def test_error_frame_round_trip(self, pair):
        a, b = pair
        a.sendall(encode_bin_error("shutting_down", "drain in progress"))
        kind, opcode, _flags, body = read_frame_any(b)
        assert (kind, opcode) == ("bin", OP_REPLY_ERROR)
        assert decode_bin_error(body) == ("shutting_down", "drain in progress")


class TestBinaryPrediction:
    @pytest.mark.parametrize("pred", [
        None,
        Prediction(terminal=3, probability=0.625, eta=0.0123456,
                   distribution={3: 0.625, 1: 0.25, None: 0.125}),
        Prediction(terminal=None, probability=1.0, distribution={None: 1.0}),
        Prediction(terminal=1, probability=1 / 3, eta=1e-7 + 0.1,
                   distribution={1: 1 / 3, 2: 2 / 3}),
    ])
    def test_round_trip_bit_exact(self, pred):
        flags, body = encode_bin_prediction(pred)
        assert decode_bin_prediction(flags, body) == pred

    def test_none_has_no_pred_flag(self):
        flags, body = encode_bin_prediction(None)
        assert not flags & F_HAS_PRED and body == b""

    def test_offset_skips_srv_prefix(self):
        from repro.server.protocol import SRV_PAIR

        pred = Prediction(terminal=7, probability=0.5, distribution={7: 0.5})
        flags, body = encode_bin_prediction(pred)
        prefixed = SRV_PAIR.pack(12, 34) + body
        assert decode_bin_prediction(flags, prefixed, SRV_PAIR.size) == pred


class TestFrameParser:
    def test_incremental_single_bytes(self):
        parser = FrameParser()
        frame = encode_json_frame({"op": "ping"})
        for i in range(len(frame)):
            assert parser.next_frame() is None
            parser.feed(frame[i:i + 1])
        assert parser.next_frame() == ("json", {"op": "ping"})
        assert parser.next_frame() is None
        assert len(parser) == 0

    def test_mixed_framings_in_one_buffer(self):
        parser = FrameParser()
        parser.feed(
            encode_json_frame({"a": 1})
            + encode_bin_frame(OP_OBSERVE_PREDICT, 1, BIN_REQ.pack(9, 8, 7))
            + encode_json_frame({"b": 2})
        )
        assert parser.next_frame() == ("json", {"a": 1})
        assert parser.next_frame() == (
            "bin", OP_OBSERVE_PREDICT, 1, BIN_REQ.pack(9, 8, 7)
        )
        assert parser.next_frame() == ("json", {"b": 2})
        assert parser.next_frame() is None

    def test_poisoned_parser_stays_poisoned(self):
        parser = FrameParser(max_frame=1024)
        parser.feed(struct.pack(">I", 1 << 30))
        with pytest.raises(FrameTooLarge):
            parser.next_frame()
        # later feeds cannot resurrect it: the stream has no resync point
        parser.feed(encode_json_frame({"op": "ping"}))
        with pytest.raises(FrameTooLarge):
            parser.next_frame()

    def test_bad_json_body_poisons(self):
        parser = FrameParser()
        parser.feed(struct.pack(">I", 3) + b"{{{")
        with pytest.raises(ProtocolError):
            parser.next_frame()
        with pytest.raises(ProtocolError):
            parser.next_frame()


# ----------------------------------------------------------------------
# payload convention (bugfix: encode/decode must be exact inverses)
# ----------------------------------------------------------------------


class TestPayloadConvention:
    @pytest.mark.parametrize("payload", [
        (),                               # empty tuple
        ("__tuple__",),                   # the sentinel itself as data
        ("__tuple__", "__tuple__"),
        (1, (2, (3,))),                   # nested tuples
        ((), ()),                         # nested empties
        (0, "SUM"),
        ("a", (1.5, None), True),
    ])
    def test_tuples_round_trip_exactly(self, payload):
        assert decode_payload(encode_payload(payload)) == payload

    def test_bare_list_rejected(self):
        with pytest.raises(ValueError, match="ambiguous payload"):
            decode_payload([1, 2, 3])

    def test_bare_empty_list_rejected(self):
        with pytest.raises(ValueError, match="ambiguous payload"):
            decode_payload([])

    def test_untagged_nested_list_rejected(self):
        with pytest.raises(ValueError, match="ambiguous payload"):
            decode_payload(["__tuple__", [1, 2]])

    def test_scalars_pass_through(self):
        for value in (None, 0, 7, -3, "dest", 1.5, True):
            assert decode_payload(value) == value
            assert encode_payload(value) == value


# ----------------------------------------------------------------------
# daemon behaviour on unrecoverable framing (bugfix: FrameTooLarge
# mid-stream must answer once and close, never keep reading garbage)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("io_mode", ["eventloop", "threads"])
class TestDaemonFrameTooLarge:
    @pytest.fixture
    def live(self, tmp_path, io_mode):
        from repro.server import OracleServer, TraceStore

        sockp = str(tmp_path / "oracle.sock")
        with OracleServer(
            sockp, store=TraceStore(capacity=2), io_mode=io_mode
        ) as srv:
            conn = socket.socket(socket.AF_UNIX)
            conn.connect(sockp)
            conn.settimeout(5.0)
            yield srv, conn
            conn.close()

    def test_oversized_announcement_gets_error_then_close(self, live, io_mode):
        srv, conn = live
        # a healthy request first: the violation is mid-stream
        write_frame(conn, {"op": "ping"})
        assert read_frame(conn)["ok"] is True
        conn.sendall(struct.pack(">I", 1 << 30))  # 1 GiB announcement
        reply = read_frame(conn)
        assert reply["ok"] is False and reply["code"] == "protocol"
        # ... and the daemon closes: EOF, not an endless garbage loop
        assert conn.recv(1) == b""
        assert srv.counters["connections_dropped"] == 1

    def test_oversized_binary_announcement_also_closes(self, live, io_mode):
        srv, conn = live
        write_frame(conn, {"op": "ping"})
        assert read_frame(conn)["ok"] is True
        conn.sendall(struct.pack(">BBHI", BIN_MAGIC, OP_OBSERVE_PREDICT, 0,
                                 1 << 30))
        reply = read_frame(conn)
        assert reply["ok"] is False and reply["code"] == "protocol"
        assert conn.recv(1) == b""

    def test_garbage_after_violation_is_never_parsed(self, live, io_mode):
        srv, conn = live
        # oversized announcement followed immediately by bytes that
        # *look* like a valid frame: the daemon must not execute it
        # one send so the daemon cannot close the socket in between
        conn.sendall(
            struct.pack(">I", 1 << 30)
            + encode_json_frame({"op": "open_session", "trace": "/nonexistent"})
        )
        # the error frame is best-effort here: closing with our second
        # frame still unread may reset the connection before it arrives
        try:
            reply = read_frame(conn)
        except (ConnectionResetError, ProtocolError):
            reply = None
        else:
            if reply is not None:
                assert reply["ok"] is False and reply["code"] == "protocol"
                try:
                    assert conn.recv(1) == b""
                except ConnectionResetError:
                    pass  # closed with our garbage unread: also dead
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and srv.counters["connections_dropped"] == 0:
            time.sleep(0.01)
        assert srv.counters["connections_dropped"] == 1
        assert srv.counters["sessions_opened"] == 0
