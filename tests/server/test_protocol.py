"""Round-trip and malformed-input tests for the wire protocol."""

from __future__ import annotations

import socket
import struct

import pytest

from repro.core.predict import Prediction
from repro.server.protocol import (
    ConnectionClosed,
    FrameTooLarge,
    ProtocolError,
    decode_payload,
    decode_prediction,
    encode_payload,
    encode_prediction,
    read_frame,
    write_frame,
)


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFrames:
    def test_round_trip(self, pair):
        a, b = pair
        write_frame(a, {"op": "ping", "n": 42, "text": "héllo"})
        assert read_frame(b) == {"op": "ping", "n": 42, "text": "héllo"}

    def test_many_frames_in_order(self, pair):
        a, b = pair
        for i in range(10):
            write_frame(a, {"i": i})
        assert [read_frame(b)["i"] for _ in range(10)] == list(range(10))

    def test_clean_eof_returns_none(self, pair):
        a, b = pair
        a.close()
        assert read_frame(b) is None

    def test_eof_mid_header_raises(self, pair):
        a, b = pair
        a.sendall(b"\x00\x00")  # half a header
        a.close()
        with pytest.raises(ConnectionClosed):
            read_frame(b)

    def test_eof_mid_body_raises(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", 100) + b'{"op":')  # truncated body
        a.close()
        with pytest.raises(ConnectionClosed):
            read_frame(b)

    def test_oversized_frame_rejected_on_read(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", 1 << 30))
        with pytest.raises(FrameTooLarge):
            read_frame(b, max_frame=1024)

    def test_oversized_frame_rejected_on_write(self, pair):
        a, _b = pair
        with pytest.raises(FrameTooLarge):
            write_frame(a, {"blob": "x" * 2048}, max_frame=1024)

    def test_non_json_body_rejected(self, pair):
        a, b = pair
        body = b"not json at all"
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError):
            read_frame(b)

    def test_non_object_body_rejected(self, pair):
        a, b = pair
        body = b"[1,2,3]"
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError):
            read_frame(b)

    def test_empty_object_round_trip(self, pair):
        a, b = pair
        write_frame(a, {})
        assert read_frame(b) == {}


class TestPayloadEncoding:
    @pytest.mark.parametrize(
        "payload", [None, 0, 7, -3, "dest", 1.5, True, (1, 2), ("a", 3), ()]
    )
    def test_round_trip(self, payload):
        assert decode_payload(encode_payload(payload)) == payload

    def test_tuple_convention_matches_registry(self):
        # the wire uses the exact on-disk convention, so interning agrees
        from repro.core.events import Event, EventRegistry

        reg = EventRegistry()
        tid = reg.intern(Event("MPI_Reduce", (0, "SUM")))
        restored = EventRegistry.from_obj(reg.to_obj())
        wire = decode_payload(encode_payload((0, "SUM")))
        assert restored.lookup(Event("MPI_Reduce", wire)) == tid


class TestPredictionEncoding:
    def test_none_round_trip(self):
        assert encode_prediction(None) is None
        assert decode_prediction(None) is None

    def test_full_round_trip(self):
        pred = Prediction(
            terminal=3,
            probability=0.625,
            eta=0.0123456,
            distribution={3: 0.625, 1: 0.25, None: 0.125},
        )
        assert decode_prediction(encode_prediction(pred)) == pred

    def test_end_of_execution_round_trip(self):
        pred = Prediction(terminal=None, probability=1.0, distribution={None: 1.0})
        assert decode_prediction(encode_prediction(pred)) == pred

    def test_floats_survive_json_exactly(self):
        import json

        pred = Prediction(terminal=1, probability=1 / 3, eta=1e-7 + 0.1,
                          distribution={1: 1 / 3, 2: 2 / 3})
        wire = json.loads(json.dumps(encode_prediction(pred)))
        assert decode_prediction(wire) == pred
