"""TraceStore: caching, invalidation, LRU bounds, concurrency."""

from __future__ import annotations

import os
import threading

import pytest

from repro.core.oracle import Pythia
from repro.core.trace_file import TraceFormatError
from repro.server.store import TraceStore

EVENTS = [("a", None), ("b", 1), ("a", None), ("b", 1), ("c", None)] * 8


def record(path: str, events=EVENTS) -> None:
    oracle = Pythia(path, mode="record", record_timestamps=False)
    for name, payload in events:
        oracle.event(name, payload)
    oracle.finish()


@pytest.fixture
def trace_path(tmp_path):
    path = str(tmp_path / "ref.pythia")
    record(path)
    return path


class TestCaching:
    def test_second_get_is_a_hit_and_shares_the_bundle(self, trace_path):
        store = TraceStore()
        first = store.get(trace_path)
        second = store.get(trace_path)
        assert first is second
        assert store.snapshot()["hits"] == 1
        assert store.snapshot()["misses"] == 1

    def test_relative_and_absolute_paths_share_one_entry(self, trace_path, monkeypatch):
        store = TraceStore()
        monkeypatch.chdir(os.path.dirname(trace_path))
        assert store.get(os.path.basename(trace_path)) is store.get(trace_path)

    def test_rewritten_file_invalidates(self, trace_path):
        store = TraceStore()
        store.get(trace_path)
        record(trace_path, [("x", None)] * 4)
        os.utime(trace_path, ns=(1, 1))  # force a distinct mtime
        bundle = store.get(trace_path)
        assert store.snapshot()["invalidations"] == 1
        assert len(bundle.registry) == 1  # the new trace, not the cached one

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TraceStore().get(str(tmp_path / "absent.pythia"))

    def test_corrupt_file_raises_format_error_and_is_not_cached(self, tmp_path):
        path = str(tmp_path / "bad.pythia")
        with open(path, "w") as fh:
            fh.write("{ not json")
        store = TraceStore()
        for _ in range(2):
            with pytest.raises(TraceFormatError):
                store.get(path)
        assert len(store) == 0  # failed loads are forgotten, ready to retry

    def test_tracker_for_unknown_thread_raises_keyerror(self, trace_path):
        bundle = TraceStore().get(trace_path)
        with pytest.raises(KeyError):
            bundle.tracker(99)


class TestLRU:
    def test_capacity_bounds_the_cache(self, tmp_path):
        store = TraceStore(capacity=2)
        paths = []
        for i in range(4):
            path = str(tmp_path / f"t{i}.pythia")
            record(path)
            paths.append(path)
            store.get(path)
        assert len(store) == 2
        assert store.snapshot()["evictions"] == 2

    def test_recently_used_survives_eviction(self, tmp_path):
        store = TraceStore(capacity=2)
        paths = []
        for i in range(3):
            path = str(tmp_path / f"t{i}.pythia")
            record(path)
            paths.append(path)
        store.get(paths[0])
        store.get(paths[1])
        store.get(paths[0])  # refresh 0 -> 1 becomes the LRU victim
        store.get(paths[2])
        before = store.snapshot()["misses"]
        store.get(paths[0])
        assert store.snapshot()["misses"] == before  # still cached

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)


class TestConcurrency:
    def test_many_threads_one_load(self, trace_path):
        store = TraceStore()
        bundles, errors = [], []
        barrier = threading.Barrier(16)

        def worker():
            try:
                barrier.wait()
                bundles.append(store.get(trace_path))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert store.snapshot()["misses"] == 1  # exactly one real load
        assert all(b is bundles[0] for b in bundles)

    def test_concurrent_distinct_traces(self, tmp_path):
        store = TraceStore(capacity=16)
        paths = []
        for i in range(8):
            path = str(tmp_path / f"t{i}.pythia")
            record(path)
            paths.append(path)
        errors = []

        def worker(idx: int):
            try:
                for _ in range(20):
                    store.get(paths[idx % len(paths)])
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert store.snapshot()["misses"] == 8


class TestMmapStore:
    """``use_mmap=True``: bundles carry mapped grammars out of shared
    compiled artifacts, and the compile happens once per host."""

    def test_bundle_grammar_is_mapped(self, trace_path):
        from repro.core.mmap_grammar import MmapGrammar, artifact_path_for

        store = TraceStore(use_mmap=True)
        bundle = store.get(trace_path)
        for tt in bundle.trace.threads.values():
            assert isinstance(tt.grammar, MmapGrammar)
        assert bundle.artifact == artifact_path_for(trace_path)
        snap = store.snapshot()
        assert snap["artifact_compiles"] == 1
        assert snap["artifact_reuses"] == 0
        assert snap["artifacts"] == [bundle.artifact]

    def test_json_store_has_no_artifact(self, trace_path):
        bundle = TraceStore().get(trace_path)
        assert bundle.artifact is None
        assert "artifact_compiles" not in TraceStore().snapshot()

    def test_second_store_reuses_the_host_artifact(self, trace_path):
        """What N workers on one host do: first compiles, rest map."""
        first = TraceStore(use_mmap=True)
        second = TraceStore(use_mmap=True)
        a = first.get(trace_path)
        b = second.get(trace_path)
        assert a.artifact == b.artifact  # same file mapped by both
        assert first.snapshot()["artifact_compiles"] == 1
        snap = second.snapshot()
        assert snap["artifact_compiles"] == 0
        assert snap["artifact_reuses"] == 1

    def test_rewritten_trace_recompiles(self, trace_path):
        store = TraceStore(use_mmap=True)
        store.get(trace_path)
        record(trace_path, [("x", None)] * 4)
        os.utime(trace_path, ns=(1, 1))
        bundle = store.get(trace_path)
        assert len(bundle.registry) == 1
        assert store.snapshot()["artifact_compiles"] == 2

    def test_corrupt_artifact_self_heals(self, trace_path):
        from repro.core.mmap_grammar import artifact_path_for, ensure_artifact

        artifact, _ = ensure_artifact(trace_path)
        blob = open(artifact, "rb").read()
        # keep the (valid) header so the freshness probe passes, then
        # truncate the body: the load fails and the store force-recompiles
        open(artifact, "wb").write(blob[: len(blob) - 16])
        store = TraceStore(use_mmap=True)
        bundle = store.get(trace_path)
        assert bundle.artifact == artifact_path_for(trace_path)
        assert store.snapshot()["artifact_compiles"] == 1
        assert len(open(artifact, "rb").read()) == len(blob)

    def test_thread_stampede_one_compile(self, trace_path):
        """16 threads, cold trace and cold artifact: one parse+compile
        for the host (the rest wait on the store entry or the artifact
        lock), and everyone shares one bundle."""
        store = TraceStore(use_mmap=True)
        bundles = []
        lock = threading.Lock()
        barrier = threading.Barrier(16)

        def worker():
            barrier.wait()
            b = store.get(trace_path)
            with lock:
                bundles.append(b)

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(b is bundles[0] for b in bundles)
        snap = store.snapshot()
        assert snap["misses"] == 1
        assert snap["artifact_compiles"] == 1
        assert snap["artifact_waits"] == 0  # in-store waiters never hit disk


class TestPerWaiterExceptions:
    """A failed load must give every waiter its *own* exception
    instance: re-raising the loader's instance lets N threads race to
    rewrite one ``__traceback__``, cross-contaminating tracebacks."""

    class _CountingEvent(threading.Event):
        """Event that reports how many threads are parked in wait()."""

        def __init__(self):
            super().__init__()
            self.waiting = 0

        def wait(self, timeout=None):
            self.waiting += 1
            return super().wait(timeout)

    def _park_waiters(self, store, path, n, error):
        """Deterministically drive ``n`` threads into the waiter path of
        a pending load, then fail the load with ``error``."""
        import time

        from repro.server.store import TraceStore, _Entry

        sig = TraceStore._signature(path)
        abspath = os.path.abspath(path)
        entry = _Entry(sig)
        entry.ready = self._CountingEvent()
        with store._lock:
            store._entries[abspath] = entry

        caught: list[Exception] = []
        lock = threading.Lock()

        def waiter():
            try:
                store.get(path)
            except Exception as exc:
                with lock:
                    caught.append(exc)

        threads = [threading.Thread(target=waiter) for _ in range(n)]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 5
        while entry.ready.waiting < n and time.monotonic() < deadline:
            time.sleep(0.001)
        assert entry.ready.waiting == n  # everyone parked in the waiter path
        entry.error = error
        with store._lock:
            del store._entries[abspath]  # what the loader does on failure
        entry.ready.set()
        for t in threads:
            t.join(5)
        return caught

    def test_every_waiter_gets_its_own_instance(self, trace_path):
        store = TraceStore()
        original = TraceFormatError("synthetic load failure")
        caught = self._park_waiters(store, trace_path, 8, original)
        assert len(caught) == 8
        assert all(isinstance(e, TraceFormatError) for e in caught)
        assert all(str(e) == str(original) for e in caught)
        # no waiter raised the loader's instance, and none shared one
        assert original not in caught
        assert len({id(e) for e in caught}) == 8
        # each raise produced a private traceback, not a shared one
        assert len({id(e.__traceback__) for e in caught}) == 8
        # provenance survives: the loader's exception is the cause
        assert all(e.__cause__ is original for e in caught)

    def test_unclonable_exception_wrapped_as_trace_format_error(self, trace_path):
        class Picky(Exception):
            def __init__(self, a, b):  # args don't round-trip
                super().__init__(f"{a}/{b}")

        store = TraceStore()
        caught = self._park_waiters(store, trace_path, 3, Picky.__new__(Picky))
        assert len(caught) == 3
        assert all(isinstance(e, TraceFormatError) for e in caught)

    def test_waiter_outcomes_counted(self, trace_path):
        store = TraceStore()
        self._park_waiters(store, trace_path, 4, TraceFormatError("nope"))
        snap = store.snapshot()
        assert snap["waiters_failed"] == 4
        assert snap["waiters_ok"] == 0
        # happy path: successful waiters count as ok (and as hits)
        store2 = TraceStore()
        bundles = []
        barrier = threading.Barrier(4)

        def get():
            barrier.wait()
            bundles.append(store2.get(trace_path))

        threads = [threading.Thread(target=get) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = store2.snapshot()
        assert snap["misses"] == 1 and snap["hits"] == 3
        assert 0 <= snap["waiters_ok"] <= 3 and snap["waiters_failed"] == 0
        assert len({id(b) for b in bundles}) == 1
