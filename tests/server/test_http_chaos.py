"""The HTTP observability endpoint under load, drain and crashes.

Acceptance for the always-on observability plane:

- ``/metrics`` on a live daemon matches the ``metrics`` op
  sample-for-sample, modulo the time-dependent families (process CPU,
  session ages) and the scrape counter the endpoint itself adds;
- concurrent scrapes ride through a drain: ``/ready`` flips to 503 the
  moment draining starts while ``/metrics`` keeps answering 200 — load
  balancers stop routing, dashboards keep watching;
- kill -9 a worker of a supervised tier: the restart becomes visible
  to Prometheus as ``pythia_worker_restarts_total`` on the merged page;
- slowloris and malformed clients occupy at most their own connection —
  the accept loop keeps serving everyone else, and the stalled socket
  is dropped at the request timeout.
"""

from __future__ import annotations

import http.client
import os
import signal
import socket as socket_mod
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.httpd import ObservabilityHTTPServer
from repro.obs.metrics import parse_prometheus_text
from repro.server import OracleServer, OracleSupervisor, PythiaClient, TraceStore
from tests.server.test_chaos import record_loop_trace

#: families whose values legitimately differ between two scrapes taken
#: milliseconds apart: clocks, CPU and fd churn, the scrape counter only
#: the HTTP endpoint maintains, and pythia_predict_candidates — a
#: histogram that samples each live tracker once per flush, i.e. once
#: per scrape
VOLATILE = (
    "pythia_process_",
    "pythia_http_requests_total",
    "pythia_session_age_seconds",
    "pythia_predict_candidates",
)


def volatile(name: str) -> bool:
    return name.startswith(VOLATILE)


def flat(text: str) -> dict[tuple, float]:
    return {
        (name, tuple(sorted(labels.items()))): value
        for name, labels, value in parse_prometheus_text(text).samples
    }


def fetch(url: str, timeout: float = 10.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.read().decode()


@pytest.fixture
def fresh_registry():
    """A private process registry so counters start from zero."""
    prev = obs_metrics.get_registry()
    reg = obs_metrics.set_registry(obs_metrics.MetricsRegistry())
    yield reg
    obs_metrics.set_registry(prev)


@pytest.fixture
def daemon(tmp_path, fresh_registry):
    sock = str(tmp_path / "oracle.sock")
    with OracleServer(sock, store=TraceStore(capacity=4)) as srv, \
            ObservabilityHTTPServer(srv) as httpd:
        yield srv, httpd


class TestDaemonParity:
    def test_metrics_page_matches_metrics_op(self, tmp_path, daemon):
        srv, httpd = daemon
        trace = str(tmp_path / "ref.pythia")
        events = record_loop_trace(trace)
        with PythiaClient(trace, socket=srv.socket_path) as client:
            for name, payload in events[:60]:
                client.event_and_predict(name, payload)
            op_page = srv.metrics_text()  # what the `metrics` op returns
            _, http_page = fetch(httpd.url + "/metrics")
        op_samples, http_samples = flat(op_page), flat(http_page)
        stable_op = {k: v for k, v in op_samples.items() if not volatile(k[0])}
        stable_http = {k: v for k, v in http_samples.items() if not volatile(k[0])}
        assert stable_op == stable_http  # sample-for-sample, value-for-value
        # the volatile families differ only in value, never in identity
        assert {k for k in op_samples if volatile(k[0])} <= set(http_samples)
        assert any(k[0] == "pythia_server_requests_total" for k in stable_op)

    def test_sessions_and_stats_match_the_ops(self, tmp_path, daemon):
        srv, httpd = daemon
        trace = str(tmp_path / "ref.pythia")
        events = record_loop_trace(trace)
        import json

        with PythiaClient(trace, socket=srv.socket_path,
                          session_id="http-parity") as client:
            client.event(*events[0])
            sessions = json.loads(fetch(httpd.url + "/sessions.json")[1])
            stats = json.loads(fetch(httpd.url + "/stats.json")[1])
        assert any(r["sid"] == "http-parity" for r in sessions["sessions"])
        assert stats["sessions_active"] >= 1 and "store" in stats


class TestDrain:
    def test_scrapes_ride_through_a_drain(self, daemon):
        srv, httpd = daemon
        assert fetch(httpd.url + "/ready")[0] == 200
        codes: list[tuple[int, int]] = []  # (ready_code, metrics_code)
        stop = threading.Event()

        def scraper():
            while not stop.is_set():
                try:
                    ready = urllib.request.urlopen(
                        httpd.url + "/ready", timeout=5.0
                    ).status
                except urllib.error.HTTPError as err:
                    ready = err.code
                metrics = urllib.request.urlopen(
                    httpd.url + "/metrics", timeout=5.0
                ).status
                codes.append((ready, metrics))

        threads = [threading.Thread(target=scraper, daemon=True)
                   for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.1)
        srv.drain(1.0)
        time.sleep(0.2)
        stop.set()
        for t in threads:
            t.join(timeout=5.0)
        assert codes, "scrapers never completed a round"
        # metrics NEVER failed; readiness flipped 200 -> 503 and stayed
        assert all(m == 200 for _r, m in codes)
        assert codes[0][0] == 200 or any(r == 200 for r, _m in codes)
        assert codes[-1][0] == 503
        assert fetch(httpd.url + "/healthz")[0] == 200  # still alive


class TestSupervisedTier:
    def test_worker_kill9_restart_visible_in_metrics(self, tmp_path,
                                                     fresh_registry):
        trace = str(tmp_path / "ref.pythia")
        record_loop_trace(trace)
        sock = str(tmp_path / "sup.sock")
        sup = OracleSupervisor(sock, workers=2, drain_deadline=1.0)
        sup.start()
        httpd = ObservabilityHTTPServer(sup, registry=sup._registry)
        httpd.start()
        try:
            page = fetch(httpd.url + "/metrics")[1]
            parsed = parse_prometheus_text(page)
            restarts = {
                labels["worker"]: value
                for labels, value in parsed.series("pythia_worker_restarts_total")
            }
            assert restarts == {"0": 0.0, "1": 0.0}
            victim_pid = sup._workers[0].proc.pid
            os.kill(victim_pid, signal.SIGKILL)
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                parsed = parse_prometheus_text(fetch(httpd.url + "/metrics")[1])
                up = dict(
                    (labels["worker"], value)
                    for labels, value in parsed.series("pythia_worker_up")
                )
                restarts = dict(
                    (labels["worker"], value)
                    for labels, value in parsed.series(
                        "pythia_worker_restarts_total")
                )
                if restarts.get("0") == 1.0 and up.get("0") == 1.0:
                    break
                time.sleep(0.1)
            assert restarts["0"] == 1.0  # the crash is on the scrape page
            assert up == {"0": 1.0, "1": 1.0}  # and the slot is back
            # readiness reported the full complement again
            assert fetch(httpd.url + "/ready")[1].strip().endswith("(2/2 workers)")
        finally:
            httpd.stop()
            sup.stop()

    def test_ready_503_while_tier_drains(self, tmp_path, fresh_registry):
        trace = str(tmp_path / "ref.pythia")
        record_loop_trace(trace)
        sock = str(tmp_path / "sup.sock")
        sup = OracleSupervisor(sock, workers=2, drain_deadline=1.0)
        sup.start()
        httpd = ObservabilityHTTPServer(sup, registry=sup._registry)
        httpd.start()
        try:
            assert fetch(httpd.url + "/ready")[0] == 200
            drainer = threading.Thread(target=sup.drain, daemon=True)
            drainer.start()  # sets the draining flag, then waits workers out
            deadline = time.monotonic() + 10.0
            code = 200
            while code == 200 and time.monotonic() < deadline:
                try:
                    code = fetch(httpd.url + "/ready")[0]
                except urllib.error.HTTPError as err:
                    code = err.code
            assert code == 503
            drainer.join(timeout=15.0)
        finally:
            httpd.stop()
            sup.stop()


class TestHostileClients:
    def test_slowloris_does_not_wedge_the_endpoint(self, daemon):
        _srv, httpd = daemon
        host, port = httpd.address
        stalled = socket_mod.create_connection((host, port), timeout=5.0)
        try:
            # half a request line, then silence: the handler thread
            # blocks in readline under its socket timeout, nobody else
            stalled.sendall(b"GET /metr")
            for _ in range(5):
                status, body = fetch(httpd.url + "/metrics", timeout=5.0)
                assert status == 200 and "pythia_server" in body
        finally:
            stalled.close()

    def test_stalled_connection_dropped_at_timeout(self, tmp_path,
                                                   fresh_registry):
        sock = str(tmp_path / "oracle.sock")
        with OracleServer(sock, store=TraceStore()) as srv, \
                ObservabilityHTTPServer(srv, request_timeout=0.3) as httpd:
            host, port = httpd.address
            stalled = socket_mod.create_connection((host, port), timeout=5.0)
            try:
                stalled.sendall(b"GET /metrics HTTP/1.1\r\n")  # no final CRLF
                stalled.settimeout(5.0)
                # the server closes the connection at its 0.3 s timeout
                assert stalled.recv(1024) == b""
            finally:
                stalled.close()
            assert fetch(httpd.url + "/healthz")[0] == 200

    def test_malformed_requests_answered_or_dropped(self, daemon):
        _srv, httpd = daemon
        host, port = httpd.address
        for garbage in (b"\x00\x01\x02\xff\r\n\r\n",
                        b"BOGUS /metrics HTTP/1.1\r\n\r\n",
                        b"GET\r\n\r\n"):
            sock = socket_mod.create_connection((host, port), timeout=5.0)
            try:
                sock.sendall(garbage)
                sock.settimeout(5.0)
                try:
                    sock.recv(4096)  # error reply or clean close: both fine
                except OSError:
                    pass
            finally:
                sock.close()
        # after all that abuse the endpoint still answers correctly
        status, body = fetch(httpd.url + "/metrics")
        assert status == 200
        assert parse_prometheus_text(body).value(
            "pythia_server_sessions_active") is not None

    def test_many_concurrent_scrapes(self, daemon):
        _srv, httpd = daemon
        errors: list[Exception] = []

        def hammer():
            try:
                conn = http.client.HTTPConnection(*httpd.address, timeout=10.0)
                for _ in range(10):  # keep-alive: one conn, many requests
                    conn.request("GET", "/metrics")
                    resp = conn.getresponse()
                    body = resp.read()
                    assert resp.status == 200 and b"pythia_server" in body
                conn.close()
            except Exception as exc:  # surfaced to the main thread
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not errors
