"""Protocol v2: negotiation, framing equivalence, pipelining, routing.

The acceptance bar for the binary framing is *byte-identical*
predictions: the same event stream, pushed over length-prefixed JSON,
over binary frames, and over the pipelined binary path, must produce
exactly the predictions the in-process oracle produces.  Everything
here runs against both daemon I/O models (the selectors event loop and
thread-per-connection).
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.core.oracle import Pythia
from repro.experiments.harness import mpi_record_run
from repro.server import OracleServer, PythiaClient, TraceStore
from repro.server.client import OracleServiceError
from repro.server.daemon import OracleServer as _Server
from repro.server.protocol import (
    BIN_REQ,
    OP_JSON,
    OP_OBSERVE_PREDICT,
    encode_bin_frame,
    encode_json_body,
    encode_json_frame,
    read_frame,
    write_frame,
)
from repro.server.supervisor import OracleSupervisor


@pytest.fixture(scope="session")
def npb_trace(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("npb-v2") / "bt.pythia")
    mpi_record_run("bt", "small", path, ranks=2, seed=0, timestamps=True)
    return path


def event_stream(trace_path: str, thread: int = 0, limit: int = 300):
    trace = Pythia(trace_path, mode="predict").reference
    registry = trace.registry
    return [
        (registry.event(t).name, registry.event(t).payload)
        for t in trace.threads[thread].grammar.unfold()
    ][:limit]


@pytest.fixture(params=["eventloop", "threads"])
def server(request, tmp_path):
    sock = str(tmp_path / "oracle.sock")
    with OracleServer(
        sock, store=TraceStore(capacity=4), io_mode=request.param
    ) as srv:
        yield srv


def predictions(client_or_oracle, events, *, with_time=True):
    """The full (matched, prediction) stream one consumer produces."""
    out = []
    for name, payload in events:
        out.append(
            client_or_oracle.event_and_predict(name, payload, with_time=with_time)
        )
    return out


class TestHelloNegotiation:
    def test_auto_client_negotiates_binary(self, npb_trace, server):
        with PythiaClient(npb_trace, socket=server.socket_path) as client:
            client.event("warmup")
            assert client._proto_state == "binary"

    def test_json_client_never_negotiates(self, npb_trace, server):
        with PythiaClient(
            npb_trace, socket=server.socket_path, protocol="json"
        ) as client:
            client.event("warmup")
            assert client._proto_state == "json"

    def test_hello_reply_advertises_v2(self, npb_trace, server):
        conn = socket.socket(socket.AF_UNIX)
        conn.connect(server.socket_path)
        conn.settimeout(5.0)
        write_frame(conn, {"op": "hello", "proto": 2})
        reply = read_frame(conn)
        conn.close()
        assert reply["ok"] is True
        assert reply["binary"] is True and reply["pipeline"] is True

    def test_auto_client_pins_json_against_old_daemon(
        self, npb_trace, server, monkeypatch
    ):
        # an old daemon has no "hello" handler and answers unknown_op
        monkeypatch.delitem(_Server._HANDLERS, "hello")
        with PythiaClient(npb_trace, socket=server.socket_path) as client:
            matched = client.event("warmup")
            assert client._proto_state == "json"
            assert matched is False  # served fine, over JSON

    def test_binary_demand_fails_loud_against_old_daemon(
        self, npb_trace, server, monkeypatch
    ):
        monkeypatch.delitem(_Server._HANDLERS, "hello")
        client = PythiaClient(
            npb_trace, socket=server.socket_path, protocol="binary"
        )
        with pytest.raises(OracleServiceError) as err:
            client.event("warmup")
        assert err.value.code == "protocol"
        client.finish()

    def test_invalid_protocol_argument_rejected(self, npb_trace):
        with pytest.raises(ValueError):
            PythiaClient(npb_trace, socket="/tmp/nope.sock", protocol="carrier")


class TestFramingEquivalence:
    """Acceptance: prediction streams byte-identical across framings."""

    def test_json_binary_and_pipelined_match_in_process(
        self, npb_trace, server
    ):
        events = event_stream(npb_trace)
        local = predictions(Pythia(npb_trace, mode="predict"), events)

        json_client = PythiaClient(
            npb_trace, socket=server.socket_path, protocol="json"
        )
        over_json = predictions(json_client, events)

        bin_client = PythiaClient(
            npb_trace, socket=server.socket_path, protocol="binary"
        )
        over_binary = predictions(bin_client, events)

        pipe_client = PythiaClient(npb_trace, socket=server.socket_path)
        with pipe_client.pipeline(window=32) as pipe:
            for name, payload in events:
                pipe.submit(name, payload, with_time=True)
            pipelined = pipe.drain()

        for i, (lm, lp) in enumerate(local):
            for om, op_ in (over_json[i], over_binary[i], pipelined[i]):
                assert om == lm, i
                if lp is None:
                    assert op_ is None, i
                    continue
                # field-by-field, floats bit-for-bit
                assert op_.terminal == lp.terminal, i
                assert op_.probability == lp.probability, i
                assert op_.eta == lp.eta, i
                assert op_.distribution == lp.distribution, i
        for client in (json_client, bin_client, pipe_client):
            client.finish()

    def test_stats_agree_across_framings(self, npb_trace, server):
        events = event_stream(npb_trace, limit=120)
        local = Pythia(npb_trace, mode="predict")
        predictions(local, events)
        remote = PythiaClient(npb_trace, socket=server.socket_path)
        predictions(remote, events)
        assert remote.stats() == local.stats()
        remote.finish()

    def test_unknown_event_equivalent(self, npb_trace, server):
        events = event_stream(npb_trace, limit=40)
        local = Pythia(npb_trace, mode="predict")
        remote = PythiaClient(npb_trace, socket=server.socket_path)
        for i, (name, payload) in enumerate(events):
            if i % 7 == 3:  # splice in events absent from the registry
                lr = local.event_and_predict(f"not_recorded_{i}", None)
                rr = remote.event_and_predict(f"not_recorded_{i}", None)
                assert lr == rr
            lr = local.event_and_predict(name, payload)
            rr = remote.event_and_predict(name, payload)
            assert lr[0] == rr[0]
        assert remote.stats() == local.stats()
        remote.finish()


class TestPipeline:
    def test_results_in_submit_order(self, npb_trace, server):
        events = event_stream(npb_trace, limit=64)
        with PythiaClient(npb_trace, socket=server.socket_path) as client:
            with client.pipeline(window=8) as pipe:
                indexes = [pipe.submit(n, p) for n, p in events]
                results = pipe.drain()
        assert indexes == list(range(len(events)))
        assert len(results) == len(events)

    def test_daemon_side_error_is_positional_not_fatal(
        self, npb_trace, server
    ):
        events = event_stream(npb_trace, limit=10)
        with PythiaClient(npb_trace, socket=server.socket_path) as client:
            with client.pipeline(window=4) as pipe:
                for i, (n, p) in enumerate(events):
                    # distance=0 is a bad_request the daemon refuses
                    # per-op; the stream keeps going
                    pipe.submit(n, p, distance=0 if i == 3 else 1)
                results = pipe.drain()
        assert isinstance(results[3], OracleServiceError)
        assert results[3].code == "bad_request"
        for i, r in enumerate(results):
            if i != 3:
                assert isinstance(r, tuple), (i, r)

    def test_window_flushes_do_not_reorder(self, npb_trace, server):
        events = event_stream(npb_trace, limit=100)
        local = predictions(Pythia(npb_trace, mode="predict"), events,
                            with_time=False)
        with PythiaClient(npb_trace, socket=server.socket_path) as client:
            with client.pipeline(window=3) as pipe:  # many tiny windows
                for n, p in events:
                    pipe.submit(n, p)
                results = pipe.drain()
        assert [m for m, _ in results] == [m for m, _ in local]

    def test_degraded_client_serves_pipeline_inline(self, npb_trace, tmp_path):
        client = PythiaClient(
            npb_trace, socket=str(tmp_path / "never-listening.sock"),
        )
        with client.pipeline(window=8) as pipe:
            for n, p in event_stream(npb_trace, limit=20):
                pipe.submit(n, p)
            results = pipe.drain()
        assert client.degraded
        assert len(results) == 20
        local = predictions(Pythia(npb_trace, mode="predict"),
                            event_stream(npb_trace, limit=20),
                            with_time=False)
        assert [m for m, _ in results] == [m for m, _ in local]
        client.finish()


class TestSupervisorPeekBothFramings:
    """The MSG_PEEK router must classify both framings without
    consuming bytes (unit-level: no workers spawned)."""

    @pytest.fixture
    def router(self):
        sup = OracleSupervisor.__new__(OracleSupervisor)
        sup.peek_deadline = 2.0
        return sup

    @pytest.fixture
    def pair(self):
        a, b = socket.socketpair()
        yield a, b
        a.close()
        b.close()

    def test_json_frame_peeked(self, router, pair):
        a, b = pair
        request = {"op": "stats"}
        a.sendall(encode_json_frame(request))
        assert router._peek_first_frame(b) == request
        # nothing consumed: the worker re-reads from the pristine start
        b.settimeout(1.0)
        assert read_frame(b) == request

    def test_binary_json_wrapper_peeked(self, router, pair):
        a, b = pair
        request = {"op": "observe", "session": "s1", "ctx": {"sid": "c1", "rid": 9}}
        a.sendall(encode_bin_frame(OP_JSON, 0, encode_json_body(request)))
        assert router._peek_first_frame(b) == request

    def test_bare_binary_frame_routes_blind(self, router, pair):
        a, b = pair
        a.sendall(encode_bin_frame(OP_OBSERVE_PREDICT, 0, BIN_REQ.pack(1, 2, 1)))
        assert router._peek_first_frame(b) is None
        # the frame itself is untouched for the worker
        b.settimeout(1.0)
        assert b.recv(16, socket.MSG_PEEK)[0] == 0xA7


class TestMultiWorkerBinary:
    """End-to-end: a binary-negotiating client through the supervisor."""

    def test_pipelined_binary_through_supervisor(self, npb_trace, tmp_path):
        sockp = str(tmp_path / "sup.sock")
        sup = OracleSupervisor(sockp, workers=2)
        sup.start()
        try:
            events = event_stream(npb_trace, limit=150)
            local = predictions(Pythia(npb_trace, mode="predict"), events)
            client = PythiaClient(npb_trace, socket=sockp)
            with client.pipeline(window=16) as pipe:
                for n, p in events:
                    pipe.submit(n, p, with_time=True)
                results = pipe.drain()
            assert client._proto_state == "binary"
            for i, (lm, lp) in enumerate(local):
                rm, rp = results[i]
                assert rm == lm, i
                if lp is None:
                    assert rp is None, i
                else:
                    assert (rp.terminal, rp.probability, rp.eta) == (
                        lp.terminal, lp.probability, lp.eta
                    ), i
            client.finish()
        finally:
            sup.stop()
