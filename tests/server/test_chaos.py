"""Chaos suite: the oracle service under transport faults.

Every fault here is deterministic — scripted by frame count through
:class:`~repro.runtime.faults.FaultyTransport`, or an explicit daemon
kill/restart — so the suite never flakes on timing.  The scenarios are
the acceptance criteria of the fault-tolerance layer:

- a request that times out mid-reply must never poison the next request
  (the stale-frame desync the old client suffered from);
- a daemon killed and restarted mid-session: the client reconnects
  within its backoff schedule, replays its event ring, and the
  post-resync prediction stream is byte-identical to an uninterrupted
  run;
- SIGTERM drain finishes in-flight batches and answers late requests
  with the retryable ``shutting_down`` code;
- with the daemon permanently unreachable the host application
  completes in degraded mode with zero unhandled exceptions.
"""

from __future__ import annotations

import os
import signal
import socket as socket_mod
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.core.oracle import Pythia
from repro.obs import metrics as obs_metrics
from repro.runtime.faults import FaultyTransport
from repro.server import OracleServer, PythiaClient, RetryPolicy, TraceStore
from repro.server.protocol import read_frame, write_frame

#: fights hard but fast: suited to in-test daemons that restart quickly
FAST_RETRY = RetryPolicy(
    max_retries=10, backoff_base=0.005, backoff_cap=0.05, jitter=0.0, deadline=10.0
)

#: gives up almost immediately: suited to permanently-down daemons
IMPATIENT_RETRY = RetryPolicy(
    max_retries=2, backoff_base=0.001, backoff_cap=0.002, jitter=0.0, deadline=1.0
)


def record_loop_trace(path: str, *, repeats: int = 6) -> list[tuple[str, object]]:
    """A loop-structured reference trace (what HPC phases look like);
    returns the exact event stream it was recorded from."""
    body = [("a", None), ("b", 1), ("c", None), ("b", 2)]
    seq = ([("prologue", None)] + body * 10 + [("epilogue", None)]) * repeats
    oracle = Pythia(path, mode="record", record_timestamps=False)
    for name, payload in seq:
        oracle.event(name, payload)
    oracle.finish()
    return seq


@pytest.fixture
def trace_path(tmp_path):
    path = str(tmp_path / "ref.pythia")
    record_loop_trace(path)
    return path


def pred_key(pred):
    """Byte-comparable view of a Prediction (None-safe)."""
    if pred is None:
        return None
    return (
        pred.terminal,
        pred.probability,
        pred.eta,
        tuple(sorted(pred.distribution.items(), key=lambda kv: (kv[0] is None, kv[0]))),
    )


def raw_connect(path: str, timeout: float = 5.0) -> socket_mod.socket:
    sock = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
    sock.settimeout(timeout)
    sock.connect(path)
    return sock


class TestConnectionDesync:
    """Satellite bugfix: a timed-out request must kill the connection."""

    def test_stale_frame_poisons_a_naive_client(self, tmp_path, trace_path):
        """Prove the old behavior was wrong: reuse the socket after a
        timeout and the *next* request decodes the previous reply."""
        sock_path = str(tmp_path / "oracle.sock")
        proxy_path = str(tmp_path / "proxy.sock")
        with OracleServer(sock_path, store=TraceStore()) as _srv, \
                FaultyTransport(sock_path, proxy_path) as proxy:
            naive = raw_connect(proxy_path, timeout=0.2)
            write_frame(naive, {"op": "open_session", "trace": trace_path})
            sid = read_frame(naive)["session"]
            # replies so far: 1 (open_session); hold reply #2 past the timeout
            proxy.delay_reply(2, 0.6)
            write_frame(naive, {"op": "predict", "session": sid, "distance": 1})
            with pytest.raises(TimeoutError):
                read_frame(naive)
            # the naive client shrugs and reuses the socket: its ping is
            # answered by the stale predict reply — a wrong answer
            naive.settimeout(5.0)
            write_frame(naive, {"op": "ping"})
            stale = read_frame(naive)
            assert "prediction" in stale and "pong" not in stale
            naive.close()

    def test_client_closes_and_reconnects_on_timeout(self, tmp_path, trace_path):
        sock_path = str(tmp_path / "oracle.sock")
        proxy_path = str(tmp_path / "proxy.sock")
        events = record_loop_trace(str(tmp_path / "again.pythia"))  # same stream
        local = Pythia(trace_path, mode="predict")
        with OracleServer(sock_path, store=TraceStore()) as _srv, \
                FaultyTransport(sock_path, proxy_path) as proxy:
            client = PythiaClient(
                trace_path, socket=proxy_path, timeout=0.2, retry=FAST_RETRY
            )
            for name, payload in events[:20]:
                local.event(name, payload)
                client.event(name, payload)
            # hold the next reply beyond the client timeout, then deliver:
            # the stale frame lands on a socket the client already closed
            proxy.delay_reply(proxy.replies_forwarded + 1, 0.5)
            for i, (name, payload) in enumerate(events[20:60]):
                lm, lp = local.event_and_predict(name, payload, distance=4)
                cm, cp = client.event_and_predict(name, payload, distance=4)
                assert (lm, pred_key(lp)) == (cm, pred_key(cp)), i
            assert client.counters["reconnects"] >= 1
            assert not client.degraded
            client.finish()

    def test_mid_frame_cut_never_reuses_the_socket(self, tmp_path, trace_path):
        sock_path = str(tmp_path / "oracle.sock")
        proxy_path = str(tmp_path / "proxy.sock")
        events = record_loop_trace(str(tmp_path / "again.pythia"))
        local = Pythia(trace_path, mode="predict")
        with OracleServer(sock_path, store=TraceStore()) as _srv, \
                FaultyTransport(sock_path, proxy_path) as proxy:
            client = PythiaClient(
                trace_path, socket=proxy_path, timeout=1.0, retry=FAST_RETRY
            )
            # cut replies 4 and 9 in half: the client sees a broken frame
            proxy.cut_mid_reply(4)
            proxy.cut_mid_reply(9)
            for i, (name, payload) in enumerate(events[:40]):
                lm, lp = local.event_and_predict(name, payload, distance=2)
                cm, cp = client.event_and_predict(name, payload, distance=2)
                assert (lm, pred_key(lp)) == (cm, pred_key(cp)), i
            assert proxy.cuts == 2
            assert client.counters["reconnects"] >= 2
            client.finish()

    def test_dropped_connection_after_request(self, tmp_path, trace_path):
        """The 'applied but unacknowledged' fault: the daemon observed
        the event, the client never saw the reply.  The fresh session
        replays the ring, so nothing is observed twice."""
        sock_path = str(tmp_path / "oracle.sock")
        proxy_path = str(tmp_path / "proxy.sock")
        events = record_loop_trace(str(tmp_path / "again.pythia"))
        local = Pythia(trace_path, mode="predict")
        with OracleServer(sock_path, store=TraceStore()) as _srv, \
                FaultyTransport(sock_path, proxy_path) as proxy:
            client = PythiaClient(
                trace_path, socket=proxy_path, timeout=1.0, retry=FAST_RETRY
            )
            proxy.cut_after_requests(7)
            for i, (name, payload) in enumerate(events[:40]):
                lm, lp = local.event_and_predict(name, payload, distance=4)
                cm, cp = client.event_and_predict(name, payload, distance=4)
                assert (lm, pred_key(lp)) == (cm, pred_key(cp)), i
            assert client.counters["reconnects"] >= 1
            client.finish()


class TestDaemonCrashRestart:
    def test_restart_mid_session_post_resync_byte_identical(self, tmp_path, trace_path):
        """Acceptance: kill the daemon mid-run, restart it, and the
        client's post-resync prediction stream matches an uninterrupted
        in-process run field by field."""
        sock_path = str(tmp_path / "oracle.sock")
        events = record_loop_trace(str(tmp_path / "again.pythia"))
        local = Pythia(trace_path, mode="predict")
        srv = OracleServer(sock_path, store=TraceStore()).start()
        client = PythiaClient(
            trace_path, socket=sock_path, timeout=1.0, retry=FAST_RETRY
        )
        cut = len(events) // 2
        for name, payload in events[:cut]:
            lm, lp = local.event_and_predict(name, payload, distance=4)
            cm, cp = client.event_and_predict(name, payload, distance=4)
            assert (lm, pred_key(lp)) == (cm, pred_key(cp))
        srv.stop()  # abrupt: connections die mid-session
        srv2 = OracleServer(sock_path, store=TraceStore()).start()
        try:
            for i, (name, payload) in enumerate(events[cut:]):
                lm, lp = local.event_and_predict(name, payload, distance=4)
                cm, cp = client.event_and_predict(name, payload, distance=4)
                assert (lm, pred_key(lp)) == (cm, pred_key(cp)), i
            assert client.counters["reconnects"] >= 1
            assert client.counters["fallbacks"] == 0
            assert not client.degraded
            # the daemon-side journal shows a fresh, resynced session
            assert client.stats()["observed"] > 0
            client.finish()
        finally:
            srv2.stop()

    def test_sigkill_subprocess_daemon_and_restart(self, tmp_path, trace_path):
        """The real thing: kill -9 a `pythia-trace serve` process."""
        sock_path = str(tmp_path / "oracle.sock")
        events = record_loop_trace(str(tmp_path / "again.pythia"))
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = {**os.environ, "PYTHONPATH": src_dir}

        def spawn():
            proc = subprocess.Popen(
                [sys.executable, "-c",
                 "import sys; from repro.cli import main; "
                 f"sys.exit(main(['serve', '--socket', {sock_path!r}]))"],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            )
            deadline = time.monotonic() + 15
            while not os.path.exists(sock_path):
                assert proc.poll() is None, proc.stdout.read().decode()
                assert time.monotonic() < deadline, "daemon did not come up"
                time.sleep(0.02)
            return proc

        local = Pythia(trace_path, mode="predict")
        proc = spawn()
        try:
            client = PythiaClient(
                trace_path, socket=sock_path, timeout=2.0, retry=FAST_RETRY
            )
            cut = len(events) // 2
            for name, payload in events[:cut]:
                local.event(name, payload)
                client.event(name, payload)
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
            proc = spawn()
            for i, (name, payload) in enumerate(events[cut:]):
                lm, lp = local.event_and_predict(name, payload, distance=4)
                cm, cp = client.event_and_predict(name, payload, distance=4)
                assert (lm, pred_key(lp)) == (cm, pred_key(cp)), i
            assert client.counters["reconnects"] >= 1
            assert not client.degraded
            client.finish()
        finally:
            proc.kill()
            proc.wait(timeout=10)


class TestResyncDepth:
    """What a bounded ring can and cannot recover on a real NPB trace.

    BT's grammar is one long loop: after a mid-run reattach a bounded
    ring cannot disambiguate *which iteration* the run is in, so a
    low-weight alternative candidate survives and post-resync
    probabilities sit a fraction of a percent off the uninterrupted
    run.  ``resync_window=None`` replays the full history and is exact.
    """

    @pytest.fixture(scope="class")
    def npb(self, tmp_path_factory):
        from repro.experiments.harness import mpi_record_run

        path = str(tmp_path_factory.mktemp("npb") / "bt.pythia")
        mpi_record_run("bt", "small", path, ranks=2, seed=0, timestamps=True)
        trace = Pythia(path, mode="predict").reference
        stream = [
            (trace.registry.event(t).name, trace.registry.event(t).payload)
            for t in trace.threads[0].grammar.unfold()
        ]
        return path, stream

    def run_through_restart(self, tmp_path, npb, window):
        trace_path, stream = npb
        sock_path = str(tmp_path / "oracle.sock")
        cut = 800
        local = Pythia(trace_path, mode="predict")
        srv = OracleServer(sock_path, store=TraceStore()).start()
        client = PythiaClient(
            trace_path, socket=sock_path, retry=FAST_RETRY,
            resync_window=window,
        )
        try:
            for name, payload in stream[:cut]:
                local.event(name, payload)
                client.event(name, payload)
            srv.stop()
            srv = OracleServer(sock_path, store=TraceStore()).start()
            pairs = []
            for name, payload in stream[cut:]:
                pairs.append((
                    local.event_and_predict(name, payload, distance=4,
                                            with_time=True),
                    client.event_and_predict(name, payload, distance=4,
                                             with_time=True),
                ))
            assert client.counters["reconnects"] >= 1
            assert not client.degraded
            client.finish()
            return pairs
        finally:
            srv.stop()

    def test_unbounded_ring_is_byte_identical(self, tmp_path, npb):
        pairs = self.run_through_restart(tmp_path, npb, window=None)
        assert all(l == c for l, c in pairs)

    def test_bounded_ring_converges_on_the_top_prediction(self, tmp_path, npb):
        pairs = self.run_through_restart(tmp_path, npb, window=256)
        argmax_diff = preds = 0
        for (lm, lp), (cm, cp) in pairs:
            assert lm == cm  # the matched stream re-attaches immediately
            if lp is None or cp is None:
                assert lp == cp
                continue
            preds += 1
            if lp.terminal != cp.terminal:
                # loop boundary: the surviving alternative outweighs the
                # true path briefly — but the true terminal is never gone
                argmax_diff += 1
                assert lp.terminal in cp.distribution
            else:
                assert abs(lp.probability - cp.probability) < 0.05
        assert preds > 900
        assert argmax_diff <= preds * 0.02  # argmax agrees >= 98% of the time


class TestGracefulDrain:
    def test_drain_finishes_inflight_batch(self, tmp_path, trace_path):
        """A big observe_predict batch caught by the drain completes."""
        sock_path = str(tmp_path / "oracle.sock")
        events = record_loop_trace(str(tmp_path / "again.pythia"))
        batch = [[name, payload] for name, payload in events] * 200  # ~49k events
        srv = OracleServer(sock_path, store=TraceStore()).start()
        try:
            conn = raw_connect(sock_path, timeout=30)
            write_frame(conn, {"op": "open_session", "trace": trace_path})
            sid = read_frame(conn)["session"]
            write_frame(
                conn,
                {"op": "observe_predict", "session": sid, "events": batch,
                 "distance": 1},
            )
            deadline = time.monotonic() + 5
            while srv._inflight == 0 and time.monotonic() < deadline:
                time.sleep(0.0005)
            assert srv._inflight >= 1, "batch never became in-flight"
            srv.drain(deadline=30)
            response = read_frame(conn)
            assert response["ok"] and len(response["matched"]) == len(batch)
            conn.close()
        finally:
            srv.stop()

    def test_late_request_gets_retryable_shutting_down(self, tmp_path, trace_path):
        sock_path = str(tmp_path / "oracle.sock")
        srv = OracleServer(sock_path, store=TraceStore()).start()
        try:
            conn = raw_connect(sock_path)
            write_frame(conn, {"op": "open_session", "trace": trace_path})
            sid = read_frame(conn)["session"]
            srv.drain(deadline=1.0)
            assert srv.draining
            write_frame(conn, {"op": "predict", "session": sid, "distance": 1})
            response = read_frame(conn)
            assert response == {
                "ok": False, "code": "shutting_down",
                "error": "daemon is draining; reconnect and retry",
            }
            assert srv.counters["requests_rejected_draining"] == 1
            # clean shutdown ops are still answered during the drain
            write_frame(conn, {"op": "close_session", "session": sid})
            assert read_frame(conn)["ok"]
            write_frame(conn, {"op": "ping"})
            assert read_frame(conn)["pong"]
            conn.close()
        finally:
            srv.stop()

    def test_draining_daemon_refuses_new_connections(self, tmp_path, trace_path):
        sock_path = str(tmp_path / "oracle.sock")
        srv = OracleServer(sock_path, store=TraceStore()).start()
        try:
            srv.drain(deadline=0.5)
            with pytest.raises(OSError):
                raw_connect(sock_path, timeout=0.5)
        finally:
            srv.stop()

    def test_sigterm_subprocess_drains_cleanly(self, tmp_path, trace_path):
        sock_path = str(tmp_path / "oracle.sock")
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = {**os.environ, "PYTHONPATH": src_dir}
        proc = subprocess.Popen(
            [sys.executable, "-c",
             "import sys; from repro.cli import main; "
             f"sys.exit(main(['serve', '--socket', {sock_path!r}, "
             "'--drain-deadline', '2']))"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        try:
            deadline = time.monotonic() + 15
            while not os.path.exists(sock_path):
                assert proc.poll() is None, proc.stdout.read().decode()
                assert time.monotonic() < deadline
                time.sleep(0.02)
            conn = raw_connect(sock_path)
            write_frame(conn, {"op": "open_session", "trace": trace_path})
            assert read_frame(conn)["ok"]
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0  # drained, summarized, exited
            out = proc.stdout.read().decode()
            assert "predictions" in out  # the serve summary still printed
            conn.close()
        finally:
            proc.kill()
            proc.wait(timeout=10)


class TestDegradedMode:
    def test_daemon_never_up_local_fallback_byte_identical(self, tmp_path, trace_path):
        """Acceptance: daemon permanently unreachable → the host app
        completes with zero unhandled exceptions, predictions served by
        the in-process fallback, fallback counter >= 1."""
        events = record_loop_trace(str(tmp_path / "again.pythia"))[:200]
        local = Pythia(trace_path, mode="predict")
        fallbacks_before = obs_metrics.get_registry().counter(
            "pythia_client_fallbacks_total"
        ).value
        client = PythiaClient(
            trace_path, socket=str(tmp_path / "never.sock"),
            retry=IMPATIENT_RETRY, fallback="local",
        )
        for i, (name, payload) in enumerate(events):
            lm, lp = local.event_and_predict(name, payload, distance=4)
            cm, cp = client.event_and_predict(name, payload, distance=4)
            assert (lm, pred_key(lp)) == (cm, pred_key(cp)), i
        assert client.degraded
        assert client.counters["fallbacks"] >= 1
        assert client.counters["retries"] >= 1
        after = obs_metrics.get_registry().counter(
            "pythia_client_fallbacks_total"
        ).value
        assert after >= fallbacks_before + 1
        assert client.stats()["observed"] == len(events)
        client.finish()

    def test_daemon_dies_midway_fallback_resyncs_from_ring(self, tmp_path, trace_path):
        events = record_loop_trace(str(tmp_path / "again.pythia"))[:220]
        sock_path = str(tmp_path / "oracle.sock")
        local = Pythia(trace_path, mode="predict")
        srv = OracleServer(sock_path, store=TraceStore()).start()
        client = PythiaClient(
            trace_path, socket=sock_path, retry=IMPATIENT_RETRY, fallback="local"
        )
        cut = 100
        for name, payload in events[:cut]:
            lm, lp = local.event_and_predict(name, payload, distance=4)
            cm, cp = client.event_and_predict(name, payload, distance=4)
            assert (lm, pred_key(lp)) == (cm, pred_key(cp))
        srv.stop()  # permanent outage: nothing ever comes back
        for i, (name, payload) in enumerate(events[cut:]):
            lm, lp = local.event_and_predict(name, payload, distance=4)
            cm, cp = client.event_and_predict(name, payload, distance=4)
            assert (lm, pred_key(lp)) == (cm, pred_key(cp)), i
        assert client.degraded and client.counters["fallbacks"] == 1
        client.finish()

    def test_fallback_lost_never_crashes(self, tmp_path):
        """No daemon, no readable trace: predictions are honestly lost."""
        client = PythiaClient(
            str(tmp_path / "no-such-trace.pythia"),
            socket=str(tmp_path / "never.sock"),
            retry=IMPATIENT_RETRY, fallback="lost",
        )
        assert client.event("anything", 1) is False
        assert client.predict(4) is None
        assert client.event_and_predict("more")[1] is None
        assert client.predict_duration(2) is None
        assert client.stats()["lost"] is True
        assert client.degraded
        client.finish()

    def test_fallback_local_degrades_to_lost_without_trace(self, tmp_path):
        """fallback='local' but the trace is unreadable locally: the
        client downgrades to lost predictions instead of crashing."""
        client = PythiaClient(
            str(tmp_path / "no-such-trace.pythia"),
            socket=str(tmp_path / "never.sock"),
            retry=IMPATIENT_RETRY, fallback="local",
        )
        assert client.event("anything") is False
        assert client.predict(1) is None
        assert client.degraded
        client.finish()

    def test_fallback_raise_propagates(self, tmp_path, trace_path):
        client = PythiaClient(
            trace_path, socket=str(tmp_path / "never.sock"),
            retry=IMPATIENT_RETRY, fallback="raise",
        )
        with pytest.raises(OSError):
            client.event("a")
        assert not client.degraded  # raise mode never enters degraded
        client.finish()

    def test_flight_journal_records_the_transitions(self, tmp_path, trace_path):
        sock_path = str(tmp_path / "oracle.sock")
        events = record_loop_trace(str(tmp_path / "again.pythia"))
        srv = OracleServer(sock_path, store=TraceStore()).start()
        client = PythiaClient(
            trace_path, socket=sock_path, retry=IMPATIENT_RETRY, fallback="local"
        )
        for name, payload in events[:30]:
            client.event(name, payload)
        srv.stop()
        for name, payload in events[30:60]:
            client.event(name, payload)
        notes = [e for e in client.flight_journal() if e.get("kind") == "note"]
        messages = [n.get("message") for n in notes]
        assert "fallback" in messages
        dump = client.flight_dump()
        assert dump["session"] == "degraded" and dump["entries"]
        client.finish()


class TestRetryPolicy:
    def test_backoff_is_capped_exponential_with_jitter(self):
        import random

        policy = RetryPolicy(backoff_base=0.1, backoff_cap=0.8, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.backoff(n, rng) for n in range(1, 7)]
        assert delays == [0.1, 0.2, 0.4, 0.8, 0.8, 0.8]
        jittered = RetryPolicy(backoff_base=0.1, backoff_cap=0.8, jitter=0.5)
        samples = {jittered.backoff(1, random.Random(s)) for s in range(8)}
        assert len(samples) > 1  # jitter actually varies
        assert all(0.1 <= d <= 0.15 for d in samples)

    def test_zero_retries_falls_back_on_first_failure(self, tmp_path, trace_path):
        client = PythiaClient(
            trace_path, socket=str(tmp_path / "never.sock"),
            retry=RetryPolicy(max_retries=0, deadline=1.0), fallback="local",
        )
        client.event("prologue")  # first event: tracker still syncing
        assert client.event("a", None) is True
        assert client.degraded and client.counters["retries"] == 1
        client.finish()

    def test_retry_none_disables_reconnect_but_not_fallback(self, tmp_path, trace_path):
        client = PythiaClient(
            trace_path, socket=str(tmp_path / "never.sock"),
            retry=None, fallback="local",
        )
        client.event("prologue")  # first event: tracker still syncing
        assert client.event("a", None) is True
        assert client.degraded
        client.finish()


class TestConcurrentClientsUnderFaults:
    def test_many_threads_share_one_reconnecting_client(self, tmp_path, trace_path):
        """The client lock serializes requests; a daemon restart in the
        middle must not wedge or corrupt any thread."""
        sock_path = str(tmp_path / "oracle.sock")
        events = record_loop_trace(str(tmp_path / "again.pythia"))[:120]
        srv = OracleServer(sock_path, store=TraceStore()).start()
        client = PythiaClient(
            trace_path, socket=sock_path, timeout=1.0, retry=FAST_RETRY
        )
        errors: list[Exception] = []
        done = threading.Barrier(5)

        def run(tid: int) -> None:
            try:
                done.wait()
                for name, payload in events:
                    client.event(name, payload, thread=0)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(t,)) for t in range(5)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        srv.stop()
        srv2 = OracleServer(sock_path, store=TraceStore()).start()
        try:
            for t in threads:
                t.join(30)
            assert errors == []
            assert not client.degraded
            client.finish()
        finally:
            srv2.stop()


class TestTracingUnderFaults:
    """Satellite: tracing identity survives reconnect + resync.

    The session id is client-lifetime — it must not change when the
    connection is cut or the daemon is replaced — and every transmitted
    attempt carries a fresh request id, so the daemon's per-session
    ``rid_regressions`` counter (rid failed to advance = duplicate or
    replay) stays at zero through any amount of chaos.
    """

    def test_sid_stable_and_rids_unique_across_cuts(self, tmp_path, trace_path):
        sock_path = str(tmp_path / "oracle.sock")
        proxy_path = str(tmp_path / "proxy.sock")
        events = record_loop_trace(str(tmp_path / "again.pythia"))
        with OracleServer(sock_path, store=TraceStore()) as srv, \
                FaultyTransport(sock_path, proxy_path) as proxy:
            client = PythiaClient(
                trace_path, socket=proxy_path, timeout=1.0, retry=FAST_RETRY
            )
            sid = client.session_id
            proxy.cut_after_requests(7)
            proxy.cut_mid_reply(30)
            for name, payload in events[:60]:
                client.event_and_predict(name, payload, distance=4)
            assert client.counters["reconnects"] >= 2
            assert client.session_id == sid, "sid changed across reconnects"
            entry = srv.session_stats.get(sid)
            assert entry is not None
            assert entry.rid_regressions == 0
            assert entry.last_rid == client.trace_context()["rid"]
            # resync replays (observe_batch) are traced requests too:
            # the daemon saw more than the client's logical op count
            assert entry.requests >= 60
            client.finish()

    def test_sid_stable_across_daemon_kill9_restart(self, tmp_path, trace_path):
        """kill -9 the daemon: the replacement daemon's (fresh) session
        table re-learns the same sid, with rids continuing upward."""
        sock_path = str(tmp_path / "oracle.sock")
        events = record_loop_trace(str(tmp_path / "again.pythia"))
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = {**os.environ, "PYTHONPATH": src_dir}

        def spawn():
            proc = subprocess.Popen(
                [sys.executable, "-c",
                 "import sys; from repro.cli import main; "
                 f"sys.exit(main(['serve', '--socket', {sock_path!r}]))"],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            )
            deadline = time.monotonic() + 15
            while not os.path.exists(sock_path):
                assert proc.poll() is None, proc.stdout.read().decode()
                assert time.monotonic() < deadline, "daemon did not come up"
                time.sleep(0.02)
            return proc

        proc = spawn()
        try:
            client = PythiaClient(
                trace_path, socket=sock_path, timeout=2.0, retry=FAST_RETRY
            )
            sid = client.session_id
            cut = len(events) // 2
            for name, payload in events[:cut]:
                client.event(name, payload)
            rid_before_crash = client.trace_context()["rid"]
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
            proc = spawn()
            for name, payload in events[cut:]:
                client.event_and_predict(name, payload, distance=4)
            assert client.session_id == sid
            assert client.trace_context()["rid"] > rid_before_crash
            # daemon #2's table: same sid, rids advanced monotonically
            sock = raw_connect(sock_path)
            try:
                write_frame(sock, {"op": "sessions"})
                table = read_frame(sock)
            finally:
                sock.close()
            (row,) = [r for r in table["sessions"] if r["sid"] == sid]
            assert row["rid_regressions"] == 0
            assert row["last_rid"] == client.trace_context()["rid"]
            client.finish()
        finally:
            proc.kill()
            proc.wait(timeout=10)


class TestWorkerCrashUnderSupervisor:
    """Tentpole chaos: kill -9 a worker of a multi-worker tier.

    The supervisor's listener survives, so the client's reconnect hits
    the same address immediately; the consistent-hash ring routes the
    orphaned session to a live worker; the event-ring resync replays
    recent history there — and the post-resync prediction stream must
    be byte-identical to an uninterrupted local oracle, with zero rid
    regressions recorded anywhere.  Meanwhile the monitor respawns the
    dead slot under the same worker id.
    """

    @staticmethod
    def _admin(sock_path: str, request: dict) -> dict:
        sock = raw_connect(sock_path)
        try:
            write_frame(sock, request)
            response = read_frame(sock)
        finally:
            sock.close()
        assert response is not None and response.get("ok", True)
        return response

    def test_kill9_one_worker_of_four_sessions_resync(self, tmp_path, trace_path):
        from repro.server import OracleSupervisor

        events = record_loop_trace(str(tmp_path / "again.pythia"))
        sock_path = str(tmp_path / "sup.sock")
        sup = OracleSupervisor(sock_path, workers=4, drain_deadline=1.0)
        sup.start()
        try:
            local = Pythia(trace_path, mode="predict")
            client = PythiaClient(
                trace_path, socket=sock_path, retry=FAST_RETRY,
                fallback="raise", session_id="chaos-victim",
            )
            for name, payload in events[:40]:
                lm, lp = local.event_and_predict(name, payload, distance=4)
                cm, cp = client.event_and_predict(name, payload, distance=4)
                assert (lm, pred_key(lp)) == (cm, pred_key(cp))
            # find and SIGKILL the worker hosting the session
            info = self._admin(sock_path, {"op": "workers", "sid": "chaos-victim"})
            home = info["home"]
            assert client.worker == home
            victim_pid = info["workers"][str(home)]["pid"]
            os.kill(victim_pid, signal.SIGKILL)
            # the stream continues byte-identical across the crash
            for i, (name, payload) in enumerate(events[40:160]):
                lm, lp = local.event_and_predict(name, payload, distance=4)
                cm, cp = client.event_and_predict(name, payload, distance=4)
                assert (lm, pred_key(lp)) == (cm, pred_key(cp)), i
            assert client.counters["reconnects"] >= 1
            assert not client.degraded
            # the session rebound to a *different, live* worker
            assert client.worker is not None and client.worker != home
            # the monitor respawned the slot: same wid, new pid, alive
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                row = self._admin(sock_path, {"op": "workers"})["workers"][str(home)]
                if row["alive"] and row["pid"] != victim_pid:
                    break
                time.sleep(0.05)
            assert row["alive"] and row["pid"] != victim_pid
            assert row["restarts"] == 1
            # no rid ever regressed, on any worker's table
            table = self._admin(sock_path, {"op": "sessions"})
            (srow,) = [r for r in table["sessions"] if r["sid"] == "chaos-victim"]
            assert srow["rid_regressions"] == 0
            assert srow["worker"] == client.worker
            # all workers served from one shared compiled artifact
            stats = self._admin(sock_path, {"op": "stats"})
            assert len(stats["store"]["artifacts"]) == 1
            client.finish()
        finally:
            sup.stop()

    def test_new_session_lands_on_respawned_worker(self, tmp_path, trace_path):
        """Sticky REbinding: once the slot is respawned, its ring range
        is its own again — a fresh connection for a sid homed there goes
        to the replacement process."""
        from repro.server import OracleSupervisor

        events = record_loop_trace(str(tmp_path / "again.pythia"))
        sock_path = str(tmp_path / "sup.sock")
        sup = OracleSupervisor(sock_path, workers=2, drain_deadline=1.0)
        sup.start()
        try:
            # a sid the ring homes on worker 0
            sid = next(
                f"rebind-{i}" for i in range(10_000)
                if sup.ring.route(f"rebind-{i}") == 0
            )
            victim_pid = sup._workers[0].proc.pid
            os.kill(victim_pid, signal.SIGKILL)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                w = sup._workers[0]
                if w.alive and w.proc.pid != victim_pid:
                    break
                time.sleep(0.05)
            client = PythiaClient(
                trace_path, socket=sock_path, retry=FAST_RETRY, session_id=sid
            )
            for name, payload in events[:10]:
                client.event(name, payload)
            assert client.worker == 0  # served by the replacement
            client.close()
        finally:
            sup.stop()


@pytest.mark.parametrize("io_mode", ["eventloop", "threads"])
class TestPipelinedDrain:
    """Satellite: pipelined requests racing SIGTERM drain.

    Three guarantees, in stream order on one connection: pipelined ops
    the daemon dispatched before the drain gate complete normally; every
    later one is answered with a retryable ``shutting_down`` error *in
    its submit position*; and after a reconnect to a replacement daemon
    the ring-replay resync keeps the prediction stream byte-identical —
    refused ops never entered the ring, so nothing is double-observed.
    """

    def test_late_pipelined_ops_rejected_in_order_then_resync(
        self, tmp_path, trace_path, io_mode
    ):
        from repro.server.client import OracleServiceError

        events = record_loop_trace(str(tmp_path / "again.pythia"))
        sock_path = str(tmp_path / "oracle.sock")
        local = Pythia(trace_path, mode="predict")
        srv = OracleServer(
            sock_path, store=TraceStore(), io_mode=io_mode
        ).start()
        client = PythiaClient(trace_path, socket=sock_path, retry=FAST_RETRY)
        try:
            # phase 1: a pipelined window completes before any drain
            with client.pipeline(window=64) as pipe:
                for name, payload in events[:30]:
                    pipe.submit(name, payload)
                settled = pipe.drain()
            local_head = [
                pred_key(local.event_and_predict(n, p)[1])
                for n, p in events[:30]
            ]
            assert [pred_key(p) for _, p in settled] == local_head
            assert client._proto_state == "binary"

            # phase 2: the daemon drains; late pipelined ops are refused
            # retryably, one reply per submit, in submit order
            srv.drain(deadline=5.0)
            assert srv.draining
            with client.pipeline(window=64) as pipe:
                for name, payload in events[30:50]:
                    pipe.submit(name, payload)
                rejected = pipe.drain()
            assert len(rejected) == 20
            for r in rejected:
                assert isinstance(r, OracleServiceError)
                assert r.code == "shutting_down"
            assert srv.counters["requests_rejected_draining"] >= 20
        finally:
            srv.stop()

        # phase 3: a replacement daemon on the same path; the client
        # reconnects, replays its ring (exactly the 30 confirmed events)
        # and the retried tail stays byte-identical with the local oracle
        srv2 = OracleServer(
            sock_path, store=TraceStore(), io_mode=io_mode
        ).start()
        try:
            remote_tail = [
                pred_key(client.event_and_predict(n, p)[1])
                for n, p in events[30:60]
            ]
            local_tail = [
                pred_key(local.event_and_predict(n, p)[1])
                for n, p in events[30:60]
            ]
            assert remote_tail == local_tail
            assert not client.degraded
        finally:
            client.close()
            srv2.stop()

    def test_burst_racing_drain_has_monotone_cutover(
        self, tmp_path, trace_path, io_mode
    ):
        """A pipelined burst genuinely racing the drain gate: replies
        stay in order and flip from success to shutting_down exactly
        once — never interleaved, never dropped."""
        from repro.server.client import OracleServiceError

        events = record_loop_trace(str(tmp_path / "again.pythia"))
        sock_path = str(tmp_path / "oracle.sock")
        srv = OracleServer(
            sock_path, store=TraceStore(), io_mode=io_mode
        ).start()
        client = PythiaClient(trace_path, socket=sock_path, retry=FAST_RETRY)
        results = []

        def burst():
            with client.pipeline(window=16) as pipe:
                for name, payload in events[:200]:
                    pipe.submit(name, payload)
                results.extend(pipe.drain())

        try:
            t = threading.Thread(target=burst)
            t.start()
            time.sleep(0.01)  # let some windows through
            srv.drain(deadline=30.0)
            t.join(timeout=30)
            assert not t.is_alive()
            assert len(results) == 200
            flips = 0
            for prev, cur in zip(results, results[1:]):
                prev_err = isinstance(prev, OracleServiceError)
                cur_err = isinstance(cur, OracleServiceError)
                if prev_err != cur_err:
                    assert cur_err and not prev_err, "success after cutover"
                    flips += 1
            assert flips <= 1
            for r in results:
                if isinstance(r, OracleServiceError):
                    assert r.code == "shutting_down"
        finally:
            client.close()
            srv.stop()
