"""Daemon ``explain`` / ``flight_dump`` ops: parity with the in-process
facade, per-session flight/drift defaults, and request validation."""

from __future__ import annotations

import socket

import pytest

from repro.core.oracle import Pythia
from repro.experiments.harness import mpi_record_run
from repro.server import OracleServer, PythiaClient, TraceStore
from repro.server.client import OracleServiceError
from repro.server.protocol import read_frame, write_frame


@pytest.fixture(scope="module")
def npb_trace(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("npb") / "cg.pythia")
    mpi_record_run("cg", "small", path, ranks=2, seed=0, timestamps=True)
    return path


@pytest.fixture
def server(tmp_path):
    sock = str(tmp_path / "oracle.sock")
    with OracleServer(sock, store=TraceStore(capacity=4)) as srv:
        yield srv


def event_stream(trace_path: str, thread: int = 0):
    trace = Pythia(trace_path, mode="predict").reference
    registry = trace.registry
    return [
        (registry.event(t).name, registry.event(t).payload)
        for t in trace.threads[thread].grammar.unfold()
    ]


class TestExplainParity:
    def test_remote_explanation_equals_in_process(self, npb_trace, server):
        """Acceptance: explain through the daemon == in-process explain,
        field by field, at several positions and distances."""
        events = event_stream(npb_trace)[:150]
        local = Pythia(npb_trace, mode="predict")
        with PythiaClient(npb_trace, socket=server.socket_path) as remote:
            for i, (name, payload) in enumerate(events):
                local.event(name, payload)
                remote.event(name, payload)
                if i % 10 != 0:
                    continue
                for distance in (1, 8):
                    le = local.explain(distance, top_k=4)
                    re = remote.explain(distance, top_k=4)
                    if le is None:
                        assert re is None
                        continue
                    assert re == le  # dataclass equality: every field
                    lp = local.predict(distance)
                    assert re.terminal == lp.terminal
                    assert re.probability == lp.probability

    def test_names_resolved_server_side(self, npb_trace, server):
        events = event_stream(npb_trace)[:20]
        with PythiaClient(npb_trace, socket=server.socket_path) as remote:
            for name, payload in events:
                remote.event(name, payload)
            sid = remote._session(0)
            obj = remote._request(
                "explain", session=sid, distance=1, names=True
            )["explanation"]
            assert obj is not None
            top = obj["events"][0]
            assert top["name"] == remote.registry.name(top["terminal"])

    def test_lost_session_explains_none(self, npb_trace, server):
        with PythiaClient(npb_trace, socket=server.socket_path) as remote:
            remote.event("never_recorded_event")
            assert remote.explain(1) is None

    def test_explain_validation(self, npb_trace, server):
        with PythiaClient(npb_trace, socket=server.socket_path) as remote:
            sid = remote._session(0)
            for bad in (
                {"op": "explain", "session": sid, "distance": 0},
                {"op": "explain", "session": sid, "distance": "far"},
                {"op": "explain", "session": sid, "top_k": 0},
                {"op": "explain", "session": sid, "top_k": 1000},
            ):
                with pytest.raises(OracleServiceError) as exc_info:
                    remote._request(**bad)
                assert exc_info.value.code == "bad_request"


class TestFlightDumpOp:
    def test_sessions_carry_flight_and_drift_by_default(self, npb_trace, server):
        events = event_stream(npb_trace)[:100]
        with PythiaClient(npb_trace, socket=server.socket_path) as remote:
            for name, payload in events:
                remote.event(name, payload)
            dump = remote.flight_dump()
            assert dump["drift"]["state"] == "ok"
            entries = dump["entries"]
            assert entries  # at least the initial attach + run blocks
            assert any(e["kind"] == "run" for e in entries)
            assert remote.flight_journal() == entries

    def test_chrome_format(self, npb_trace, server):
        events = event_stream(npb_trace)[:64]
        with PythiaClient(npb_trace, socket=server.socket_path) as remote:
            for name, payload in events:
                remote.event(name, payload)
            dump = remote.flight_dump(format="chrome")
            trace = dump["trace"]
            assert trace["traceEvents"][0]["ph"] == "M"
            assert any(e["ph"] == "i" for e in trace["traceEvents"])

    def test_flight_disabled_per_session(self, npb_trace, server):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(5)
        sock.connect(server.socket_path)
        write_frame(sock, {"op": "open_session", "trace": npb_trace, "flight": 0})
        sid = read_frame(sock)["session"]
        write_frame(sock, {"op": "flight_dump", "session": sid})
        response = read_frame(sock)
        assert response["ok"]
        assert response["entries"] is None  # no recorder on this session
        assert response["drift"]["state"] == "ok"  # drift still on
        sock.close()

    def test_flight_dump_validation(self, npb_trace, server):
        with PythiaClient(npb_trace, socket=server.socket_path) as remote:
            sid = remote._session(0)
            with pytest.raises(OracleServiceError) as exc_info:
                remote._request("flight_dump", session=sid, format="xml")
            assert exc_info.value.code == "bad_request"
            with pytest.raises(OracleServiceError) as exc_info:
                remote._request(
                    "open_session", trace=npb_trace, flight="lots"
                )
            assert exc_info.value.code == "bad_request"

    def test_daemon_stats_list_session_ids(self, npb_trace, server):
        with PythiaClient(npb_trace, socket=server.socket_path) as remote:
            sid = remote._session(0)
            stats = remote.server_stats()
            assert sid in stats["session_ids"]
            assert stats["sessions_active"] == len(stats["session_ids"])

    def test_drift_disabled_per_session(self, npb_trace, server):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(5)
        sock.connect(server.socket_path)
        write_frame(sock, {"op": "open_session", "trace": npb_trace, "drift": False})
        sid = read_frame(sock)["session"]
        write_frame(sock, {"op": "flight_dump", "session": sid})
        response = read_frame(sock)
        assert response["ok"]
        assert response["drift"] == {}
        sock.close()

    def test_attached_watchers_do_not_change_predictions(self, npb_trace, server):
        """Regression guard: the default per-session flight/drift attach
        must leave every answer identical to the bare in-process facade
        (which has no watchers unless enable_drift() is called)."""
        events = event_stream(npb_trace)[:200]
        local = Pythia(npb_trace, mode="predict")
        with PythiaClient(npb_trace, socket=server.socket_path) as remote:
            for name, payload in events:
                assert local.event(name, payload) == remote.event(name, payload)
                assert local.predict(4, with_time=True) == remote.predict(
                    4, with_time=True
                )
            assert remote.stats() == local.stats()
