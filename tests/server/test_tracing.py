"""End-to-end request tracing: ctx propagation, reply timing, sessions.

The tentpole contract: every client request is traced — a full
``ctx = {sid, rid}`` rides until the daemon binds the identity to the
connection, after which bare requests inherit the sid with implicit
consecutive rids — every reply to a traced request
carries ``srv = [queue_us, handler_us]``, and the client
decomposes its observed
round-trip latency into wire/queue/handler.  One ``observe_predict``
yields one correlated trace — a ``client.observe_predict`` span and a
``server.observe_predict`` span sharing session and request id — and
``pythia-trace analyze`` reproduces the decomposition offline from the
dumped journals.
"""

from __future__ import annotations

import json
import os
import socket

import pytest

from repro.experiments.harness import mpi_record_run
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs.analysis import TraceTable
from repro.server import OracleServer, PythiaClient, TraceStore
from repro.server.protocol import read_frame, write_frame


@pytest.fixture(scope="module")
def npb_trace(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("npb-tracing") / "bt.pythia")
    mpi_record_run("bt", "small", path, ranks=2, seed=0, timestamps=True)
    return path


@pytest.fixture
def fresh_registry():
    prev = obs_metrics.get_registry()
    reg = obs_metrics.set_registry(obs_metrics.MetricsRegistry())
    yield reg
    obs_metrics.set_registry(prev)


@pytest.fixture
def server(tmp_path, fresh_registry):
    sock = str(tmp_path / "oracle.sock")
    with OracleServer(sock, store=TraceStore(capacity=4)) as srv:
        yield srv


def raw_request(server, request: dict) -> dict:
    """One frame as a ctx-less legacy client would send it."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10.0)
    sock.connect(server.socket_path)
    try:
        write_frame(sock, request)
        response = read_frame(sock)
    finally:
        sock.close()
    assert response is not None
    return response


def drive(client, n=32, thread=0):
    """Send ``n`` observe_predict requests; returns the count sent."""
    registry = client.registry
    names = list(registry)
    for i in range(n):
        ev = registry.event(i % len(names))
        client.event_and_predict(ev.name, ev.payload, thread=thread)
    return n


class TestContextPropagation:
    def test_client_stamps_sid_and_monotonic_rid(self, npb_trace, server):
        with PythiaClient(npb_trace, socket=server.socket_path) as client:
            assert client.session_id.startswith("c")
            drive(client, 8)
            ctx = client.trace_context()
            assert ctx["enabled"] is True
            assert ctx["sid"] == client.session_id
            first_rid = ctx["rid"]
            drive(client, 8)
            assert client.trace_context()["rid"] > first_rid

    def test_reply_carries_server_timing(self, npb_trace, server):
        with PythiaClient(npb_trace, socket=server.socket_path) as client:
            drive(client, 4)
            timing = client.last_timing
            assert timing is not None
            assert timing["sid"] == client.session_id
            assert timing["rid"] == client.trace_context()["rid"]
            for key in ("total_us", "wire_us", "queue_us", "handler_us"):
                assert timing[key] is not None and timing[key] >= 0.0, key

    def test_decomposition_sums_to_total(self, npb_trace, server):
        with PythiaClient(npb_trace, socket=server.socket_path) as client:
            drive(client, 4)
            t = client.last_timing
            # wire is the residual, so the identity holds to rounding
            assert t["wire_us"] + t["queue_us"] + t["handler_us"] == pytest.approx(
                t["total_us"], abs=0.5
            )

    def test_error_replies_also_timed(self, npb_trace, server):
        with PythiaClient(npb_trace, socket=server.socket_path) as client:
            drive(client, 1)
            with pytest.raises(KeyError):
                client.predict(thread=77)  # no_such_thread
            # the failing call (open_session for thread 77) was timed too
            assert client.last_timing["op"] == "open_session"
            assert client.last_timing["handler_us"] is not None

    def test_context_off_restores_legacy_wire_format(self, npb_trace, server):
        with PythiaClient(
            npb_trace, socket=server.socket_path, context=False
        ) as client:
            drive(client, 4)
            assert client.last_timing is None
            assert client.timing_report() == {}
            assert client.trace_context()["enabled"] is False
        # and the daemon tracked nothing for it
        table = raw_request(server, {"op": "sessions"})
        assert table["tracked"] == 0

    def test_legacy_request_without_ctx_gets_no_srv(self, server):
        response = raw_request(server, {"op": "ping"})
        assert response["ok"]
        assert "srv" not in response

    def test_malformed_sid_ignored(self, server):
        for ctx in (
            {"sid": "", "rid": 1},        # empty sid
            {"sid": "x" * 200, "rid": 1},  # oversized sid
            {"sid": 7, "rid": 1},          # non-string sid
            "not a dict",
        ):
            response = raw_request(server, {"op": "ping", "ctx": ctx})
            assert response["ok"], ctx
            assert "srv" not in response, ctx
        assert raw_request(server, {"op": "sessions"})["tracked"] == 0

    def test_bound_connection_traces_bare_requests_implicitly(self, server):
        """A full ``ctx`` binds the identity to the connection; later
        requests on it carry no stamp at all and are attributed to the
        same session with consecutive rids (the stream delivers in
        order, so the daemon's count mirrors the client's)."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(10.0)
        sock.connect(server.socket_path)
        try:
            write_frame(sock, {"op": "ping", "ctx": {"sid": "bound", "rid": 1}})
            assert "srv" in read_frame(sock)
            for _ in range(3):
                write_frame(sock, {"op": "ping"})  # byte-identical to untraced
                response = read_frame(sock)
                assert response["ok"]
                assert len(response["srv"]) == 2
        finally:
            sock.close()
        table = raw_request(server, {"op": "sessions"})
        (row,) = table["sessions"]
        assert row["sid"] == "bound"
        assert row["requests"] == 4
        assert row["last_rid"] == 4  # 1 explicit + 3 implicit
        assert row["rid_regressions"] == 0

    def test_rebinding_resets_the_implicit_rid_base(self, server):
        """A later full ``ctx`` re-binds: implicit rids continue from
        its rid, exactly as a reconnecting client's counter would."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(10.0)
        sock.connect(server.socket_path)
        try:
            write_frame(sock, {"op": "ping", "ctx": {"sid": "re", "rid": 10}})
            read_frame(sock)
            write_frame(sock, {"op": "ping"})  # implicit rid 11
            read_frame(sock)
            write_frame(sock, {"op": "ping", "ctx": {"sid": "re", "rid": 40}})
            read_frame(sock)
            write_frame(sock, {"op": "ping"})  # implicit rid 41
            read_frame(sock)
        finally:
            sock.close()
        table = raw_request(server, {"op": "sessions"})
        (row,) = table["sessions"]
        assert row["last_rid"] == 41
        assert row["rid_regressions"] == 0

    def test_malformed_rid_with_valid_sid_still_traced(self, server):
        """The sid gates tracing; a broken rid is dropped, it does not
        lose the reply timing or count as a regression — the session
        table just stops advancing ``last_rid``."""
        for ctx in (
            {"sid": "ok", "rid": -1},    # negative rid
            {"sid": "ok", "rid": True},  # bool is not a rid
            {"sid": "ok"},               # absent rid
        ):
            response = raw_request(server, {"op": "ping", "ctx": ctx})
            assert response["ok"], ctx
            assert len(response["srv"]) == 2, ctx
        table = raw_request(server, {"op": "sessions"})
        (row,) = table["sessions"]
        assert row["sid"] == "ok"
        assert row["requests"] == 3
        assert row["last_rid"] == 0
        assert row["rid_regressions"] == 0

    def test_timing_report_has_all_components(self, npb_trace, server):
        with PythiaClient(npb_trace, socket=server.socket_path) as client:
            drive(client, 16)
            report = client.timing_report()
        op = report["observe_predict"]
        for component in ("total", "wire", "queue", "handler"):
            assert op[component]["count"] >= 16, component
            assert op[component]["p99_us"] >= op[component]["p50_us"] >= 0

    def test_explicit_session_id(self, npb_trace, server):
        with PythiaClient(
            npb_trace, socket=server.socket_path, session_id="my-worker-1"
        ) as client:
            drive(client, 2)
        table = raw_request(server, {"op": "sessions"})
        assert [row["sid"] for row in table["sessions"]] == ["my-worker-1"]

    def test_invalid_session_id_rejected(self, npb_trace, server):
        with pytest.raises(ValueError):
            PythiaClient(npb_trace, socket=server.socket_path, session_id="")
        with pytest.raises(ValueError):
            PythiaClient(
                npb_trace, socket=server.socket_path, session_id="x" * 129
            )


class TestSessionsOp:
    def test_table_row_per_client(self, npb_trace, server):
        with PythiaClient(npb_trace, socket=server.socket_path) as a:
            with PythiaClient(npb_trace, socket=server.socket_path) as b:
                drive(a, 8)
                drive(b, 4)
                table = raw_request(server, {"op": "sessions"})
                rows = {row["sid"]: row for row in table["sessions"]}
                assert set(rows) == {a.session_id, b.session_id}
                assert rows[a.session_id]["requests"] > rows[b.session_id]["requests"]
                for row in rows.values():
                    assert row["rid_regressions"] == 0
                    assert row["handler_us"]["p99"] >= row["handler_us"]["p50"]

    def test_live_rows_join_tracker_state(self, npb_trace, server):
        with PythiaClient(npb_trace, socket=server.socket_path) as client:
            drive(client, 32)
            table = client.sessions()
            (row,) = [
                r for r in table["sessions"] if r["sid"] == client.session_id
            ]
            assert row["live_sessions"], "live daemon sessions not joined"
            assert 0.0 <= row["hit_rate"] <= 1.0
            assert row["observed"] >= 32
        # after close the row survives (telemetry) but the join is gone
        table = raw_request(server, {"op": "sessions"})
        (row,) = table["sessions"]
        assert row["live_sessions"] == []
        assert "hit_rate" not in row

    def test_sessions_allowed_while_draining(self, npb_trace, server):
        """``sessions`` is in the drain allowlist: monitors keep sight
        of the table while the daemon winds down."""
        with PythiaClient(npb_trace, socket=server.socket_path) as client:
            drive(client, 2)
            # connect before the drain: a draining daemon refuses new
            # connections but keeps answering allowlisted ops on live ones
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(10.0)
            sock.connect(server.socket_path)
            try:
                server.drain(deadline=1.0)
                assert server.draining
                write_frame(sock, {"op": "sessions"})
                response = read_frame(sock)
            finally:
                sock.close()
            assert response["ok"]
            assert response["tracked"] == 1

    def test_session_metrics_labeled_and_bounded(self, npb_trace, tmp_path,
                                                 fresh_registry):
        sock = str(tmp_path / "small.sock")
        with OracleServer(
            sock, store=TraceStore(capacity=4), session_stats_capacity=2
        ) as server:
            sids = [f"worker-{i}" for i in range(4)]
            for sid in sids:
                with PythiaClient(npb_trace, socket=sock, session_id=sid) as c:
                    drive(c, 2)
            text = raw_request(server, {"op": "metrics"})["text"]
            # only the 2 most recent sids keep series: eviction pruned the rest
            assert 'session="worker-3"' in text
            assert 'session="worker-2"' in text
            assert 'session="worker-0"' not in text
            assert 'session="worker-1"' not in text
            assert "pythia_session_requests_total" in text
            assert "pythia_session_last_rid" in text
            table = raw_request(server, {"op": "sessions"})
            assert table["tracked"] == 2
            assert table["evicted"] == 2


class TestCorrelatedTrace:
    def test_observe_predict_yields_one_correlated_trace(
        self, npb_trace, server, tmp_path
    ):
        """Acceptance: client and daemon spans share sid/rid, and the
        client-observed latency decomposes into wire+queue+handler."""
        with obs_spans.span_recording() as rec:
            with PythiaClient(npb_trace, socket=server.socket_path) as client:
                drive(client, 1)
                sid = client.session_id
                rid = client.last_timing["rid"]
                timing = dict(client.last_timing)
        spans = [
            s for s in rec.spans()
            if s.attrs.get("sid") == sid and s.attrs.get("rid") == rid
        ]
        names = sorted(s.name for s in spans)
        assert names == ["client.observe_predict", "server.observe_predict"]
        by_name = {s.name: s for s in spans}
        client_span = by_name["client.observe_predict"]
        server_span = by_name["server.observe_predict"]
        # the daemon's reply timing is what the client span carries
        assert client_span.attrs["queue_us"] == server_span.attrs["queue_us"]
        assert client_span.attrs["handler_us"] == server_span.attrs["handler_us"]
        assert timing["wire_us"] + timing["queue_us"] + timing["handler_us"] == (
            pytest.approx(timing["total_us"], abs=0.5)
        )
        # the server span covers the handler interval, inside the client span
        assert server_span.duration <= client_span.duration

    def test_analyze_reproduces_decomposition_offline(
        self, npb_trace, server, tmp_path
    ):
        """Acceptance: the offline report over the dumped journal agrees
        with the client's live timing report."""
        dump = tmp_path / "merged-spans.json"
        with obs_spans.span_recording() as rec:
            with PythiaClient(npb_trace, socket=server.socket_path) as client:
                drive(client, 24)
                live = client.timing_report()
            rec.dump(dump)
        table = TraceTable.load(dump)
        offline = table.report()
        assert client.session_id in offline["sessions"]
        live_op = live["observe_predict"]
        offline_op = offline["ops"]["observe_predict"]
        for component in ("total", "wire", "queue", "handler"):
            assert offline_op[component]["count"] == live_op[component]["count"]
            # digests quantize into buckets; raw samples do not — allow
            # one bucket (latency buckets step ~2.5x) of slack
            assert offline_op[component]["max_us"] == pytest.approx(
                live_op[component]["max_us"], rel=1.6
            )
        # every decomposed request joined its server-side span
        decomposed = table.decompose()
        assert len(decomposed) == len(table.requests())
        assert all(
            row.get("server_handler_us") is not None
            for row in decomposed
            if row["name"] == "client.observe_predict"
        )
        # CI's integration job uploads the merged trace as an artifact
        target = os.environ.get("PYTHIA_CHROME_TRACE")
        if target:
            merged = table.decompose()
            with open(target, "w", encoding="utf-8") as fh:
                json.dump(
                    {
                        "traceEvents": [
                            {
                                "name": row["name"], "ph": "X",
                                "ts": row["ts"], "dur": row["dur"],
                                "pid": row["pid"] or 0, "tid": row["tid"] or 0,
                                "args": {
                                    k: v for k, v in row.items()
                                    if k not in ("name", "ts", "dur", "pid", "tid")
                                    and v is not None
                                },
                            }
                            for row in merged
                        ]
                    },
                    fh,
                )

    def test_flight_journal_tagged_with_client_sid(self, npb_trace, server):
        """The daemon names per-session flight recorders after the
        client sid, so merged journals correlate with the spans."""
        with PythiaClient(npb_trace, socket=server.socket_path) as client:
            drive(client, 16)
            with server._lock:
                (session,) = server._sessions.values()
            assert session.ctx_sid == client.session_id
            flight = session.tracker.flight
            assert flight is not None
            assert flight.session.startswith(client.session_id + ".")


class TestQueueMetric:
    def test_queue_histogram_exposed(self, npb_trace, server):
        with PythiaClient(npb_trace, socket=server.socket_path) as client:
            drive(client, 4)
        text = raw_request(server, {"op": "metrics"})["text"]
        assert "pythia_server_queue_seconds_count" in text
        assert "pythia_server_queue_seconds_sum" in text
