"""Tests for the 13 application skeletons."""

from __future__ import annotations

import pytest

from repro.apps import APPS, get_app, list_apps
from repro.mpi import NetworkModel, mpirun

NET = NetworkModel(latency=1e-4, ranks_per_node=2)

PAPER_APPS = {
    "bt", "cg", "ep", "ft", "is", "lu", "mg", "sp",  # NPB
    "amg", "lulesh", "kripke", "minife", "quicksilver",
}


class TestRegistry:
    def test_all_13_apps_registered(self):
        assert set(list_apps()) == PAPER_APPS

    def test_hybrid_flags_match_paper(self):
        hybrid = {name for name, spec in APPS.items() if spec.hybrid}
        assert hybrid == {"amg", "lulesh", "kripke", "minife", "quicksilver"}

    def test_lookup_case_insensitive(self):
        assert get_app("BT") is APPS["bt"]

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            get_app("hpl")

    def test_paper_rows_present(self):
        for spec in APPS.values():
            assert {"vanilla_s", "overhead_pct", "events", "rules"} <= set(spec.paper)


@pytest.mark.parametrize("app", sorted(PAPER_APPS))
class TestEveryApp:
    def test_runs_to_completion_small(self, app):
        spec = get_app(app)
        run = mpirun(4, spec.main, "small", 0, network=NET)
        assert run.time > 0

    def test_deterministic(self, app):
        spec = get_app(app)
        t1 = mpirun(4, spec.main, "small", 0, network=NET).time
        t2 = mpirun(4, spec.main, "small", 0, network=NET).time
        assert t1 == t2

    def test_working_sets_scale_time(self, app):
        spec = get_app(app)
        small = mpirun(4, spec.main, "small", 0, network=NET).time
        large = mpirun(4, spec.main, "large", 0, network=NET).time
        assert large > small

    def test_invalid_working_set(self, app):
        spec = get_app(app)
        with pytest.raises(ValueError):
            mpirun(2, spec.main, "gigantic", 0, network=NET)


class TestEventStreamCharacter:
    """Structural properties Table I depends on."""

    def count_events(self, app, ws="small", ranks=4, seed=0):
        from repro.core.oracle import Pythia
        from repro.runtime.mpi_interpose import MPIRuntimeSystem
        import tempfile, os

        path = os.path.join(tempfile.gettempdir(), f"apps-test-{app}.pythia")
        oracle = Pythia(path, mode="record", record_timestamps=False)
        mpirun(ranks, get_app(app).main, ws, seed, network=NET,
               interceptor_factory=lambda r, c: MPIRuntimeSystem(oracle, r, c))
        trace = oracle.finish()
        os.unlink(path)
        rules = sum(t.grammar.rule_count for t in trace.threads.values()) / ranks
        return trace.event_count, rules

    def test_ep_is_minimal(self):
        events, rules = self.count_events("ep")
        assert events <= 10 * 4
        assert rules == 1  # just the root, as in Table I

    def test_bt_has_three_rules(self):
        _events, rules = self.count_events("bt")
        assert rules == 3  # R + halo + iteration, as in Fig 7

    def test_event_counts_span_magnitudes(self):
        ep, _ = self.count_events("ep")
        lu, _ = self.count_events("lu")
        assert lu > 100 * ep

    def test_quicksilver_most_irregular(self):
        _e1, qs = self.count_events("quicksilver")
        _e2, bt = self.count_events("bt")
        _e3, amg = self.count_events("amg")
        assert qs > amg > bt

    def test_quicksilver_differs_across_seeds(self):
        e1, _ = self.count_events("quicksilver", seed=0)
        e2, _ = self.count_events("quicksilver", seed=99)
        assert e1 != e2  # data-dependent communication

    def test_bt_identical_across_seeds(self):
        e1, r1 = self.count_events("bt", seed=0)
        e2, r2 = self.count_events("bt", seed=99)
        assert (e1, r1) == (e2, r2)

    def test_lu_structure_changes_with_working_set(self):
        e_small, _ = self.count_events("lu", ws="small")
        e_large, _ = self.count_events("lu", ws="large")
        # more planes and more iterations -> more events
        assert e_large > 2 * e_small


class TestLuleshOmpModel:
    def test_catalogue_has_30_regions(self):
        from repro.apps.lulesh_omp import LULESH_OMP_REGIONS

        assert len(LULESH_OMP_REGIONS) == 30
        kinds = {r.kind for r in LULESH_OMP_REGIONS}
        assert kinds == {"volume", "surface", "fixup"}

    def test_region_work_scaling(self):
        from repro.apps.lulesh_omp import LULESH_OMP_REGIONS, region_work

        vol = next(r for r in LULESH_OMP_REGIONS if r.kind == "volume")
        fix = next(r for r in LULESH_OMP_REGIONS if r.kind == "fixup")
        # volume scales cubically, fixup linearly
        assert region_work(vol, 40) / region_work(vol, 20) == pytest.approx(8.0)
        assert region_work(fix, 40) / region_work(fix, 20) == pytest.approx(2.0)

    def test_timesteps_grow_with_size(self):
        from repro.apps.lulesh_omp import lulesh_timesteps

        assert lulesh_timesteps(50) > lulesh_timesteps(10)

    def test_run_executes_all_regions(self):
        from repro.apps.lulesh_omp import lulesh_omp_run
        from repro.machines import PUDDING
        from repro.openmp.runtime import GompRuntime

        rt = GompRuntime(PUDDING, max_threads=8)
        t = lulesh_omp_run(rt, 10, timesteps=5)
        assert rt.stats["regions"] == 5 * 30
        assert t > 0
