"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import random

import pytest

from repro.core.frozen import FrozenGrammar
from repro.core.grammar import Grammar

# terminal aliases used throughout the tests (match the paper's notation)
A, B, C, D, E = 0, 1, 2, 3, 4

NAMES = {0: "a", 1: "b", 2: "c", 3: "d", 4: "e"}


def build_grammar(seq: list[int], *, check: bool = False) -> Grammar:
    """Feed ``seq`` into a fresh grammar (optionally invariant-checking)."""
    g = Grammar()
    for t in seq:
        g.append(t)
        if check:
            g.check_invariants()
    return g


def freeze(seq: list[int]) -> FrozenGrammar:
    """Shorthand: reduce ``seq`` and freeze the result."""
    return FrozenGrammar.from_grammar(build_grammar(seq))


def random_structured_stream(seed: int, *, alphabet: int = 5, max_len: int = 400) -> list[int]:
    """A loop-structured random event stream (what HPC traces look like)."""
    rng = random.Random(seed)
    body = [rng.randrange(alphabet) for _ in range(rng.randrange(1, 6))]
    inner_reps = rng.randrange(2, 12)
    prologue = [rng.randrange(alphabet) for _ in range(rng.randrange(0, 4))]
    epilogue = [rng.randrange(alphabet) for _ in range(rng.randrange(0, 4))]
    outer = rng.randrange(1, 5)
    seq = (prologue + body * inner_reps + epilogue) * outer
    return seq[:max_len] if seq else [0]


def grammar_from_spec(spec: dict[str, list[tuple]], order: list[str]) -> tuple[Grammar, dict[str, object]]:
    """Build a grammar in an exact state (white-box testing of §II-A).

    ``spec`` maps rule names to bodies; body items are ``(terminal, exp)``
    with ``terminal`` an int, or ``(rule_name, exp)`` with a str.  The
    first name in ``order`` is the root.  Returns the grammar and the
    name->Rule mapping.  The digram index and usage counters are rebuilt,
    and the result is invariant-checked.
    """
    g = Grammar()
    rules: dict[str, object] = {order[0]: g.root}
    for name in order[1:]:
        rules[name] = g._new_rule()
    for name in order:
        rule = rules[name]
        for sym, exp in spec[name]:
            target = rules[sym] if isinstance(sym, str) else sym
            node = g._link_after(rule.guard.prev, target, exp, rule)
            prev = node.prev
            if not prev.is_guard():
                key = (prev.symbol, node.symbol)
                assert key not in g._digrams, f"spec has duplicate digram {key}"
                g._digrams[key] = prev
    g._maybe_useless.clear()
    g._length = len(g.unfold())
    g.check_invariants()
    return g, rules


@pytest.fixture
def fig1_sequence() -> list[int]:
    """The paper's Fig. 1 trace: ``abbcbcab``."""
    return [A, B, B, C, B, C, A, B]


@pytest.fixture
def fig1_grammar(fig1_sequence) -> Grammar:
    return build_grammar(fig1_sequence)


@pytest.fixture
def fig1_frozen(fig1_sequence) -> FrozenGrammar:
    return freeze(fig1_sequence)


@pytest.fixture
def fig4_sequence() -> list[int]:
    """The paper's Fig. 4 trace: ``abcabdababc``."""
    #  a b c a b d a b a b c
    return [A, B, C, A, B, D, A, B, A, B, C]


@pytest.fixture
def tmp_trace_path(tmp_path):
    return str(tmp_path / "ref.pythia")


def pytest_sessionfinish(session, exitstatus):
    """Post-mortem flight dump: when the run failed and
    ``PYTHIA_FLIGHT_DIR`` names a directory, write every live flight
    recorder's journal there (CI uploads the directory as an artifact
    on failure, so the minute before a red test is inspectable)."""
    if exitstatus == 0:
        return
    directory = os.environ.get("PYTHIA_FLIGHT_DIR")
    if not directory:
        return
    from repro.obs.flight import dump_active

    paths = dump_active(directory)
    if paths:
        print(f"\n[pythia] dumped {len(paths)} flight journal(s) to {directory}")
