"""Tests for the MPI launcher, machine models and world bookkeeping."""

from __future__ import annotations

import pytest

from repro.machines import PARAVANCE, PIXEL, PUDDING
from repro.mpi import NetworkModel, mpirun
from repro.mpi.comm import SimMPIWorld
from repro.sim.engine import Simulator


class TestLauncher:
    def test_rank_results_in_order(self):
        def main(comm):
            yield comm.compute(0.001 * (comm.size - comm.rank))
            return comm.rank * 10

        run = mpirun(4, main)
        assert [run.rank_result(r) for r in range(4)] == [0, 10, 20, 30]

    def test_makespan_is_slowest_rank(self):
        def main(comm):
            yield comm.compute(1.0 + comm.rank)

        run = mpirun(3, main)
        assert run.time == pytest.approx(3.0)

    def test_kwargs_forwarded(self):
        def main(comm, base, extra=0):
            yield comm.compute(0.0)
            return base + extra

        run = mpirun(2, main, 5, extra=7)
        assert run.rank_result(0) == 12

    def test_interceptor_factory_receives_rank_and_comm(self):
        seen = []

        class Shim:
            def __init__(self, rank):
                self.rank = rank

            def mpi_call(self, fn, payload):
                pass

            def mpi_sync(self, fn):
                pass

            def take_overhead(self):
                return 0.0

        def factory(rank, comm):
            seen.append((rank, comm.rank))
            return Shim(rank)

        def main(comm):
            yield from comm.barrier()

        run = mpirun(3, main, interceptor_factory=factory)
        assert seen == [(0, 0), (1, 1), (2, 2)]
        assert all(run.interceptor(r).rank == r for r in range(3))

    def test_shared_simulator_allowed(self):
        sim = Simulator()

        def main(comm):
            yield from comm.barrier()

        run = mpirun(2, main, sim=sim)
        assert run.sim is sim


class TestWorld:
    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            SimMPIWorld(Simulator(), 0, NetworkModel())

    def test_rank_out_of_range(self):
        world = SimMPIWorld(Simulator(), 2, NetworkModel())
        with pytest.raises(ValueError):
            world.comm(5)

    def test_traffic_statistics(self):
        def main(comm):
            if comm.rank == 0:
                yield from comm.send(None, dest=1, size=1000)
            elif comm.rank == 1:
                yield from comm.recv(source=0)

        run = mpirun(2, main)
        assert run.world.stats["messages"] == 1
        assert run.world.stats["bytes"] == 1000


class TestMachineModels:
    def test_paper_machine_parameters(self):
        # §III-A1's hardware descriptions
        assert PUDDING.cores == 24 and PUDDING.ghz == 2.1
        assert PIXEL.cores == 16 and PIXEL.ghz == 2.4
        assert PARAVANCE.nodes == 72
        assert PARAVANCE.node.cores == 16
        assert PARAVANCE.total_cores() == 72 * 16

    def test_paravance_network_is_10gbe(self):
        assert PARAVANCE.bandwidth == pytest.approx(1.25e9)

    def test_network_from_cluster(self):
        net = NetworkModel.from_cluster(PARAVANCE, ranks_per_node=16)
        assert net.latency == PARAVANCE.latency
        assert net.node_of(15) == 0 and net.node_of(16) == 1

    def test_work_seconds(self):
        assert PUDDING.seconds_for_work(2.1) == pytest.approx(1.0)
        assert PUDDING.cycles_per_second() == pytest.approx(2.1e9)
