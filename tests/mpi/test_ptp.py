"""Unit tests for simulated MPI point-to-point communication."""

from __future__ import annotations

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, NetworkModel, mpirun
from repro.sim.engine import DeadlockError


FAST_NET = NetworkModel(latency=1e-3, bandwidth=1e9, ranks_per_node=1)


class TestSendRecv:
    def test_blocking_pair(self):
        def main(comm):
            if comm.rank == 0:
                yield from comm.send({"x": 1}, dest=1, size=100)
                return None
            data = yield from comm.recv(source=0)
            return data

        run = mpirun(2, main, network=FAST_NET)
        assert run.rank_result(1) == {"x": 1}
        # one inter-node message: latency + 100B/bw
        assert run.time == pytest.approx(1e-3 + 100 / 1e9)

    def test_nonblocking_pair(self):
        def main(comm):
            if comm.rank == 0:
                req = comm.isend("payload", dest=1)
                result = yield from comm.wait(req)
                return result
            req = comm.irecv(source=0)
            data = yield from comm.wait(req)
            return data

        run = mpirun(2, main, network=FAST_NET)
        assert run.rank_result(1) == "payload"

    def test_message_order_preserved(self):
        def main(comm):
            if comm.rank == 0:
                for i in range(5):
                    yield from comm.send(i, dest=1)
                return None
            got = []
            for _ in range(5):
                got.append((yield from comm.recv(source=0)))
            return got

        run = mpirun(2, main, network=FAST_NET)
        assert run.rank_result(1) == [0, 1, 2, 3, 4]

    def test_tag_matching(self):
        def main(comm):
            if comm.rank == 0:
                yield from comm.send("tagged9", dest=1, tag=9)
                yield from comm.send("tagged3", dest=1, tag=3)
                return None
            first = yield from comm.recv(source=0, tag=3)
            second = yield from comm.recv(source=0, tag=9)
            return (first, second)

        run = mpirun(2, main, network=FAST_NET)
        assert run.rank_result(1) == ("tagged3", "tagged9")

    def test_any_source(self):
        def main(comm):
            if comm.rank == 2:
                got = []
                for _ in range(2):
                    got.append((yield from comm.recv(source=ANY_SOURCE)))
                return sorted(got)
            yield comm.compute(0.001 * comm.rank)
            yield from comm.send(comm.rank, dest=2)
            return None

        run = mpirun(3, main, network=FAST_NET)
        assert run.rank_result(2) == [0, 1]

    def test_status_filled_on_recv(self):
        def main(comm):
            if comm.rank == 0:
                yield from comm.send("x", dest=1, tag=7, size=64)
                return None
            req = comm.irecv(source=ANY_SOURCE, tag=ANY_TAG)
            yield from comm.wait(req)
            return (req.status.source, req.status.tag, req.status.size)

        run = mpirun(2, main, network=FAST_NET)
        assert run.rank_result(1) == (0, 7, 64)

    def test_waitall(self):
        def main(comm):
            if comm.rank == 0:
                reqs = [comm.isend(i, dest=1, tag=i) for i in range(4)]
                yield from comm.waitall(reqs)
                return None
            reqs = [comm.irecv(source=0, tag=i) for i in range(4)]
            vals = yield from comm.waitall(reqs)
            return vals

        run = mpirun(2, main, network=FAST_NET)
        assert run.rank_result(1) == [0, 1, 2, 3]

    def test_missing_send_deadlocks(self):
        def main(comm):
            if comm.rank == 1:
                yield from comm.recv(source=0)  # never sent

            else:
                yield comm.compute(0.001)

        with pytest.raises(DeadlockError):
            mpirun(2, main, network=FAST_NET)

    def test_invalid_dest_rejected(self):
        def main(comm):
            if comm.rank == 0:
                yield from comm.send("x", dest=5)

            else:
                yield comm.compute(0.0)

        with pytest.raises(ValueError):
            mpirun(2, main, network=FAST_NET)

    def test_iprobe(self):
        def main(comm):
            if comm.rank == 0:
                yield from comm.send("m", dest=1)
                return None
            assert not comm.iprobe(source=0)
            yield comm.compute(1.0)  # let the message arrive
            assert comm.iprobe(source=0)
            return (yield from comm.recv(source=0))

        run = mpirun(2, main, network=FAST_NET)
        assert run.rank_result(1) == "m"


class TestNetworkModel:
    def test_intra_node_is_faster(self):
        net = NetworkModel(latency=1e-3, bandwidth=1e9, intra_latency=1e-6,
                           intra_bandwidth=1e10, ranks_per_node=2)
        assert net.ptp_time(0, 1, 1000) < net.ptp_time(0, 2, 1000)

    def test_node_mapping(self):
        net = NetworkModel(ranks_per_node=4)
        assert net.node_of(0) == net.node_of(3) == 0
        assert net.node_of(4) == 1

    def test_collective_scales_with_log_ranks(self):
        net = NetworkModel(ranks_per_node=1)
        assert net.collective_time(2, 8) < net.collective_time(64, 8)

    def test_single_rank_collective_free(self):
        net = NetworkModel()
        assert net.collective_time(1, 8) == 0.0
        assert net.alltoall_time(1, 8) == 0.0
