"""Unit tests for simulated MPI collectives."""

from __future__ import annotations

import pytest

from repro.mpi import MAX, MIN, NetworkModel, PROD, SUM, mpirun

NET = NetworkModel(latency=1e-4, bandwidth=1e9, ranks_per_node=4)


def run_collective(size, body):
    return mpirun(size, body, network=NET)


class TestBarrier:
    def test_all_leave_together(self):
        def main(comm):
            yield comm.compute(0.01 * comm.rank)
            yield from comm.barrier()
            return comm.now

        run = run_collective(4, main)
        times = {run.rank_result(r) for r in range(4)}
        assert len(times) == 1
        assert times.pop() >= 0.03  # slowest rank dominates


class TestBcast:
    def test_root_value_everywhere(self):
        def main(comm):
            value = f"from-root" if comm.rank == 1 else None
            got = yield from comm.bcast(value, root=1)
            return got

        run = run_collective(4, main)
        assert all(run.rank_result(r) == "from-root" for r in range(4))


class TestReduce:
    @pytest.mark.parametrize(
        "op,expected", [(SUM, 6), (PROD, 0), (MIN, 0), (MAX, 3)]
    )
    def test_ops(self, op, expected):
        def main(comm):
            return (yield from comm.reduce(comm.rank, op=op, root=0))

        run = run_collective(4, main)
        assert run.rank_result(0) == expected
        assert all(run.rank_result(r) is None for r in range(1, 4))

    def test_allreduce(self):
        def main(comm):
            return (yield from comm.allreduce(comm.rank + 1, op=SUM))

        run = run_collective(4, main)
        assert all(run.rank_result(r) == 10 for r in range(4))


class TestGatherScatter:
    def test_gather(self):
        def main(comm):
            return (yield from comm.gather(comm.rank * 2, root=0))

        run = run_collective(4, main)
        assert run.rank_result(0) == [0, 2, 4, 6]
        assert run.rank_result(2) is None

    def test_allgather(self):
        def main(comm):
            return (yield from comm.allgather(chr(ord("a") + comm.rank)))

        run = run_collective(3, main)
        assert all(run.rank_result(r) == ["a", "b", "c"] for r in range(3))

    def test_scatter(self):
        def main(comm):
            values = [10, 20, 30, 40] if comm.rank == 0 else None
            return (yield from comm.scatter(values, root=0))

        run = run_collective(4, main)
        assert [run.rank_result(r) for r in range(4)] == [10, 20, 30, 40]

    def test_scatter_requires_full_list(self):
        def main(comm):
            values = [1] if comm.rank == 0 else None
            yield from comm.scatter(values, root=0)

        with pytest.raises(ValueError):
            run_collective(2, main)


class TestAlltoall:
    def test_transpose_semantics(self):
        def main(comm):
            out = [f"{comm.rank}->{d}" for d in range(comm.size)]
            return (yield from comm.alltoall(out))

        run = run_collective(3, main)
        assert run.rank_result(1) == ["0->1", "1->1", "2->1"]

    def test_alltoallv(self):
        def main(comm):
            buckets = [[comm.rank] * (d + 1) for d in range(comm.size)]
            return (yield from comm.alltoallv(buckets, sizes=[8 * (d + 1) for d in range(comm.size)]))

        run = run_collective(2, main)
        assert run.rank_result(0) == [[0], [1]]
        assert run.rank_result(1) == [[0, 0], [1, 1]]


class TestCollectiveDiscipline:
    def test_mismatched_collectives_detected(self):
        def main(comm):
            if comm.rank == 0:
                yield from comm.barrier()
            else:
                yield from comm.allreduce(1)

        with pytest.raises(RuntimeError, match="collective mismatch"):
            run_collective(2, main)

    def test_collective_cost_scales(self):
        def main(comm, size):
            yield from comm.allreduce(1, size=size)

        t_small = mpirun(8, main, 8, network=NET).time
        t_big = mpirun(8, main, 8 * 1024 * 1024, network=NET).time
        assert t_big > t_small


class TestSingleRankWorld:
    def test_collectives_degenerate(self):
        def main(comm):
            a = yield from comm.allreduce(5)
            b = yield from comm.bcast("v", root=0)
            yield from comm.barrier()
            g = yield from comm.allgather(9)
            return (a, b, g)

        run = mpirun(1, main, network=NET)
        assert run.rank_result(0) == (5, "v", [9])
