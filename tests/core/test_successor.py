"""The compiled successor machine: memoization, determinism, bounds."""

from __future__ import annotations

import pytest

from repro.core.progress import (
    END,
    descend,
    initial_chain,
    start_chains,
    successors,
    terminal_of,
)
from repro.core.successor import DEFAULT_MAX_ENTRIES, SuccessorMachine
from tests.conftest import freeze, random_structured_stream


def _walk_chains(fg, limit=200):
    """Every chain reachable from the initial chain (BFS, bounded)."""
    seen = []
    frontier = [initial_chain(fg)]
    visited = set()
    while frontier and len(seen) < limit:
        chain = frontier.pop(0)
        if chain in visited or chain is END or not chain:
            continue
        visited.add(chain)
        seen.append(chain)
        for succ, _w in successors(fg, chain):
            if succ not in visited:
                frontier.append(succ)
    return seen


class TestMemoization:
    def test_expand_matches_reference(self, fig1_frozen):
        machine = SuccessorMachine(fig1_frozen)
        for chain in _walk_chains(fig1_frozen):
            ref = successors(fig1_frozen, chain)
            got = machine.successors(chain)
            assert got == ref  # exact floats, not approx

    def test_repeat_lookup_hits_and_is_interned(self, fig1_frozen):
        machine = SuccessorMachine(fig1_frozen)
        chain = initial_chain(fig1_frozen)
        first = machine.expand(chain)
        hits0 = machine.hits
        second = machine.expand(chain)
        assert second is first  # same cached tuple, not a recomputation
        assert machine.hits == hits0 + 1
        # an equal-but-distinct key also hits (and returns interned chains)
        clone = tuple(tuple(step) for step in chain)
        assert clone is not chain and clone == chain
        assert machine.expand(clone) is first

    def test_successor_chains_interned_across_entries(self, fig1_frozen):
        machine = SuccessorMachine(fig1_frozen)
        chain = initial_chain(fig1_frozen)
        (succ, _w, _t) = machine.expand(chain)[0]
        # expanding the successor interns it as a key: same tuple object
        machine.expand(succ)
        (again, _w2, _t2) = machine.expand(chain)[0]
        assert again is succ

    def test_terminals_precomputed(self, fig1_frozen):
        machine = SuccessorMachine(fig1_frozen)
        for chain in _walk_chains(fig1_frozen):
            for succ, _w, term in machine.expand(chain):
                if succ is END or not succ:
                    assert term is None
                else:
                    assert term == terminal_of(fig1_frozen, succ)

    def test_weight_scaling_identical_to_reference(self, fig1_frozen):
        machine = SuccessorMachine(fig1_frozen)
        chain = initial_chain(fig1_frozen)
        for weight in (1.0, 0.5, 1.0 / 3.0, 0.7071067811865476):
            assert machine.successors(chain, weight) == successors(
                fig1_frozen, chain, weight
            )


class TestDeterministicTable:
    def test_unique_successor_becomes_det_entry(self, fig1_frozen):
        machine = SuccessorMachine(fig1_frozen)
        chain = initial_chain(fig1_frozen)
        assert machine.deterministic_next(chain) is None  # not expanded yet
        rel = machine.expand(chain)
        det = machine.deterministic_next(chain)
        if len(rel) == 1 and rel[0][2] is not None:
            assert det == (rel[0][0], rel[0][2])
            assert machine.det_hits == 1
        else:
            assert det is None

    def test_branching_chain_has_no_det_entry(self):
        fg = freeze([0, 1, 0, 1, 0, 1])  # ababab -> loop with exponent
        machine = SuccessorMachine(fg)
        # a start chain with unknown iteration branches (stay vs leave)
        for terminal in fg.terminals():
            for chain, _w in machine.start_chains(terminal):
                rel = machine.expand(chain)
                if len(rel) > 1:
                    assert machine.deterministic_next(chain) is None
                    return
        raise AssertionError("ababab must produce a branching chain")


class TestBoundedMemory:
    def test_eviction_keeps_cache_under_cap(self):
        fg = freeze(random_structured_stream(7, max_len=300))
        machine = SuccessorMachine(fg, max_entries=8)
        for chain in _walk_chains(fg, limit=100):
            machine.expand(chain)
            assert len(machine._memo) <= 8
        assert machine.evictions > 0
        # evicted chains still answer correctly (recomputed on miss)
        for chain in _walk_chains(fg, limit=100):
            assert machine.successors(chain) == successors(fg, chain)

    def test_det_table_follows_memo_eviction(self):
        fg = freeze(random_structured_stream(11, max_len=300))
        machine = SuccessorMachine(fg, max_entries=4)
        for chain in _walk_chains(fg, limit=60):
            machine.expand(chain)
        assert set(machine._det) <= set(machine._memo)

    def test_env_var_and_validation(self, monkeypatch):
        fg = freeze([0, 1, 2])
        monkeypatch.setenv("PYTHIA_SUCCESSOR_CACHE", "123")
        assert SuccessorMachine(fg).max_entries == 123
        monkeypatch.setenv("PYTHIA_SUCCESSOR_CACHE", "garbage")
        assert SuccessorMachine(fg).max_entries == DEFAULT_MAX_ENTRIES
        with pytest.raises(ValueError):
            SuccessorMachine(fg, max_entries=0)


class TestAuxiliaryCaches:
    def test_start_chains_cached_and_equal(self, fig1_frozen):
        machine = SuccessorMachine(fig1_frozen)
        for terminal in fig1_frozen.terminals():
            got = machine.start_chains(terminal)
            assert list(got) == start_chains(fig1_frozen, terminal)
            assert machine.start_chains(terminal) is got

    def test_descend_matches_reference(self, fig1_frozen):
        machine = SuccessorMachine(fig1_frozen)
        for rid, body in fig1_frozen.bodies.items():
            for idx in range(len(body)):
                assert machine.descend(rid, idx) == descend(fig1_frozen, rid, idx)
                assert machine.descend(rid, idx, 2) == descend(fig1_frozen, rid, idx, 2)

    def test_shared_machine_per_grammar(self, fig1_frozen):
        assert fig1_frozen.machine() is fig1_frozen.machine()


class TestStats:
    def test_stats_counters(self, fig1_frozen):
        machine = SuccessorMachine(fig1_frozen)
        chain = initial_chain(fig1_frozen)
        machine.expand(chain)
        machine.expand(chain)
        s = machine.stats()
        assert s["misses"] == 1
        assert s["hits"] == 1
        assert s["entries"] == 1
        assert s["hit_rate"] == 0.5

    def test_flush_metrics_publishes_deltas(self, fig1_frozen):
        from repro.obs import metrics as obs_metrics

        reg = obs_metrics.MetricsRegistry()
        old = obs_metrics.get_registry()
        obs_metrics.set_registry(reg)
        try:
            machine = SuccessorMachine(fig1_frozen)
            chain = initial_chain(fig1_frozen)
            machine.expand(chain)
            machine.expand(chain)
            machine.flush_metrics()
            machine.flush_metrics()  # second flush: no double counting
            text = obs_metrics.render_prometheus(reg)
            assert "pythia_successor_cache_hits_total 1" in text
            assert "pythia_successor_cache_misses_total 1" in text
            assert "pythia_successor_cache_entries 1" in text
        finally:
            obs_metrics.set_registry(old)
