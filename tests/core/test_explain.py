"""Prediction provenance: explain() agrees with predict() and serializes."""

from __future__ import annotations

import json

import pytest

from repro.core.explain import Explanation
from repro.core.predict import PythiaPredict
from repro.core.timing import TimingTable
from tests.conftest import A, B, C, NAMES, freeze, random_structured_stream


class TestAgreementWithPredict:
    def test_top_event_is_exactly_the_prediction(self):
        stream = random_structured_stream(3)
        p = PythiaPredict(freeze(stream))
        for i, t in enumerate(stream):
            p.observe(t)
            pred = p.predict(1)
            expl = p.explain(1)
            if pred is None:
                assert expl is None
                continue
            assert expl is not None, i
            assert expl.terminal == pred.terminal
            assert expl.probability == pred.probability  # same floats

    def test_event_masses_are_the_full_distribution(self):
        stream = random_structured_stream(5)
        p = PythiaPredict(freeze(stream))
        for t in stream[: len(stream) // 2]:
            p.observe(t)
        pred = p.predict(4)
        expl = p.explain(4, top_k=64)
        assert {e.terminal: e.probability for e in expl.events} == pred.distribution

    def test_source_weights_sum_to_event_probability(self):
        stream = random_structured_stream(8)
        p = PythiaPredict(freeze(stream))
        for t in stream[: len(stream) // 3]:
            p.observe(t)
        expl = p.explain(2, top_k=64, max_sources=10_000)
        for ev in expl.events:
            assert len(ev.sources) == ev.source_count
            assert sum(s.weight for s in ev.sources) == pytest.approx(ev.probability)
            # sources come heaviest first
            weights = [s.weight for s in ev.sources]
            assert weights == sorted(weights, reverse=True)

    def test_explain_is_side_effect_free(self):
        stream = random_structured_stream(2)
        p = PythiaPredict(freeze(stream))
        for t in stream[:20]:
            p.observe(t)
        before = p.stats()
        cands_before = dict(p.candidates)
        p.explain(3)
        assert p.stats() == before  # no counter moved, nothing scored
        assert p.candidates == cands_before
        # and the next predict is unaffected
        assert p.predict(1) == p.predict(1)

    def test_lost_tracker_explains_none(self):
        p = PythiaPredict(freeze([A, B, C] * 4))
        p.observe(A)
        p.observe_unknown()
        assert p.predict(1) is None
        assert p.explain(1) is None

    def test_eta_matches_with_time(self):
        stream = random_structured_stream(4)
        fg = freeze(stream)
        timing = TimingTable.from_replay(fg, [0.5 * i for i in range(len(stream))])
        p = PythiaPredict(fg, timing)
        for t in stream[:30]:
            p.observe(t)
        pred = p.predict(2, with_time=True)
        expl = p.explain(2, with_time=True)
        assert expl.eta == pred.eta

    def test_validation(self):
        p = PythiaPredict(freeze([A, B, C] * 4))
        p.observe(A)
        with pytest.raises(ValueError):
            p.explain(1, top_k=0)
        with pytest.raises(ValueError):
            p.explain(0)


class TestShapes:
    def test_deterministic_flag_on_singleton_loop(self):
        seq = [A, B, C] * 8
        p = PythiaPredict(freeze(seq))
        for t in seq[: len(seq) - 4]:
            p.observe(t)
        expl = p.explain(1)
        if len(p.candidates) == 1:
            assert expl.candidates == 1
            assert expl.deterministic

    def test_path_field_tracks_traversal(self):
        seq = [A, B, C] * 8
        compiled = PythiaPredict(freeze(seq), compiled=True)
        reference = PythiaPredict(freeze(seq), compiled=False)
        for p in (compiled, reference):
            p.observe(A)
        assert compiled.explain(1).path == "compiled"
        assert reference.explain(1).path == "reference"

    def test_rule_path_is_chain_rules_bottom_first(self):
        stream = random_structured_stream(13)
        p = PythiaPredict(freeze(stream))
        for t in stream[:25]:
            p.observe(t)
        expl = p.explain(1, top_k=64)
        for ev in expl.events:
            for src in ev.sources:
                assert src.rule_path == tuple(step[0] for step in src.chain)
                assert src.terminal == ev.terminal

    def test_to_obj_round_trip_and_json(self):
        stream = random_structured_stream(21)
        p = PythiaPredict(freeze(stream))
        for t in stream[:40]:
            p.observe(t)
        expl = p.explain(3, top_k=5)
        obj = expl.to_obj()
        # JSON-safe and lossless
        assert Explanation.from_obj(json.loads(json.dumps(obj))) == expl
        assert obj["terminal"] == expl.terminal
        assert obj["probability"] == expl.probability

    def test_to_obj_with_names(self):
        p = PythiaPredict(freeze([A, B, C] * 8))
        p.observe(A)
        p.observe(B)
        obj = p.explain(1).to_obj(lambda t: NAMES[t])
        assert obj["events"][0]["name"] == NAMES[obj["events"][0]["terminal"]]

    def test_describe_renders_every_event(self):
        p = PythiaPredict(freeze([A, B, C] * 8))
        p.observe(A)
        text = p.explain(1, top_k=3).describe(lambda t: NAMES[t])
        assert text.startswith("explain distance=1")
        assert "p=" in text and "rules" in text
