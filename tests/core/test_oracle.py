"""Unit tests for the Pythia facade (record-or-predict across runs)."""

from __future__ import annotations

import os

import pytest

from repro.core.oracle import Pythia


APP_EVENTS = (
    [("MPI_Isend", 1), ("MPI_Irecv", 1), ("MPI_Wait", None), ("MPI_Wait", None)] * 10
    + [("MPI_Allreduce", 0)]
) * 3


def run_app(oracle: Pythia, events=APP_EVENTS, clock_step=0.001):
    t = 0.0
    for name, payload in events:
        t += clock_step
        oracle.event(name, payload, timestamp=t)


class TestModes:
    def test_auto_records_first_run(self, tmp_trace_path):
        oracle = Pythia(tmp_trace_path)
        assert oracle.recording and not oracle.predicting

    def test_auto_predicts_second_run(self, tmp_trace_path):
        first = Pythia(tmp_trace_path)
        run_app(first)
        first.finish()
        assert os.path.exists(tmp_trace_path)
        second = Pythia(tmp_trace_path)
        assert second.predicting

    def test_forced_modes(self, tmp_trace_path):
        oracle = Pythia(tmp_trace_path, mode="record")
        assert oracle.recording
        run_app(oracle)
        oracle.finish()
        with pytest.raises(ValueError):
            Pythia(tmp_trace_path, mode="bogus")

    def test_predict_mode_without_file_fails(self, tmp_trace_path):
        with pytest.raises(FileNotFoundError):
            Pythia(tmp_trace_path, mode="predict")

    def test_auto_resolves_by_opening_not_by_exists_check(self, tmp_trace_path):
        # the mode decision and the load are one operation, so a file
        # appearing *after* the decision cannot produce a half-predict
        # oracle: whoever loaded records/predicts coherently
        first = Pythia(tmp_trace_path)
        run_app(first)
        first.finish()
        oracle = Pythia(tmp_trace_path)
        assert oracle.predicting
        assert oracle.reference is not None  # loaded by the same open

    def test_auto_on_corrupt_file_raises_not_records(self, tmp_trace_path):
        from repro.core.trace_file import TraceFormatError

        with open(tmp_trace_path, "w") as fh:
            fh.write("{ definitely not a trace")
        # a corrupt file must surface loudly, not be silently clobbered
        # by a fresh recording
        with pytest.raises(TraceFormatError):
            Pythia(tmp_trace_path)

    def test_concurrent_recorders_last_writer_wins(self, tmp_trace_path):
        # two processes losing the auto race both record; finish() is an
        # atomic rename, so the survivor is one complete valid trace
        first = Pythia(tmp_trace_path)
        second = Pythia(tmp_trace_path)
        assert first.recording and second.recording
        run_app(first)
        run_app(second, events=APP_EVENTS[:20])
        first.finish()
        second.finish()  # last writer
        reader = Pythia(tmp_trace_path)
        assert reader.predicting
        assert reader.reference.event_count == 20


class TestRecordRun:
    def test_finish_writes_trace(self, tmp_trace_path):
        oracle = Pythia(tmp_trace_path, meta={"app": "test"})
        run_app(oracle)
        trace = oracle.finish()
        assert trace is not None
        assert trace.meta["app"] == "test"
        assert trace.event_count == len(APP_EVENTS)

    def test_predict_in_record_mode_returns_none(self, tmp_trace_path):
        oracle = Pythia(tmp_trace_path)
        run_app(oracle)
        assert oracle.predict(1) is None

    def test_double_finish_rejected(self, tmp_trace_path):
        oracle = Pythia(tmp_trace_path)
        run_app(oracle)
        oracle.finish()
        with pytest.raises(RuntimeError):
            oracle.finish()

    def test_event_after_finish_rejected(self, tmp_trace_path):
        oracle = Pythia(tmp_trace_path)
        run_app(oracle)
        oracle.finish()
        with pytest.raises(RuntimeError):
            oracle.event("MPI_Wait")

    def test_multi_thread_recording(self, tmp_trace_path):
        oracle = Pythia(tmp_trace_path, record_timestamps=False)
        for tid in range(3):
            for name, payload in APP_EVENTS[:20]:
                oracle.event(name, payload, thread=tid)
        trace = oracle.finish()
        assert set(trace.threads) == {0, 1, 2}


class TestPredictRun:
    @pytest.fixture
    def recorded(self, tmp_trace_path):
        oracle = Pythia(tmp_trace_path)
        run_app(oracle)
        oracle.finish()
        return tmp_trace_path

    def test_predictions_match_replay(self, recorded):
        oracle = Pythia(recorded)
        correct = total = 0
        for i, (name, payload) in enumerate(APP_EVENTS):
            oracle.event(name, payload)
            if i + 1 < len(APP_EVENTS):
                pred = oracle.predict(1)
                if pred is not None and pred.terminal is not None:
                    total += 1
                    expected = oracle.registry.lookup(
                        __import__("repro").Event(*APP_EVENTS[i + 1])
                    )
                    correct += pred.terminal == expected
        assert total > 0
        assert correct / total > 0.9

    def test_duration_prediction(self, recorded):
        oracle = Pythia(recorded)
        for name, payload in APP_EVENTS[:8]:
            oracle.event(name, payload)
        eta = oracle.predict_duration(1)
        assert eta == pytest.approx(0.001, rel=0.2)

    def test_unknown_event_makes_oracle_lost(self, recorded):
        oracle = Pythia(recorded)
        oracle.event("MPI_Isend", 1)
        oracle.event("never_seen_before")
        assert oracle.predict(1) is None
        assert oracle.stats()["unknown"] == 1

    def test_describe(self, recorded):
        oracle = Pythia(recorded)
        assert "lost" in oracle.describe(None)
        oracle.event("MPI_Isend", 1)
        text = oracle.describe(oracle.predict(1))
        assert text.startswith("<")

    def test_finish_in_predict_mode_returns_none(self, recorded):
        oracle = Pythia(recorded)
        run_app(oracle)
        assert oracle.finish() is None

    def test_unknown_thread_rejected(self, recorded):
        oracle = Pythia(recorded)
        with pytest.raises(KeyError):
            oracle.event("MPI_Isend", 1, thread=7)


class TestObservabilityFacade:
    @pytest.fixture
    def recorded(self, tmp_trace_path):
        oracle = Pythia(tmp_trace_path)
        run_app(oracle)
        oracle.finish()
        return tmp_trace_path

    def test_explain_agrees_with_predict(self, recorded):
        oracle = Pythia(recorded)
        for name, payload in APP_EVENTS[:50]:
            oracle.event(name, payload)
        pred = oracle.predict(3)
        expl = oracle.explain(3)
        assert expl.terminal == pred.terminal
        assert expl.probability == pred.probability
        # names resolve through the facade's registry
        obj = expl.to_obj(oracle.registry.name)
        assert obj["events"][0]["name"]

    def test_explain_in_record_mode_is_none(self, tmp_trace_path):
        oracle = Pythia(tmp_trace_path)
        assert oracle.explain(1) is None

    def test_enable_drift_attaches_to_every_thread(self, recorded):
        oracle = Pythia(recorded)
        monitor = oracle.enable_drift(flight=32)
        assert monitor is not None
        assert oracle.enable_drift() is monitor  # idempotent
        for name, payload in APP_EVENTS[:40]:
            oracle.event(name, payload)
        pred = oracle._predictor(0)
        assert pred.drift is monitor
        assert pred.flight is not None
        assert pred.flight.capacity == 32
        assert oracle.drift_report()["state"] == "ok"
        assert any(e["kind"] == "run" for e in oracle.flight_journal())

    def test_enable_drift_in_record_mode_is_none(self, tmp_trace_path):
        oracle = Pythia(tmp_trace_path)
        assert oracle.enable_drift() is None
        assert oracle.drift_report() == {}
        assert oracle.flight_journal() == []

    def test_drift_divergence_visible_through_facade(self, recorded, tmp_path):
        oracle = Pythia(recorded)
        oracle.enable_drift(dump_dir=str(tmp_path))
        for name, payload in APP_EVENTS:
            oracle.event(name, payload)
        for i in range(64):
            oracle.event(f"hostile_{i}")
        report = oracle.drift_report()
        assert report["state"] == "diverged"
        assert list(tmp_path.glob("flight-*.jsonl"))  # auto-dumped

    def test_watchers_do_not_change_predictions(self, recorded):
        bare = Pythia(recorded)
        watched = Pythia(recorded)
        watched.enable_drift()
        for name, payload in APP_EVENTS[:80]:
            assert bare.event(name, payload) == watched.event(name, payload)
            assert bare.predict(2) == watched.predict(2)
        assert bare.stats() == watched.stats()
