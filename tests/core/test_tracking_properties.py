"""Property-based tests for PYTHIA-PREDICT tracking.

The central soundness property: replaying the *reference stream itself*
through the tracker keeps it synchronized — every event after the first
is expected, and distance-1 predictions are correct except where the
grammar is genuinely ambiguous (which cannot happen when tracking from
the start with exact iteration knowledge... except at trace end).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.predict import PythiaPredict
from tests.conftest import freeze, random_structured_stream

events = st.integers(min_value=0, max_value=5)


@given(st.integers(min_value=0, max_value=5_000))
@settings(max_examples=40, deadline=None)
def test_self_replay_stays_synchronized(seed):
    seq = random_structured_stream(seed, max_len=250)
    fg = freeze(seq)
    p = PythiaPredict(fg)
    expected_flags = [p.observe(ev) for ev in seq]
    # the first observation is a mid-stream attach (False); afterwards
    # the reference stream must always be expected
    assert all(expected_flags[1:]), "tracker lost sync on its own reference"


@given(st.integers(min_value=0, max_value=5_000))
@settings(max_examples=30, deadline=None)
def test_distance1_predictions_dominate_on_self_replay(seed):
    seq = random_structured_stream(seed, max_len=200)
    if len(seq) < 20:
        return
    fg = freeze(seq)
    p = PythiaPredict(fg)
    correct = total = 0
    for i, ev in enumerate(seq[:-1]):
        p.observe(ev)
        if i >= 10:  # warmed up
            pred = p.predict(1)
            if pred is not None and pred.terminal is not None:
                total += 1
                correct += pred.terminal == seq[i + 1]
    if total:
        assert correct / total > 0.55  # strictly better than ignorance


@given(st.lists(events, min_size=2, max_size=80))
@settings(max_examples=60, deadline=None)
def test_candidate_weights_remain_normalized(seq):
    fg = freeze(seq)
    p = PythiaPredict(fg)
    for ev in seq:
        p.observe(ev)
        if p.candidates:
            total = sum(p.candidates.values())
            assert abs(total - 1.0) < 1e-6


@given(st.lists(events, min_size=2, max_size=60), st.integers(min_value=1, max_value=10))
@settings(max_examples=40, deadline=None)
def test_prediction_distribution_is_a_distribution(seq, distance):
    fg = freeze(seq)
    p = PythiaPredict(fg)
    p.observe(seq[0])
    pred = p.predict(distance)
    if pred is not None:
        assert abs(sum(pred.distribution.values()) - 1.0) < 1e-6
        assert 0.0 < pred.probability <= 1.0 + 1e-9
        assert pred.terminal in pred.distribution


@given(st.lists(events, min_size=1, max_size=60))
@settings(max_examples=40, deadline=None)
def test_unknown_event_never_crashes(seq):
    fg = freeze(seq)
    p = PythiaPredict(fg)
    for ev in seq[: len(seq) // 2]:
        p.observe(ev)
    p.observe(999)  # never-seen event
    assert p.lost
    # and it can recover
    p.observe(seq[0])
    assert not p.lost


@given(st.integers(min_value=0, max_value=1_000), st.sampled_from([2, 8, 64]))
@settings(max_examples=20, deadline=None)
def test_candidate_cap_is_respected(seed, cap):
    seq = random_structured_stream(seed, max_len=150)
    fg = freeze(seq)
    p = PythiaPredict(fg, max_candidates=cap)
    for ev in seq:
        p.observe(ev)
        assert len(p.candidates) <= cap
