"""Unit tests for the on-disk trace format."""

from __future__ import annotations

import json

import pytest

from repro.core.events import Event, EventRegistry
from repro.core.record import PythiaRecord
from repro.core.trace_file import (
    FORMAT_VERSION,
    Trace,
    TraceFormatError,
    load_trace,
)
from tests.conftest import A, B, C


def make_trace(*, timestamps=False, threads=1, meta=None) -> Trace:
    reg = EventRegistry()
    for name in ("MPI_Send", "MPI_Recv", "MPI_Barrier"):
        reg.intern(Event(name))
    trace = Trace(registry=reg, meta=meta or {"app": "unit-test"})
    for tid in range(threads):
        rec = PythiaRecord(reg, record_timestamps=timestamps)
        t = 0.0
        for ev in [A, B, A, B, C] * 6:
            t += 0.5
            rec.record(ev, t if timestamps else None)
        trace.threads[tid] = rec.finish()
    return trace


class TestRoundTrip:
    @pytest.mark.parametrize("suffix", ["trace.pythia", "trace.pythia.gz"])
    def test_save_load(self, tmp_path, suffix):
        path = tmp_path / suffix
        trace = make_trace(timestamps=True)
        trace.save(path)
        restored = Trace.load(path)
        assert restored.grammar.unfold() == trace.grammar.unfold()
        assert restored.meta == trace.meta
        assert restored.event_count == trace.event_count
        assert restored.registry.lookup(Event("MPI_Send")) == 0

    def test_multi_thread_roundtrip(self, tmp_path):
        path = tmp_path / "mt.pythia"
        trace = make_trace(threads=4)
        trace.save(path)
        restored = load_trace(path)
        assert set(restored.threads) == {0, 1, 2, 3}
        for tid in range(4):
            assert restored.thread(tid).grammar.unfold() == trace.thread(tid).grammar.unfold()

    def test_timing_preserved(self, tmp_path):
        path = tmp_path / "t.pythia"
        trace = make_trace(timestamps=True)
        trace.save(path)
        restored = load_trace(path)
        assert restored.timing is not None
        assert len(restored.timing) == len(trace.timing)

    def test_no_timing_is_none(self, tmp_path):
        path = tmp_path / "t.pythia"
        trace = make_trace(timestamps=False)
        trace.save(path)
        assert load_trace(path).timing is None

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "t.pythia"
        make_trace().save(path)
        assert not (tmp_path / "t.pythia.tmp").exists()


class TestValidation:
    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError):
            load_trace(path)

    def test_rejects_wrong_version(self, tmp_path):
        trace = make_trace()
        obj = trace.to_obj()
        obj["version"] = FORMAT_VERSION + 1
        path = tmp_path / "bad.pythia"
        path.write_text(json.dumps(obj))
        with pytest.raises(ValueError):
            load_trace(path)

    def test_truncated_gzip_raises_trace_format_error(self, tmp_path):
        path = tmp_path / "trunc.pythia.gz"
        make_trace().save(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # cut the stream short
        with pytest.raises(TraceFormatError) as exc:
            load_trace(path)
        assert str(path) in str(exc.value)

    def test_not_gzip_at_all_raises_trace_format_error(self, tmp_path):
        path = tmp_path / "fake.pythia.gz"
        path.write_text("plain text, no gzip magic")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_invalid_json_raises_trace_format_error(self, tmp_path):
        path = tmp_path / "bad.pythia"
        path.write_text('{"format": "pythia-trace", "version": 1, ')
        with pytest.raises(TraceFormatError) as exc:
            load_trace(path)
        assert str(path) in str(exc.value)

    def test_non_object_json_raises_trace_format_error(self, tmp_path):
        path = tmp_path / "list.pythia"
        path.write_text("[1, 2, 3]")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_future_version_rejected_explicitly(self, tmp_path):
        obj = make_trace().to_obj()
        obj["version"] = FORMAT_VERSION + 7
        path = tmp_path / "future.pythia"
        path.write_text(json.dumps(obj))
        with pytest.raises(TraceFormatError) as exc:
            load_trace(path)
        assert "newer" in str(exc.value)
        assert str(FORMAT_VERSION + 7) in str(exc.value)

    def test_malformed_threads_section_raises_trace_format_error(self, tmp_path):
        obj = make_trace().to_obj()
        obj["threads"] = {"0": {"grammar": "nonsense"}}
        path = tmp_path / "mangled.pythia"
        path.write_text(json.dumps(obj))
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_trace_format_error_is_a_value_error(self):
        # existing `except ValueError` callers keep working
        assert issubclass(TraceFormatError, ValueError)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        # auto mode distinguishes absent (record) from corrupt (raise)
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "absent.pythia")

    def test_single_thread_accessors_require_single_thread(self):
        trace = make_trace(threads=2)
        with pytest.raises(ValueError):
            _ = trace.grammar

    def test_aggregate_counters(self):
        trace = make_trace(threads=3)
        assert trace.event_count == 3 * 30
        assert trace.rule_count == sum(
            t.grammar.rule_count for t in trace.threads.values()
        )


class TestDurability:
    """save_trace under concurrency and crashes (the bugs were real:
    a fixed ``.tmp`` name let two writers clobber each other's staging
    file, and an unsynced write could surface a partial trace)."""

    def test_tmp_name_is_per_writer_unique(self, tmp_path, monkeypatch):
        """Two concurrent writers must never share a staging path."""
        import repro.core.trace_file as tf

        seen = []
        real_open = open

        def spying_open(path, mode="r", *args, **kwargs):
            if str(path).endswith(".tmp"):
                seen.append(str(path))
            return real_open(path, mode, *args, **kwargs)

        monkeypatch.setattr("builtins.open", spying_open)
        path = tmp_path / "t.pythia"
        tf.save_trace(make_trace(), path)
        tf.save_trace(make_trace(), path)
        assert len(seen) == 2 and seen[0] != seen[1]
        assert all(s.startswith(f"{path}.") for s in seen)

    def test_concurrent_writers_leave_a_complete_trace(self, tmp_path):
        import threading

        from repro.core.trace_file import save_trace

        path = tmp_path / "t.pythia"
        traces = [make_trace(threads=n + 1) for n in range(4)]
        errors = []

        def write(trace):
            try:
                for _ in range(8):
                    save_trace(trace, path)
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(t,)) for t in traces]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # whoever won, the visible file is one writer's complete trace
        assert len(load_trace(path).threads) in (1, 2, 3, 4)
        leftovers = [p for p in tmp_path.iterdir() if p.name.endswith(".tmp")]
        assert leftovers == []

    def test_crash_before_rename_leaves_old_trace_visible(self, tmp_path, monkeypatch):
        """Kill between write and rename: no partial trace, old one intact."""
        import os as _os

        from repro.core.trace_file import save_trace

        path = tmp_path / "t.pythia"
        save_trace(make_trace(threads=1), path)
        before = path.read_bytes()

        def crash(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(_os, "replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            save_trace(make_trace(threads=2), path)
        monkeypatch.undo()
        assert path.read_bytes() == before  # old trace untouched
        assert len(load_trace(path).threads) == 1
        leftovers = [p for p in tmp_path.iterdir() if p.name.endswith(".tmp")]
        assert leftovers == []  # staging file unlinked on failure

    def test_failure_mid_write_unlinks_tmp(self, tmp_path, monkeypatch):
        import os as _os

        from repro.core import trace_file

        def failing_fsync(fd):
            raise OSError("disk full")

        monkeypatch.setattr(_os, "fsync", failing_fsync)
        with pytest.raises(OSError, match="disk full"):
            trace_file.save_trace(make_trace(), tmp_path / "t.pythia")
        assert list(tmp_path.iterdir()) == []

    @pytest.mark.parametrize("suffix", ["t.pythia", "t.pythia.gz"])
    def test_fsynced_write_roundtrips(self, tmp_path, suffix):
        from repro.core.trace_file import save_trace

        path = tmp_path / suffix
        trace = make_trace(timestamps=True)
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.to_obj() == trace.to_obj()
