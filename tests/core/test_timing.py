"""Unit tests for duration estimation (§II-C, Fig 6)."""

from __future__ import annotations

import pytest

from repro.core.predict import PythiaPredict
from repro.core.record import PythiaRecord
from repro.core.timing import TimingTable
from tests.conftest import A, B, C, D, freeze


def record_with_times(seq, dts):
    """Record ``seq`` where event i arrives dts[i] after event i-1."""
    rec = PythiaRecord(record_timestamps=True)
    t = 0.0
    for ev, dt in zip(seq, dts):
        t += dt
        rec.record(ev, t)
    return rec.finish()


class TestReplayConstruction:
    def test_replay_builds_table(self):
        seq = [A, B] * 20
        tt = record_with_times(seq, [1.0] * len(seq))
        assert tt.timing is not None
        assert len(tt.timing) > 0

    def test_constant_delays_recovered(self):
        seq = [A, B] * 20
        tt = record_with_times(seq, [1.0] * len(seq))
        p = PythiaPredict(tt.grammar, tt.timing)
        p.observe(A)
        p.observe(B)
        pred = p.predict(1, with_time=True)
        assert pred.eta == pytest.approx(1.0, rel=0.05)

    def test_per_event_delays_recovered(self):
        # a arrives 1s after previous, b 2s, c 3s
        base = [A, B, C]
        seq = base * 20
        dts = [float(ev + 1) for ev in seq]
        tt = record_with_times(seq, dts)
        p = PythiaPredict(tt.grammar, tt.timing)
        for ev in seq[:7]:  # a b c a b c a -> next is b (dt 2) then c (dt 3)
            p.observe(ev)
        pred1 = p.predict(1, with_time=True)
        assert pred1.terminal == B
        assert pred1.eta == pytest.approx(2.0, rel=0.05)
        pred2 = p.predict(2, with_time=True)
        assert pred2.terminal == C
        assert pred2.eta == pytest.approx(5.0, rel=0.05)

    def test_timestamp_count_mismatch_rejected(self):
        fg = freeze([A, B, C])
        with pytest.raises(ValueError):
            TimingTable.from_replay(fg, [0.0, 1.0])  # 3 events, 2 stamps

    def test_empty_trace(self):
        fg = freeze([])
        table = TimingTable.from_replay(fg, [])
        assert len(table) == 0


class TestContextSensitivity:
    """Fig 6: deeper progress-sequence suffixes give tighter estimates."""

    def test_context_distinguishes_durations(self):
        # Fig 6's own setting: in the trace "abcabdababc" the occurrences
        # of b split into two progress-sequence contexts — "B A b" (a c
        # follows) and "A b" (anything else follows).  Make the
        # c-context b's slow (5s) and the others fast (1s): with full
        # tracking the oracle must produce *both* estimates, i.e. it uses
        # the grammar path as context rather than one global average.
        seq = [A, B, C, A, B, D, A, B, A, B, C]
        dts = []
        for i, ev in enumerate(seq):
            slow = ev == B and i + 1 < len(seq) and seq[i + 1] == C
            dts.append(5.0 if slow else 1.0)
        # repeat the whole pattern so rules form and averages stabilise
        reps = 6
        tt = record_with_times(seq * reps, dts * reps)
        etas = []
        p = PythiaPredict(tt.grammar, tt.timing)
        full = seq * reps
        for i, ev in enumerate(full[:-1]):
            p.observe(ev)
            if full[i + 1] == B:
                pred = p.predict(1, with_time=True)
                if pred is not None and pred.eta is not None:
                    etas.append(pred.eta)
        assert etas, "no b-predictions made"
        # both fast and slow estimates must appear: context is being used
        assert min(etas) < 2.5
        assert max(etas) > 2.5

    def test_iteration_occurrences_share_context(self):
        # Occurrences folded into one exponent (a b)^3 share a single
        # grammar position, hence one average — the documented trade-off
        # of the exponent extension (contrast with the path-context test
        # above).
        seq = []
        dts = []
        for _rep in range(10):
            for i in range(3):
                seq += [A, B]
                dts += [1.0, 5.0 if i == 2 else 1.0]
            seq += [C]
            dts += [1.0]
        tt = record_with_times(seq, dts)
        p = PythiaPredict(tt.grammar, tt.timing)
        etas = set()
        for i, ev in enumerate(seq[:-1]):
            p.observe(ev)
            if seq[i + 1] == B:
                pred = p.predict(1, with_time=True)
                if pred is not None and pred.eta is not None:
                    etas.add(round(pred.eta, 6))
        # all b-steps report the blended mean (1+1+5)/3
        assert len(etas) == 1
        assert next(iter(etas)) == pytest.approx((1.0 + 1.0 + 5.0) / 3)

    def test_estimate_falls_back_to_shallow_suffix(self):
        seq = [A, B] * 10
        tt = record_with_times(seq, [1.0] * len(seq))
        table = tt.timing
        # a bogus deep chain still resolves through its shallow suffix
        positions = tt.grammar.terminal_positions[B]
        rid, idx = positions[0]
        deep_chain = ((rid, idx, 0), (99, 99, 0))
        assert table.estimate(deep_chain) == pytest.approx(1.0)

    def test_unknown_chain_has_no_estimate(self):
        seq = [A, B] * 10
        tt = record_with_times(seq, [1.0] * len(seq))
        assert tt.timing.estimate(((123, 0, 0),)) is None


class TestSerialization:
    def test_roundtrip(self):
        seq = ([A, B] * 5 + [C]) * 4
        tt = record_with_times(seq, [float(e + 1) for e in seq])
        table = tt.timing
        restored = TimingTable.from_obj(table.to_obj())
        assert len(restored) == len(table)
        # spot-check every key
        for key in table._sums:
            assert restored.mean(key) == pytest.approx(table.mean(key))
            assert restored.count(key) == table.count(key)


class TestRecorderTimestampValidation:
    def test_requires_timestamps_when_enabled(self):
        rec = PythiaRecord(record_timestamps=True)
        with pytest.raises(ValueError):
            rec.record(A)

    def test_rejects_decreasing_timestamps(self):
        rec = PythiaRecord(record_timestamps=True)
        rec.record(A, 1.0)
        with pytest.raises(ValueError):
            rec.record(B, 0.5)

    def test_timestamps_optional_when_disabled(self):
        rec = PythiaRecord()
        rec.record(A)
        tt = rec.finish()
        assert tt.timing is None
