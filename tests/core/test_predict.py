"""Unit tests for PYTHIA-PREDICT tracking and lookahead (§II-B, §II-C)."""

from __future__ import annotations

import pytest

from repro.core.predict import PythiaPredict
from tests.conftest import A, B, C, D, freeze, random_structured_stream


def track_and_score(seq, ref=None, distance=1):
    """Replay ``seq`` against a grammar of ``ref`` (default: seq itself);
    return (correct, total) prediction counts at ``distance``."""
    fg = freeze(ref if ref is not None else seq)
    p = PythiaPredict(fg)
    correct = total = 0
    for i, ev in enumerate(seq):
        p.observe(ev)
        if i + distance < len(seq):
            pred = p.predict(distance)
            if pred is not None and pred.terminal is not None:
                total += 1
                correct += pred.terminal == seq[i + distance]
    return correct, total


class TestPaperTrackingExample:
    """§II-B1 walk-through on the Fig 1 grammar (trace ``abbcbcab``)."""

    def test_start_midstream_on_b(self, fig1_frozen):
        p = PythiaPredict(fig1_frozen)
        p.observe(B)
        # 2 grammar positions hold b (4 trace occurrences)
        assert len(p.candidates) == 2

    def test_c_narrows_to_bc_occurrences(self, fig1_frozen):
        p = PythiaPredict(fig1_frozen)
        p.observe(B)
        p.observe(C)
        # only the occurrences of b followed by c survive (sequence B)
        assert len(p.candidates) == 1

    def test_first_observation_returns_false(self, fig1_frozen):
        p = PythiaPredict(fig1_frozen)
        assert p.observe(B) is False  # mid-stream attach: not "expected"
        assert p.observe(C) is True

    def test_lost_on_unknown_event(self, fig1_frozen):
        p = PythiaPredict(fig1_frozen)
        p.observe(B)
        p.observe(99)
        assert p.lost
        assert p.predict(1) is None
        assert p.stats()["unknown"] == 1

    def test_recovers_after_unknown_event(self, fig1_frozen):
        p = PythiaPredict(fig1_frozen)
        p.observe(99)
        assert p.lost
        p.observe(B)
        assert not p.lost


class TestWeightedCandidateNarrowing:
    """§II-B deep-dive: the *weights* of the candidate set during a
    mid-stream attach and after unexpected-event recovery (the paper's
    example: four occurrences of ``b``, reduced after a ``c``)."""

    def test_attach_weight_split_over_grammar_positions(self, fig1_frozen):
        # abbcbcab reduces to S -> R1 R2 R2 R1 with R1=ab, R2=bc; the
        # two grammar positions of b carry two trace occurrences each,
        # so the attach weights are an even 0.5/0.5
        p = PythiaPredict(fig1_frozen)
        p.observe(B)
        assert sorted(p.candidates.values()) == pytest.approx([0.5, 0.5])

    def test_attach_distribution_mixes_both_continuations(self, fig1_frozen):
        # from R2's b the next event is c (weight 0.5); from R1's b the
        # execution continues with b (first use) or ends (last use)
        p = PythiaPredict(fig1_frozen)
        p.observe(B)
        pred = p.predict(1)
        assert pred.distribution[C] == pytest.approx(0.5)
        assert pred.distribution[B] == pytest.approx(0.25)
        assert pred.distribution[None] == pytest.approx(0.25)
        assert sum(pred.distribution.values()) == pytest.approx(1.0)
        assert pred.terminal == C and pred.probability == pytest.approx(0.5)

    def test_narrowing_keeps_weights_normalized(self, fig1_frozen):
        p = PythiaPredict(fig1_frozen)
        p.observe(B)
        p.observe(C)  # only the bc occurrences survive
        assert len(p.candidates) == 1
        assert sum(p.candidates.values()) == pytest.approx(1.0)

    def test_narrowed_position_still_ambiguous_on_iteration(self, fig1_frozen):
        # after b c the tracker knows it sits in R2 but not *which* use:
        # the next event is b (first use) or a (second use), evenly
        p = PythiaPredict(fig1_frozen)
        p.observe(B)
        p.observe(C)
        pred = p.predict(1)
        assert pred.distribution == {B: pytest.approx(0.5), A: pytest.approx(0.5)}

    def test_unexpected_event_restarts_with_weighted_candidates(self, fig1_frozen):
        # follow a b exactly, then feed c where b was expected: the
        # tracker restarts from the c occurrences instead of crashing
        p = PythiaPredict(fig1_frozen)
        p.observe(A)
        assert p.observe(B) is True
        assert p.observe(C) is False  # unexpected
        assert p.stats()["unexpected"] == 1
        assert not p.lost
        assert sum(p.candidates.values()) == pytest.approx(1.0)

    def test_recovery_after_unexpected_narrows_to_certainty(self, fig1_frozen):
        p = PythiaPredict(fig1_frozen)
        p.observe(A)
        p.observe(B)
        p.observe(C)  # unexpected, restarts on c
        assert p.observe(B) is True  # c -> b only happens mid-trace
        pred = p.predict(1)
        assert pred.terminal == C
        assert pred.probability == pytest.approx(1.0)

    def test_midstream_attach_converges_to_exact_tracking(self):
        # a longer loop: attach in the middle, and after one full period
        # the tracker predicts the loop exactly
        seq = [A, B, C, D] * 20
        p = PythiaPredict(freeze(seq))
        for ev in [C, D, A, B, C, D]:  # attach at an offset
            p.observe(ev)
        for expect in [A, B, C, D] * 3:
            pred = p.predict(1)
            assert pred is not None and pred.terminal == expect
            assert p.observe(expect) is True

    def test_lost_then_reattach_counts_every_phase(self, fig1_frozen):
        p = PythiaPredict(fig1_frozen)
        p.observe(B)
        p.observe(99)  # unknown: lost
        assert p.lost and p.predict(4) is None
        p.observe(C)  # known again: weighted re-attach
        assert not p.lost
        stats = p.stats()
        assert stats["observed"] == 3
        assert stats["unknown"] == 1
        assert stats["candidates"] == len(p.candidates) > 0


class TestDeterministicPrediction:
    def test_perfect_prediction_on_loop(self):
        seq = [A, B, C] * 30
        correct, total = track_and_score(seq, distance=1)
        # after the first couple of events everything is predictable
        assert correct >= total - 3
        assert total > 80

    def test_long_distance_on_loop(self):
        seq = [A, B, C] * 30
        correct, total = track_and_score(seq, distance=9)  # multiple of period
        assert correct >= total - 3

    def test_prediction_probability_is_one_when_certain(self):
        fg = freeze([A, B, C] * 30)
        p = PythiaPredict(fg)
        for ev in [A, B, C, A, B]:
            p.observe(ev)
        pred = p.predict(1)
        assert pred.terminal == C
        assert pred.probability > 0.9

    def test_distribution_sums_to_one(self, fig1_frozen):
        p = PythiaPredict(fig1_frozen)
        p.observe(B)
        pred = p.predict(1)
        assert sum(pred.distribution.values()) == pytest.approx(1.0)

    def test_predict_sequence_length(self):
        fg = freeze([A, B, C] * 30)
        p = PythiaPredict(fg)
        p.observe(A)
        preds = p.predict_sequence(5)
        assert len(preds) == 5

    def test_predict_requires_positive_distance(self, fig1_frozen):
        p = PythiaPredict(fig1_frozen)
        p.observe(B)
        with pytest.raises(ValueError):
            p.predict(0)

    def test_end_prediction(self):
        seq = [A, B, C, D, A, B, C, D]
        fg = freeze(seq)
        p = PythiaPredict(fg)
        for ev in seq:
            p.observe(ev)
        pred = p.predict(1)
        # beyond the reference trace: END competes with looping again;
        # either answer is legitimate but END must appear in the mix
        assert None in pred.distribution or pred.terminal is not None


class TestToleranceToUnexpectedEvents:
    """§II-B2 and §III-E: wrong events restart tracking, not crash it."""

    def test_unexpected_known_event_restarts(self):
        seq = [A, B, C] * 10
        fg = freeze(seq)
        p = PythiaPredict(fg)
        p.observe(A)
        p.observe(B)
        assert p.observe(A) is False  # expected C
        assert p.stats()["unexpected"] == 1
        assert not p.lost  # restarted on the a occurrences

    def test_tracking_resyncs_after_glitch(self):
        seq = [A, B, C] * 20
        fg = freeze(seq)
        p = PythiaPredict(fg)
        stream = seq[:10] + [D] + seq[10:]
        correct = total = 0
        for i, ev in enumerate(stream):
            p.observe(ev)
            if 12 <= i < len(stream) - 1:
                pred = p.predict(1)
                if pred is not None:
                    total += 1
                    correct += pred.terminal == stream[i + 1]
        assert total > 0
        assert correct / total > 0.9

    def test_error_rate_degrades_gracefully(self):
        import random

        rng = random.Random(7)
        seq = ([A, B] * 4 + [C]) * 20
        fg = freeze(seq)
        accs = []
        for err in (0.0, 0.3):
            p = PythiaPredict(fg)
            correct = total = 0
            for i, ev in enumerate(seq):
                if rng.random() < err:
                    p.observe(99)  # unknown garbage event
                p.observe(ev)
                if i + 1 < len(seq):
                    pred = p.predict(1)
                    if pred is not None:
                        total += 1
                        correct += pred.terminal == seq[i + 1]
            accs.append(correct / max(total, 1))
        assert accs[0] > accs[1] or accs[0] > 0.95


class TestCrossWorkingSet:
    """Record on a small working set, predict a larger one (Fig 8)."""

    def test_more_iterations_still_predictable(self):
        small = ([A, B, C] * 10) + [D]
        large = ([A, B, C] * 40) + [D]
        correct, total = track_and_score(large, ref=small, distance=1)
        # only the loop exit is mispredicted
        assert correct / total > 0.9

    def test_loop_boundary_misprediction(self):
        # LU/MG behaviour: iteration count differs with working set, so
        # predictions that cross the loop boundary degrade with distance
        small = (([A, B] * 5) + [D]) * 4
        large = (([A, B] * 50) + [D]) * 4
        c1, t1 = track_and_score(large, ref=small, distance=1)
        c12, t12 = track_and_score(large, ref=small, distance=12)
        assert t1 > 0 and t12 > 0
        assert c1 / t1 >= c12 / t12

    def test_structured_streams_generalize(self):
        for seed in range(5):
            seq = random_structured_stream(seed, max_len=300)
            if len(seq) < 40:
                continue
            correct, total = track_and_score(seq, distance=1)
            assert total == 0 or correct / total > 0.5


class TestCandidatePruning:
    def test_candidate_cap_respected(self):
        import random

        rng = random.Random(3)
        seq = [rng.randrange(3) for _ in range(300)]
        fg = freeze(seq)
        p = PythiaPredict(fg, max_candidates=8)
        for ev in seq[:100]:
            p.observe(ev)
            assert len(p.candidates) <= 8

    def test_weights_always_normalized(self):
        seq = ([A, B] * 4 + [C]) * 10
        fg = freeze(seq)
        p = PythiaPredict(fg)
        for ev in seq:
            p.observe(ev)
            if p.candidates:
                assert sum(p.candidates.values()) == pytest.approx(1.0)
