"""The compiled-artifact format: round trips, staleness, stampedes.

The multi-worker daemon's zero-copy grammar sharing rests on three
properties proved here:

- an artifact round-trips *exactly*: every table of the mapped grammar
  equals the ``FrozenGrammar`` it was compiled from, key order included
  (prediction arithmetic iterates these dicts, so order is part of
  byte-identity);
- staleness is detected through the source trace's ``(mtime_ns, size)``
  signature — a rewritten trace never serves a stale grammar;
- when N loaders race on a cold trace, exactly one compiles while the
  rest block on the artifact lock and map the finished file.
"""

from __future__ import annotations

import os
import struct
import threading

import pytest

from repro.core.events import EventRegistry
from repro.core.mmap_grammar import (
    ARTIFACT_SUFFIX,
    ArtifactFormatError,
    MmapGrammar,
    artifact_is_fresh,
    artifact_path_for,
    compile_artifact,
    ensure_artifact,
    load_artifact,
)
from repro.core.record import PythiaRecord
from repro.core.trace_file import Trace, load_trace, save_trace
from tests.conftest import random_structured_stream

SEEDS = [1, 2, 7, 42]


def write_trace_file(path, stream, *, timestamps=False) -> Trace:
    """Record ``stream`` (ints) into a JSON trace file at ``path``."""
    registry = EventRegistry()
    for t in range(max(stream) + 1):
        registry.intern_name(f"ev{t}", (t,))
    rec = PythiaRecord(registry, record_timestamps=timestamps)
    for i, t in enumerate(stream):
        rec.record(t, timestamp=float(i) * 0.25 if timestamps else None)
    trace = Trace(registry=registry, threads={0: rec.finish()}, meta={"k": "v"})
    save_trace(trace, path)
    return trace


def assert_same_tables(mapped, frozen) -> None:
    """Every table equal, *in order* — order feeds determinism."""
    assert isinstance(mapped, MmapGrammar)
    assert list(mapped.bodies) == list(frozen.bodies)
    assert dict(mapped.bodies) == dict(frozen.bodies)
    assert mapped.occ == frozen.occ
    assert dict(mapped.uses) == dict(frozen.uses)
    assert list(mapped.terminal_positions) == list(frozen.terminal_positions)
    assert dict(mapped.terminal_positions) == dict(frozen.terminal_positions)
    assert mapped.trace_len == frozen.trace_len


class TestRoundTrip:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_tables_identical(self, tmp_path, seed):
        path = str(tmp_path / "t.json")
        write_trace_file(path, random_structured_stream(seed))
        artifact = compile_artifact(path)
        assert artifact == path + ARTIFACT_SUFFIX
        original = load_trace(path)
        mapped = load_artifact(artifact)
        assert mapped.meta == original.meta
        assert mapped.registry.to_obj() == original.registry.to_obj()
        assert set(mapped.threads) == set(original.threads)
        for tid, tt in original.threads.items():
            assert mapped.threads[tid].event_count == tt.event_count
            assert_same_tables(mapped.threads[tid].grammar, tt.grammar)

    def test_timing_table_round_trips(self, tmp_path):
        path = str(tmp_path / "t.json")
        write_trace_file(path, random_structured_stream(5), timestamps=True)
        mapped = load_artifact(compile_artifact(path))
        original = load_trace(path)
        got, want = mapped.threads[0].timing, original.threads[0].timing
        assert want is not None
        assert got.to_obj() == want.to_obj()

    def test_lazy_decode_is_per_key_and_cached(self, tmp_path):
        path = str(tmp_path / "t.json")
        write_trace_file(path, random_structured_stream(2))
        grammar = load_artifact(compile_artifact(path)).threads[0].grammar
        stats = grammar.decode_stats()
        assert stats["bodies_decoded"] == 0
        first_rid = next(iter(grammar.bodies))
        row = grammar.bodies[first_rid]
        assert grammar.decode_stats()["bodies_decoded"] == 1
        assert grammar.bodies[first_rid] is row  # cached, not re-decoded
        # membership answers without materialising anything new
        assert first_rid in grammar.bodies
        assert 10**9 not in grammar.bodies
        assert grammar.decode_stats()["bodies_decoded"] == 1

    def test_artifact_dir_redirect(self, tmp_path, monkeypatch):
        art_dir = tmp_path / "artifacts"
        art_dir.mkdir()
        monkeypatch.setenv("PYTHIA_ARTIFACT_DIR", str(art_dir))
        path = str(tmp_path / "t.json")
        write_trace_file(path, [0, 1, 0, 1])
        artifact, outcome = ensure_artifact(path)
        assert outcome == "compiled"
        assert os.path.dirname(artifact) == str(art_dir)
        assert artifact == artifact_path_for(path)


class TestFreshness:
    def test_reuse_then_invalidate_on_rewrite(self, tmp_path):
        path = str(tmp_path / "t.json")
        write_trace_file(path, random_structured_stream(1))
        artifact, outcome = ensure_artifact(path)
        assert outcome == "compiled"
        assert ensure_artifact(path) == (artifact, "reused")
        # rewrite the source: different bytes, bumped mtime
        os.utime(path, ns=(0, 0))
        assert not artifact_is_fresh(
            artifact, (os.stat(path).st_mtime_ns, os.stat(path).st_size)
        )
        _, outcome = ensure_artifact(path)
        assert outcome == "compiled"

    def test_load_rejects_stale_signature(self, tmp_path):
        path = str(tmp_path / "t.json")
        write_trace_file(path, [0, 1, 2, 0, 1, 2])
        artifact, _ = ensure_artifact(path)
        with pytest.raises(ArtifactFormatError, match="stale"):
            load_artifact(artifact, expected_signature=(1, 2))

    def test_missing_trace_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ensure_artifact(str(tmp_path / "nope.json"))


class TestCorruption:
    def _artifact(self, tmp_path):
        path = str(tmp_path / "t.json")
        write_trace_file(path, random_structured_stream(3))
        return compile_artifact(path)

    def test_not_an_artifact(self, tmp_path):
        bogus = tmp_path / "bogus.pygx"
        bogus.write_bytes(b"this is definitely not a grammar artifact file at all!!!")
        with pytest.raises(ArtifactFormatError, match="not a pythia"):
            load_artifact(str(bogus))

    def test_empty_file(self, tmp_path):
        empty = tmp_path / "empty.pygx"
        empty.write_bytes(b"")
        with pytest.raises(ArtifactFormatError, match="empty"):
            load_artifact(str(empty))

    def test_unsupported_version(self, tmp_path):
        artifact = self._artifact(tmp_path)
        blob = bytearray(open(artifact, "rb").read())
        blob[7] = 0x7F  # bump the version byte
        open(artifact, "wb").write(bytes(blob))
        with pytest.raises(ArtifactFormatError, match="version"):
            load_artifact(artifact)

    def test_truncated_body(self, tmp_path):
        artifact = self._artifact(tmp_path)
        blob = open(artifact, "rb").read()
        open(artifact, "wb").write(blob[: len(blob) - 32])
        with pytest.raises(ArtifactFormatError, match="truncated"):
            load_artifact(artifact)

    def test_garbage_meta_blob(self, tmp_path):
        artifact = self._artifact(tmp_path)
        blob = bytearray(open(artifact, "rb").read())
        header = struct.Struct("<8sqQQII")
        fields = list(header.unpack_from(blob, 0))
        start = header.size
        for i in range(fields[3]):  # scribble over the JSON meta blob
            blob[start + i] = 0xFE
        open(artifact, "wb").write(bytes(blob))
        with pytest.raises(ArtifactFormatError, match="corrupt"):
            load_artifact(artifact)


class TestStampede:
    def test_concurrent_loaders_compile_once(self, tmp_path):
        """flock is per open-file-description, so in-process threads
        contend exactly like separate worker processes do."""
        path = str(tmp_path / "t.json")
        write_trace_file(path, random_structured_stream(8))
        barrier = threading.Barrier(4)
        outcomes: list[str] = []
        lock = threading.Lock()

        def loader():
            barrier.wait()
            artifact, outcome = ensure_artifact(path)
            trace = load_artifact(artifact)
            assert 0 in trace.threads
            with lock:
                outcomes.append(outcome)

        threads = [threading.Thread(target=loader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes.count("compiled") == 1
        assert len(outcomes) == 4
        assert set(outcomes) <= {"compiled", "waited", "reused"}

    def test_force_recompiles_fresh_artifact(self, tmp_path):
        path = str(tmp_path / "t.json")
        write_trace_file(path, [0, 0, 1, 1])
        artifact, _ = ensure_artifact(path)
        before = os.stat(artifact).st_ino
        _, outcome = ensure_artifact(path, force=True)
        assert outcome == "compiled"
        assert os.stat(artifact).st_ino != before  # rewritten atomically
