"""Unit tests for progress sequences (§II-B, Figs 4–6)."""

from __future__ import annotations

import pytest

from repro.core.progress import (
    END,
    advance_exact,
    chain_is_complete,
    descend,
    initial_chain,
    start_chains,
    successors,
    suffix_key,
    terminal_of,
)
from tests.conftest import A, B, C, D, freeze


class TestInitialChainAndReplay:
    def test_initial_chain_points_at_first_terminal(self, fig1_frozen, fig1_sequence):
        ch = initial_chain(fig1_frozen)
        assert terminal_of(fig1_frozen, ch) == fig1_sequence[0]
        assert chain_is_complete(ch)

    def test_exact_replay_walks_whole_trace(self, fig1_frozen, fig1_sequence):
        ch = initial_chain(fig1_frozen)
        walked = [terminal_of(fig1_frozen, ch)]
        for _ in range(len(fig1_sequence) - 1):
            ch = advance_exact(fig1_frozen, ch)
            walked.append(terminal_of(fig1_frozen, ch))
        assert walked == fig1_sequence
        # one more step falls off the end of the trace
        assert advance_exact(fig1_frozen, ch) == END

    @pytest.mark.parametrize(
        "seq",
        [
            [A],
            [A, A, A],
            [A, B] * 10,
            ([A, B] * 3 + [C]) * 4 + [D],
            [A, B, C, A, B, D, A, B, A, B, C],  # Fig 4's trace
        ],
    )
    def test_exact_replay_generic(self, seq):
        fg = freeze(seq)
        ch = initial_chain(fg)
        walked = [terminal_of(fg, ch)]
        for _ in range(len(seq) - 1):
            ch = advance_exact(fg, ch)
            walked.append(terminal_of(fg, ch))
        assert walked == seq

    def test_empty_trace(self):
        fg = freeze([])
        assert initial_chain(fg) == END


class TestFig4ProgressSequence:
    """Fig 4: in the grammar of ``abcabdababc``, the fourth occurrence of
    ``a`` is reached by a path terminal -> A -> B -> root."""

    def test_fourth_a_path(self):
        seq = [A, B, C, A, B, D, A, B, A, B, C]
        fg = freeze(seq)
        ch = initial_chain(fg)
        seen_a = 1 if terminal_of(fg, ch) == A else 0
        for _ in range(len(seq) - 1):
            ch = advance_exact(fg, ch)
            if terminal_of(fg, ch) == A:
                seen_a += 1
                if seen_a == 4:
                    break
        assert seen_a == 4
        # the chain is a genuine multi-level path ending at the root
        assert len(ch) >= 2
        assert chain_is_complete(ch)


class TestStartChains:
    def test_start_on_b_has_all_occurrence_positions(self, fig1_frozen):
        # §II-B example: the reference trace abbcbcab has 4 occurrences
        # of b, spread over 2 distinct grammar positions
        chains = start_chains(fig1_frozen, B)
        assert len(chains) == 2
        total_occ = sum(
            fig1_frozen.position_occurrences(c[0][0], c[0][1]) for c, _w in chains
        )
        assert total_occ == 4

    def test_weights_normalized(self, fig1_frozen):
        chains = start_chains(fig1_frozen, B)
        assert sum(w for _c, w in chains) == pytest.approx(1.0)

    def test_unknown_terminal_gives_nothing(self, fig1_frozen):
        assert start_chains(fig1_frozen, 99) == []

    def test_partial_chains_are_single_step(self, fig1_frozen):
        for chain, _w in start_chains(fig1_frozen, B):
            assert len(chain) == 1


class TestSuccessors:
    def test_weights_conserved(self, fig1_frozen):
        for chain, w in start_chains(fig1_frozen, B):
            succ = successors(fig1_frozen, chain, w)
            assert sum(sw for _c, sw in succ) == pytest.approx(w)

    def test_terminal_repetition_branches(self):
        # trace a^4 b: from "somewhere inside the a-run" both another a
        # and the b exit are possible
        fg = freeze([A, A, A, A, B])
        chains = start_chains(fg, A)
        assert len(chains) == 1
        chain, w = chains[0]
        succ = successors(fg, chain, w)
        nexts = {terminal_of(fg, c) for c, _w in succ if c is not END}
        assert nexts == {A, B}
        # staying in the run is 3x more likely than leaving (exp 4)
        stay = sum(sw for c, sw in succ if c is not END and terminal_of(fg, c) == A)
        leave = sum(sw for c, sw in succ if c is not END and terminal_of(fg, c) == B)
        assert stay == pytest.approx(3 * leave)

    def test_loop_boundary_branches_on_unknown_iteration(self):
        # ((ab)^5 c)-style loop: after a b with unknown iteration, both
        # "a again" (loop) and "c" (exit) are possible
        seq = [A, B] * 5 + [C] + [A, B] * 5 + [C]
        fg = freeze(seq)
        # find the b through observation: start at b
        chains = start_chains(fg, B)
        succ = []
        for chain, w in chains:
            succ.extend(successors(fg, chain, w))
        nexts = {terminal_of(fg, c) for c, _w in succ if c is not END}
        assert A in nexts and C in nexts

    def test_end_of_trace(self):
        fg = freeze([A, B, C])
        ch = initial_chain(fg)
        ch = advance_exact(fg, ch)
        ch = advance_exact(fg, ch)
        assert terminal_of(fg, ch) == C
        succ = successors(fg, ch)
        assert succ == [(END, 1.0)]

    def test_successor_of_end_is_end(self, fig1_frozen):
        assert successors(fig1_frozen, END) == [(END, 1.0)]


class TestDescend:
    def test_descend_reaches_first_terminal(self, fig1_frozen):
        ch = descend(fig1_frozen, 0, 0)
        assert terminal_of(fig1_frozen, ch) == A
        # every level's iteration starts at 0
        assert all(it == 0 for _r, _i, it in ch)

    def test_descend_respects_top_iteration(self, fig1_frozen):
        ch = descend(fig1_frozen, 0, 0, it=None)
        assert ch[-1][2] is None
        if len(ch) > 1:
            assert all(it == 0 for _r, _i, it in ch[:-1])


class TestSuffixKey:
    def test_suffix_key_strips_iterations(self):
        chain = ((1, 0, 3), (0, 2, None))
        assert suffix_key(chain) == ((1, 0), (0, 2))
        assert suffix_key(chain, 1) == ((1, 0),)

    def test_longer_chain_prefix(self):
        chain = ((5, 1, 0), (2, 0, 1), (0, 3, 0))
        assert suffix_key(chain, 2) == ((5, 1), (2, 0))
