"""Property-based tests (hypothesis) for the grammar engine.

The two load-bearing properties of §II-A:

1. the grammar is lossless — unfolding recovers exactly the appended
   sequence, for *any* sequence;
2. the three paper invariants hold after every append.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.frozen import FrozenGrammar
from repro.core.grammar import Grammar
from tests.conftest import random_structured_stream

events = st.integers(min_value=0, max_value=6)
sequences = st.lists(events, min_size=0, max_size=200)


@given(sequences)
@settings(max_examples=200, deadline=None)
def test_unfold_roundtrip(seq):
    g = Grammar()
    g.extend(seq)
    assert g.unfold() == seq


@given(st.lists(events, min_size=0, max_size=60))
@settings(max_examples=100, deadline=None)
def test_invariants_after_every_append(seq):
    g = Grammar()
    for t in seq:
        g.append(t)
        g.check_invariants()


@given(
    st.lists(events, min_size=1, max_size=8),
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=100, deadline=None)
def test_looped_streams(body, reps, outer):
    """Loop-structured streams (the HPC case) stay lossless and legal."""
    seq = (body * reps) * outer
    g = Grammar()
    g.extend(seq)
    g.check_invariants()
    assert g.unfold() == seq


@given(st.lists(events, min_size=1, max_size=8), st.integers(min_value=2, max_value=50))
@settings(max_examples=60, deadline=None)
def test_loop_compresses(body, reps):
    """A repeated body must compress: rules stay tiny vs. the trace."""
    seq = body * reps
    g = Grammar()
    g.extend(seq)
    # the grammar never stores more symbol uses than a small multiple of
    # the distinct structure; certainly far fewer than the trace length
    total_uses = sum(len(rule) for rule in g.rules.values())
    assert total_uses <= len(set(body)) * 8 + len(body) * 4


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_structured_random_streams(seed):
    seq = random_structured_stream(seed)
    g = Grammar()
    g.extend(seq)
    g.check_invariants()
    assert g.unfold() == seq


@given(sequences)
@settings(max_examples=100, deadline=None)
def test_freeze_preserves_sequence(seq):
    g = Grammar()
    g.extend(seq)
    fg = FrozenGrammar.from_grammar(g)
    assert fg.unfold() == seq
    assert fg.trace_len == len(seq)


@given(sequences)
@settings(max_examples=100, deadline=None)
def test_frozen_occurrence_counts_match_bruteforce(seq):
    g = Grammar()
    g.extend(seq)
    fg = FrozenGrammar.from_grammar(g)
    unfolded = fg.unfold()
    # every terminal position's occurrence count must match a brute count
    for terminal, positions in fg.terminal_positions.items():
        total = sum(fg.position_occurrences(rid, idx) for rid, idx in positions)
        assert total == unfolded.count(terminal)
