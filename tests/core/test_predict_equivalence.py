"""Compiled vs reference tracker: byte-identical, not approximately equal.

The property the whole successor machine rests on: a tracker running on
the memoized machine (``compiled=True``, the default) and one running
the uncached traversal (``compiled=False``) perform the *same* float
operations, so every observation result, every candidate weight, every
prediction (probability, distribution, eta) and the final ``stats()``
report compare equal with ``==`` — across randomized seeded traces,
mid-stream attach, unexpected events, unknown events and resyncs.
"""

from __future__ import annotations

import pytest

from repro.core.predict import PythiaPredict
from repro.core.timing import TimingTable
from tests.conftest import freeze, random_structured_stream

SEEDS = [1, 2, 3, 5, 8, 13, 21, 42]


def _pair(fg, timing=None, **kw):
    return (
        PythiaPredict(fg, timing, compiled=True, **kw),
        PythiaPredict(fg, timing, compiled=False, **kw),
    )


def _assert_locked(compiled, reference):
    assert compiled.candidates == reference.candidates
    # chain weights exactly equal, not merely close
    for chain, w in compiled.candidates.items():
        assert reference.candidates[chain] == w


def _drive(compiled, reference, stream, *, predict_every=7, distances=(1, 3, 16)):
    for i, terminal in enumerate(stream):
        got = compiled.observe(terminal, now=float(i))
        want = reference.observe(terminal, now=float(i))
        assert got == want
        _assert_locked(compiled, reference)
        if i % predict_every == 0:
            for distance in distances:
                assert compiled.predict(distance) == reference.predict(distance)


class TestObservePredictEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_in_sync_from_start(self, seed):
        stream = random_structured_stream(seed)
        fg = freeze(stream)
        compiled, reference = _pair(fg)
        _drive(compiled, reference, stream)
        assert compiled.stats() == reference.stats()

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("offset_frac", [0.25, 0.5, 0.9])
    def test_mid_stream_attach(self, seed, offset_frac):
        stream = random_structured_stream(seed)
        fg = freeze(stream)
        compiled, reference = _pair(fg)
        offset = int(len(stream) * offset_frac)
        _drive(compiled, reference, stream[offset:])
        assert compiled.stats() == reference.stats()

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_unexpected_and_unknown_events(self, seed):
        stream = list(random_structured_stream(seed, alphabet=4))
        fg = freeze(stream)
        # splice in out-of-order and never-recorded terminals
        stream[len(stream) // 3] = stream[-1]
        stream.insert(len(stream) // 2, 4)  # alphabet=4 -> terminal 4 unknown
        compiled, reference = _pair(fg)
        for i, terminal in enumerate(stream):
            if terminal >= 4:
                assert compiled.observe_unknown(now=float(i)) == reference.observe_unknown(
                    now=float(i)
                )
            else:
                assert compiled.observe(terminal, now=float(i)) == reference.observe(
                    terminal, now=float(i)
                )
            _assert_locked(compiled, reference)
            assert compiled.predict(1) == reference.predict(1)
        assert compiled.stats() == reference.stats()

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_predict_sequence_and_fused(self, seed):
        stream = random_structured_stream(seed)
        fg = freeze(stream)
        compiled, reference = _pair(fg)
        for i, terminal in enumerate(stream):
            got = compiled.observe_and_predict(terminal, 4, now=float(i))
            want_m = reference.observe(terminal, now=float(i))
            want_p = reference.predict(4)
            assert got == (want_m, want_p)
            if i % 11 == 0:
                assert compiled.predict_sequence(8) == reference.predict_sequence(8)
        assert compiled.stats() == reference.stats()

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_with_timing_table(self, seed):
        stream = random_structured_stream(seed)
        fg = freeze(stream)
        timing = TimingTable.from_replay(fg, [float(i) * 0.5 for i in range(len(stream))])
        compiled, reference = _pair(fg, timing)
        for i, terminal in enumerate(stream):
            assert compiled.observe(terminal) == reference.observe(terminal)
            pred_c = compiled.predict(2, with_time=True)
            pred_r = reference.predict(2, with_time=True)
            assert pred_c == pred_r
            if pred_c is not None:
                assert pred_c.eta == pred_r.eta  # byte-identical floats
        assert compiled.stats() == reference.stats()

    def test_small_candidate_cap_prunes_identically(self):
        stream = random_structured_stream(3)
        fg = freeze(stream)
        compiled, reference = _pair(fg, max_candidates=3)
        offset = len(stream) // 2
        _drive(compiled, reference, stream[offset:], distances=(1, 2))
        assert compiled.pruned == reference.pruned
        assert compiled.stats() == reference.stats()

    def test_shared_machine_across_trackers_stays_equivalent(self):
        """Two compiled trackers share one warm cache; both stay exact."""
        stream = random_structured_stream(9)
        fg = freeze(stream)
        first, _ = _pair(fg)
        for t in stream:
            first.observe(t)
        # second tracker starts on the already-warm machine
        compiled, reference = _pair(fg)
        assert compiled.machine is first.machine
        _drive(compiled, reference, stream)
        assert compiled.stats() == reference.stats()


class TestExplainEquivalence:
    """explain() must agree with predict() — and with itself — on both
    traversal paths: same events, same probabilities, same floats."""

    @staticmethod
    def _assert_explains_prediction(tracker, distance):
        pred = tracker.predict(distance)
        expl = tracker.explain(distance, top_k=64)
        if pred is None:
            assert expl is None
            return None
        assert expl.terminal == pred.terminal
        assert expl.probability == pred.probability
        assert {e.terminal: e.probability for e in expl.events} == pred.distribution
        return expl

    @pytest.mark.parametrize("seed", SEEDS)
    def test_compiled_and_reference_explanations_identical(self, seed):
        stream = random_structured_stream(seed)
        fg = freeze(stream)
        compiled, reference = _pair(fg)
        for i, terminal in enumerate(stream):
            compiled.observe(terminal)
            reference.observe(terminal)
            if i % 5 == 0:
                for distance in (1, 4):
                    ec = self._assert_explains_prediction(compiled, distance)
                    er = self._assert_explains_prediction(reference, distance)
                    if ec is None:
                        assert er is None
                        continue
                    assert ec.path == "compiled" and er.path == "reference"
                    # identical except the traversal-provenance fields
                    # (path, and deterministic — the single-successor
                    # fast path only exists on the compiled machine)
                    oc, orf = ec.to_obj(), er.to_obj()
                    assert oc.pop("path") == "compiled"
                    assert orf.pop("path") == "reference"
                    oc.pop("deterministic")
                    orf.pop("deterministic")
                    assert oc == orf
        assert compiled.stats() == reference.stats()

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_explain_never_perturbs_equivalence(self, seed):
        """Interleaving explain() calls on one side only must not change
        a single float of the other comparisons."""
        stream = random_structured_stream(seed)
        fg = freeze(stream)
        compiled, reference = _pair(fg)
        for i, terminal in enumerate(stream):
            assert compiled.observe(terminal) == reference.observe(terminal)
            if i % 3 == 0:
                compiled.explain(2, top_k=2)  # compiled side only
            _assert_locked(compiled, reference)
            assert compiled.predict(1) == reference.predict(1)
        assert compiled.stats() == reference.stats()

    def test_explanations_identical_through_resync(self):
        stream = list(random_structured_stream(5, alphabet=4))
        fg = freeze(stream)
        stream.insert(len(stream) // 2, 4)  # unknown terminal mid-stream
        compiled, reference = _pair(fg)
        for terminal in stream:
            if terminal >= 4:
                compiled.observe_unknown()
                reference.observe_unknown()
            else:
                compiled.observe(terminal)
                reference.observe(terminal)
            ec = self._assert_explains_prediction(compiled, 1)
            er = self._assert_explains_prediction(reference, 1)
            assert (ec is None) == (er is None)
            if ec is not None:
                assert ec.events == er.events


class TestMmapEquivalence:
    """The mmap-artifact load path against the JSON load path.

    The multi-worker daemon serves every prediction from an
    :class:`~repro.core.mmap_grammar.MmapGrammar` mapped out of a
    compiled artifact, so the two load paths must agree to the last
    float: same observations, same candidate weights, same predictions
    and explanations, same ``stats()``.
    """

    @staticmethod
    def _grammars(tmp_path, seed, *, timestamps=False):
        from repro.core.mmap_grammar import ensure_artifact, load_artifact
        from repro.core.trace_file import load_trace
        from tests.core.test_mmap_grammar import write_trace_file

        stream = random_structured_stream(seed)
        path = str(tmp_path / f"trace-{seed}.json")
        write_trace_file(path, stream, timestamps=timestamps)
        artifact, _ = ensure_artifact(path)
        json_tt = load_trace(path).threads[0]
        mmap_tt = load_artifact(artifact).threads[0]
        return stream, json_tt, mmap_tt

    @pytest.mark.parametrize("seed", SEEDS)
    def test_predictions_byte_identical(self, tmp_path, seed):
        stream, json_tt, mmap_tt = self._grammars(tmp_path, seed)
        from_json = PythiaPredict(json_tt.grammar, compiled=True)
        from_mmap = PythiaPredict(mmap_tt.grammar, compiled=True)
        for i, terminal in enumerate(stream):
            assert from_mmap.observe(terminal, now=float(i)) == from_json.observe(
                terminal, now=float(i)
            )
            assert from_mmap.candidates == from_json.candidates
            for distance in (1, 3, 16):
                assert from_mmap.predict(distance) == from_json.predict(distance)
        assert from_mmap.stats() == from_json.stats()

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_explanations_byte_identical(self, tmp_path, seed):
        stream, json_tt, mmap_tt = self._grammars(tmp_path, seed)
        from_json = PythiaPredict(json_tt.grammar, compiled=True)
        from_mmap = PythiaPredict(mmap_tt.grammar, compiled=True)
        for i, terminal in enumerate(stream):
            from_json.observe(terminal)
            from_mmap.observe(terminal)
            if i % 5 == 0:
                for distance in (1, 4):
                    ej = from_json.explain(distance, top_k=64)
                    em = from_mmap.explain(distance, top_k=64)
                    assert (ej is None) == (em is None)
                    if ej is not None:
                        assert em.to_obj() == ej.to_obj()

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_eta_byte_identical_with_timing(self, tmp_path, seed):
        stream, json_tt, mmap_tt = self._grammars(tmp_path, seed, timestamps=True)
        assert mmap_tt.timing is not None
        from_json = PythiaPredict(json_tt.grammar, json_tt.timing, compiled=True)
        from_mmap = PythiaPredict(mmap_tt.grammar, mmap_tt.timing, compiled=True)
        for terminal in stream:
            assert from_mmap.observe(terminal) == from_json.observe(terminal)
            pj = from_json.predict(2, with_time=True)
            pm = from_mmap.predict(2, with_time=True)
            assert pm == pj
            if pj is not None:
                assert pm.eta == pj.eta
        assert from_mmap.stats() == from_json.stats()

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_mmap_also_matches_reference_traversal(self, tmp_path, seed):
        """Transitivity check run directly: mapped grammar + uncached
        traversal still equals the JSON compiled path."""
        stream, json_tt, mmap_tt = self._grammars(tmp_path, seed)
        from_json = PythiaPredict(json_tt.grammar, compiled=True)
        from_mmap = PythiaPredict(mmap_tt.grammar, compiled=False)
        _drive(from_mmap, from_json, stream)
        assert from_mmap.stats() == from_json.stats()
