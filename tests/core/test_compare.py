"""Unit tests for trace comparison / divergence detection."""

from __future__ import annotations

from repro.core.compare import Divergence, follow, similarity
from tests.conftest import A, B, C, D, freeze

class TestIdenticalRuns:
    def test_self_replay_matches_fully(self):
        seq = ([A, B, C] * 10 + [D]) * 3
        fg = freeze(seq)
        report = follow(fg, seq)
        # only the initial attach is unmatched
        assert report.matched == report.total - 1
        assert report.divergences == []
        assert similarity(fg, seq) > 0.97

    def test_summary_format(self):
        fg = freeze([A, B] * 10)
        text = follow(fg, [A, B] * 10).summary()
        assert "events matched" in text


class TestDivergences:
    def test_unknown_event_reported(self):
        seq = [A, B, C] * 10
        fg = freeze(seq)
        stream = seq[:5] + [99] + seq[5:]
        report = follow(fg, stream)
        kinds = [d.kind for d in report.divergences]
        assert "unknown" in kinds
        div = next(d for d in report.divergences if d.kind == "unknown")
        assert div.index == 5
        assert div.got == 99

    def test_unexpected_known_event_reported(self):
        seq = [A, B, C] * 10
        fg = freeze(seq)
        stream = seq[:6] + [A] + seq[6:]  # A where C was due
        report = follow(fg, stream)
        assert any(d.kind == "unexpected" for d in report.divergences)
        div = report.divergences[0]
        assert div.expected is not None  # the tracker knew what it wanted

    def test_max_divergences_stops_early(self):
        fg = freeze([A, B] * 10)
        noisy = [A, C, A, C, A, C, A, C]  # constant divergence
        report = follow(fg, noisy, max_divergences=2)
        assert len(report.divergences) == 2
        assert report.total <= len(noisy)

    def test_similarity_orders_streams(self):
        seq = ([A, B] * 8 + [C]) * 5
        fg = freeze(seq)
        import random

        rng = random.Random(1)
        light = [t if rng.random() > 0.05 else D for t in seq]
        heavy = [t if rng.random() > 0.5 else D for t in seq]
        assert similarity(fg, seq) > similarity(fg, light) > similarity(fg, heavy)


class TestEdgeCases:
    def test_empty_stream(self):
        fg = freeze([A, B])
        report = follow(fg, [])
        assert report.total == 0
        assert report.match_fraction == 1.0

    def test_single_event(self):
        fg = freeze([A, B])
        report = follow(fg, [A])
        assert report.total == 1
        assert report.divergences == []

    def test_completely_foreign_stream(self):
        fg = freeze([A, B] * 5)
        report = follow(fg, [C, D, C, D])
        assert report.matched == 0
        assert all(d.kind == "unknown" for d in report.divergences)
