"""Unit tests for the event model and registry."""

from __future__ import annotations

import pytest

from repro.core.events import Event, EventRegistry


class TestEvent:
    def test_equality_by_value(self):
        assert Event("MPI_Send", 3) == Event("MPI_Send", 3)
        assert Event("MPI_Send", 3) != Event("MPI_Send", 4)
        assert Event("MPI_Send") != Event("MPI_Recv")

    def test_hashable(self):
        s = {Event("MPI_Send", 1), Event("MPI_Send", 1), Event("MPI_Recv", 1)}
        assert len(s) == 2

    def test_str(self):
        assert str(Event("MPI_Barrier")) == "MPI_Barrier"
        assert str(Event("MPI_Send", 3)) == "MPI_Send(3)"


class TestEventRegistry:
    def test_intern_is_idempotent(self):
        reg = EventRegistry()
        e1 = reg.intern(Event("MPI_Send", 1))
        e2 = reg.intern(Event("MPI_Send", 1))
        assert e1 == e2
        assert len(reg) == 1

    def test_ids_are_dense_and_ordered(self):
        reg = EventRegistry()
        ids = [reg.intern(Event(f"ev{i}")) for i in range(10)]
        assert ids == list(range(10))

    def test_lookup_does_not_allocate(self):
        reg = EventRegistry()
        assert reg.lookup(Event("missing")) is None
        assert len(reg) == 0

    def test_event_roundtrip(self):
        reg = EventRegistry()
        ev = Event("GOMP_parallel", ("region", 7))
        eid = reg.intern(ev)
        assert reg.event(eid) == ev

    def test_intern_name_shorthand(self):
        reg = EventRegistry()
        assert reg.intern_name("MPI_Bcast", 0) == reg.intern(Event("MPI_Bcast", 0))

    def test_name_of_unknown_id(self):
        reg = EventRegistry()
        assert reg.name(42) == "?42"

    def test_contains(self):
        reg = EventRegistry()
        reg.intern(Event("x"))
        assert Event("x") in reg
        assert Event("y") not in reg

    @pytest.mark.parametrize(
        "payload", [None, 3, "dest", ("a", 1), -7]
    )
    def test_serialization_roundtrip(self, payload):
        reg = EventRegistry()
        reg.intern(Event("MPI_Send", payload))
        reg.intern(Event("MPI_Recv", 0))
        restored = EventRegistry.from_obj(reg.to_obj())
        assert len(restored) == len(reg)
        assert restored.lookup(Event("MPI_Send", payload)) == 0
        assert restored.lookup(Event("MPI_Recv", 0)) == 1

    def test_serialization_preserves_order(self):
        reg = EventRegistry()
        for i in range(20):
            reg.intern(Event("ev", i))
        restored = EventRegistry.from_obj(reg.to_obj())
        for i in range(20):
            assert restored.lookup(Event("ev", i)) == i

    def test_merged_names(self):
        reg = EventRegistry()
        reg.intern(Event("MPI_Wait"))
        names = reg.merged_names()
        assert names[0] == "MPI_Wait"
