"""Unit tests for the on-line grammar reduction (§II-A).

The worked examples of the paper (Figs 1–3) are encoded as exact test
cases; the rest covers the three invariants, exponent merging, rule reuse
and inlining, and structural edge cases.
"""

from __future__ import annotations

import pytest

from repro.core.grammar import Grammar, GrammarError
from repro.core.symbols import Rule
from tests.conftest import A, B, C, D, NAMES, build_grammar


def bodies_by_shape(g: Grammar) -> set[tuple]:
    """Rule bodies as shape tuples (symbol names erased for rules)."""
    out = set()
    for rule in g.rules.values():
        body = tuple(
            ("NT", n.exp) if isinstance(n.symbol, Rule) else (n.symbol, n.exp) for n in rule
        )
        out.add(body)
    return out


class TestAppendBasics:
    def test_empty_grammar(self):
        g = Grammar()
        assert len(g) == 0
        assert g.unfold() == []
        assert g.rule_count == 1  # just the root
        g.check_invariants()

    def test_single_event(self):
        g = build_grammar([A])
        assert g.unfold() == [A]
        assert g.root.body() == [(A, 1)]

    def test_repetition_merges_into_exponent(self):
        g = build_grammar([A, A, A, A])
        assert g.root.body() == [(A, 4)]
        assert g.unfold() == [A] * 4

    def test_two_distinct_events(self):
        g = build_grammar([A, B])
        assert g.root.body() == [(A, 1), (B, 1)]

    def test_rejects_negative_terminal(self):
        g = Grammar()
        with pytest.raises(TypeError):
            g.append(-1)

    def test_rejects_non_int(self):
        g = Grammar()
        with pytest.raises(TypeError):
            g.append("a")  # type: ignore[arg-type]

    def test_len_counts_terminals(self):
        seq = [A, B, A, B, A, A, A]
        g = build_grammar(seq)
        assert len(g) == len(seq)


class TestPaperFig1:
    """Fig 1: trace ``abbcbcab`` reduces to R -> A B^2 A, A -> ab, B -> bc."""

    def test_unfold_roundtrip(self, fig1_grammar, fig1_sequence):
        assert fig1_grammar.unfold() == fig1_sequence

    def test_rule_count(self, fig1_grammar):
        # root + two rules, as in the paper's figure
        assert fig1_grammar.rule_count == 3

    def test_grammar_shape(self, fig1_grammar):
        shapes = bodies_by_shape(fig1_grammar)
        assert ((A, 1), (B, 1)) in shapes  # A -> ab
        assert ((B, 1), (C, 1)) in shapes  # B -> bc
        # root: A B^2 A i.e. NT NT^2 NT
        assert (("NT", 1), ("NT", 2), ("NT", 1)) in shapes

    def test_invariants(self, fig1_grammar):
        fig1_grammar.check_invariants()


class TestPaperFig2:
    """Fig 2: a loop alternating two events reduces to R -> A^50, A -> ab."""

    def test_loop_structure(self):
        g = build_grammar([A, B] * 50)
        assert g.rule_count == 2
        assert g.root.body() == [(g.rules[1], 50)] or len(g.root.body()) == 1
        (sym, exp), = g.root.body()
        assert isinstance(sym, Rule) and exp == 50
        assert sym.body() == [(A, 1), (B, 1)]

    def test_unfold(self):
        seq = [A, B] * 50
        assert build_grammar(seq).unfold() == seq


class TestPaperFig3:
    """The worked example of Fig 3, step by step.

    Fig 3a's "Initial 1" grammar (with unspecified context ``...``) is
    built directly: ``R -> A d B e B b^5``, ``A -> b^3 c^2``,
    ``B -> b^2 A`` (the context ``A d ... e`` realises the hidden extra
    use of ``A`` that invariant 1 requires).  We then append ``c`` twice,
    checking the documented outcomes of step 1 (Fig 3c) and step 2
    (Fig 3h), including the creation and later inlining of ``C -> b^3 c``.
    """

    SPEC = {
        "R": [("A", 1), (D, 1), ("B", 1), (4, 1), ("B", 1), (B, 5)],
        "A": [(B, 3), (C, 2)],
        "B": [(B, 2), ("A", 1)],
    }

    def build(self):
        from tests.conftest import grammar_from_spec

        return grammar_from_spec(self.SPEC, ["R", "A", "B"])

    def test_initial_state_unfolds(self):
        g, rules = self.build()
        # A d B e B b^5 with A=b^3c^2, B=b^2 b^3 c^2
        expected = (
            [B] * 3 + [C] * 2 + [D]
            + [B] * 2 + [B] * 3 + [C] * 2 + [4]
            + [B] * 2 + [B] * 3 + [C] * 2 + [B] * 5
        )
        assert g.unfold() == expected

    def test_step1_creates_C_and_rewrites(self):
        g, rules = self.build()
        before = g.unfold()
        g.append(C)
        g.check_invariants()
        assert g.unfold() == before + [C]
        # Fig 3c: a new rule C -> b^3 c; A -> C c; root ends b^2 C
        shapes = bodies_by_shape(g)
        assert ((B, 3), (C, 1)) in shapes  # C -> b^3 c
        assert (("NT", 1), (C, 1)) in shapes  # A -> C c
        a = rules["A"]
        assert a.body()[1] == (C, 1)
        assert isinstance(a.body()[0][0], Rule)
        root_body = g.root.body()
        assert root_body[-2] == (B, 2)  # residual b^2
        assert root_body[-1][1] == 1  # ... followed by C^1

    def test_step2_reuses_A_and_B_then_inlines_C(self):
        g, rules = self.build()
        before = g.unfold()
        g.append(C)
        g.append(C)
        g.check_invariants()
        assert g.unfold() == before + [C, C]
        # Fig 3h: A -> b^3 c^2 restored, B -> b^2 A, root ends with B^2
        a, b_rule = rules["A"], rules["B"]
        assert a.body() == [(B, 3), (C, 2)]
        assert b_rule.body() == [(B, 2), (a, 1)]
        last = g.root.last
        assert last.symbol is b_rule and last.exp == 2
        # the temporary C rule is gone (inlined, Fig 3f)
        assert ((B, 3), (C, 1)) not in bodies_by_shape(g)
        assert g.rule_count == 3


class TestDigramUniqueness:
    def test_repeated_pair_factors(self):
        g = build_grammar([A, B, A, B])
        # one rule for "ab", used twice -> root is NT^2
        assert g.rule_count == 2
        (sym, exp), = g.root.body()
        assert exp == 2

    def test_partial_exponent_factoring(self):
        # b^3 c ... b^5 c: shared part is b^3 c, residue b^2 stays
        seq = [B] * 3 + [C] + [A] + [B] * 5 + [C]
        g = build_grammar(seq)
        g.check_invariants()
        assert g.unfold() == seq
        shapes = bodies_by_shape(g)
        assert ((B, 3), (C, 1)) in shapes
        # root carries the residual b^2 before the second use
        root_body = g.root.body()
        assert (B, 2) in root_body

    def test_triple_occurrence(self):
        seq = [A, B, C, A, B, C, A, B, C]
        g = build_grammar(seq)
        g.check_invariants()
        assert g.unfold() == seq
        (sym, exp), = g.root.body()
        assert exp == 3


class TestRuleUtility:
    def test_exponent_counts_as_usage(self):
        # (ab)^2 : rule used via exponent 2 only -> must be kept
        g = build_grammar([A, B, A, B])
        g.check_invariants()
        assert g.rule_count == 2

    def test_inlining_on_usage_drop(self):
        # From the Fig 3 walk-through: the temporary rule C -> b^3 c is
        # inlined when its usage drops to 1.
        seq = ([B] * 2 + [B] * 3 + [C] * 2) * 2 + [B] * 5 + [C, C]
        g = build_grammar(seq)
        for rule in g.rules.values():
            if rule is not g.root:
                assert rule.usage >= 2

    def test_no_dead_rules_referenced(self):
        for seed in range(10):
            import random

            rng = random.Random(seed)
            seq = [rng.randrange(3) for _ in range(200)]
            g = build_grammar(seq)
            g.check_invariants()


class TestUnfold:
    @pytest.mark.parametrize(
        "seq",
        [
            [],
            [A],
            [A, A],
            [A, B, C, D],
            [A, B] * 30,
            [A] * 100,
            [A, A, B, B, A, A, B, B],
            [A, B, C] * 7 + [D] + [A, B, C] * 7 + [D],
        ],
    )
    def test_roundtrip(self, seq):
        g = build_grammar(seq, check=True)
        assert g.unfold() == seq

    def test_deep_nesting(self):
        # nested repetition: ((ab)^3 c)^4 d twice
        inner = ([A, B] * 3 + [C]) * 4 + [D]
        seq = inner * 2
        g = build_grammar(seq)
        g.check_invariants()
        assert g.unfold() == seq


class TestDump:
    def test_dump_names(self, fig1_grammar):
        text = fig1_grammar.dump(NAMES.get)
        assert "R ->" in text
        assert "a b" in text or "b c" in text

    def test_dump_is_stable(self, fig1_grammar):
        assert fig1_grammar.dump() == fig1_grammar.dump()


class TestInvariantChecker:
    def test_detects_corrupted_usage(self, fig1_grammar):
        for rule in fig1_grammar.rules.values():
            if rule is not fig1_grammar.root:
                rule.usage += 1
                break
        with pytest.raises(GrammarError):
            fig1_grammar.check_invariants()

    def test_detects_duplicate_digram(self):
        g = build_grammar([A, B, C, D])
        # manually corrupt: register a fake digram duplicate
        g._digrams[("bogus", "pair")] = g.root.first
        with pytest.raises(GrammarError):
            g.check_invariants()
