"""Unit tests for grammar analytics."""

from __future__ import annotations

from repro.core.analysis import analyze, loop_structure, terminal_histogram
from tests.conftest import A, B, C, D, freeze

class TestAnalyze:
    def test_empty(self):
        stats = analyze(freeze([]))
        assert stats.trace_len == 0
        assert stats.depth == 0
        assert stats.rule_count == 1

    def test_fig1_stats(self, fig1_frozen):
        stats = analyze(fig1_frozen)
        assert stats.trace_len == 8
        assert stats.rule_count == 3
        assert stats.distinct_terminals == 3
        assert stats.depth == 2
        assert stats.max_exponent == 2

    def test_compression_grows_with_repetition(self):
        short = analyze(freeze([A, B] * 5))
        long = analyze(freeze([A, B] * 500))
        assert long.compression_ratio > short.compression_ratio * 10

    def test_depth_of_nested_loops(self):
        seq = (([A, B] * 3 + [C]) * 4 + [D]) * 2
        stats = analyze(freeze(seq))
        assert stats.depth >= 3

    def test_summary_mentions_counts(self, fig1_frozen):
        text = analyze(fig1_frozen).summary()
        assert "8 events" in text
        assert "3 rules" in text


class TestLoopStructure:
    def test_main_loop_tops_the_list(self):
        seq = [A, B] * 200 + [C]
        loops = loop_structure(freeze(seq))
        assert loops
        assert loops[0][2] == 200  # the big loop first

    def test_min_reps_filter(self, fig1_frozen):
        assert all(exp >= 3 for _r, _i, exp in loop_structure(fig1_frozen, min_reps=3))

    def test_straight_line_has_no_loops(self):
        assert loop_structure(freeze([A, B, C, D])) == []


class TestTerminalHistogram:
    def test_counts_match_trace(self, fig1_frozen, fig1_sequence):
        hist = terminal_histogram(fig1_frozen)
        for t in set(fig1_sequence):
            assert hist[t] == fig1_sequence.count(t)

    def test_large_trace_without_unfolding(self):
        seq = [A, B, B] * 10_000
        hist = terminal_histogram(freeze(seq))
        assert hist[A] == 10_000
        assert hist[B] == 20_000
