"""Unit tests for the frozen grammar snapshot."""

from __future__ import annotations

import pytest

from repro.core.frozen import ROOT, FrozenGrammar, decode_rule, encode_rule, is_rule_sym
from repro.core.grammar import GrammarError
from tests.conftest import A, B, C, D, freeze


class TestEncoding:
    def test_rule_encoding_roundtrip(self):
        for rid in range(10):
            sym = encode_rule(rid)
            assert is_rule_sym(sym)
            assert decode_rule(sym) == rid

    def test_terminals_are_not_rule_syms(self):
        assert not is_rule_sym(0)
        assert not is_rule_sym(42)


class TestFreeze:
    def test_fig1(self, fig1_frozen, fig1_sequence):
        assert fig1_frozen.unfold() == fig1_sequence
        assert fig1_frozen.rule_count == 3
        assert fig1_frozen.trace_len == len(fig1_sequence)

    def test_occurrence_counts_fig1(self, fig1_frozen):
        # R -> A B^2 A: both sub-rules expand twice
        occ = dict(fig1_frozen.occ)
        occ.pop(ROOT)
        assert sorted(occ.values()) == [2, 2]

    def test_terminal_positions_cover_all_terminals(self, fig1_frozen, fig1_sequence):
        assert set(fig1_frozen.terminal_positions) == set(fig1_sequence)

    def test_position_occurrences_sum_to_trace_counts(self, fig1_frozen, fig1_sequence):
        for t in set(fig1_sequence):
            total = sum(
                fig1_frozen.position_occurrences(rid, idx)
                for rid, idx in fig1_frozen.terminal_positions[t]
            )
            assert total == fig1_sequence.count(t)

    def test_nested_loops_occ(self):
        seq = ([A, B] * 3 + [C]) * 4
        fg = freeze(seq)
        assert fg.unfold() == seq
        # the a-b pair rule must expand 12 times
        ab_positions = fg.terminal_positions[A]
        total = sum(fg.position_occurrences(r, i) for r, i in ab_positions)
        assert total == 12

    def test_empty_trace(self):
        fg = freeze([])
        assert fg.unfold() == []
        assert fg.trace_len == 0
        assert fg.rule_count == 1

    def test_uses_index(self, fig1_frozen):
        for rid, uses in fig1_frozen.uses.items():
            if rid == ROOT:
                assert uses == ()
            else:
                for host, idx in uses:
                    sym, _exp = fig1_frozen.bodies[host][idx]
                    assert decode_rule(sym) == rid


class TestValidation:
    def test_missing_root_rejected(self):
        with pytest.raises(GrammarError):
            FrozenGrammar({1: ((A, 1),)})

    def test_bad_exponent_rejected(self):
        with pytest.raises(GrammarError):
            FrozenGrammar({ROOT: ((A, 0),)})

    def test_dangling_rule_ref_rejected(self):
        with pytest.raises(GrammarError):
            FrozenGrammar({ROOT: ((encode_rule(9), 1),)})

    def test_rule_cycle_rejected(self):
        with pytest.raises(GrammarError):
            FrozenGrammar(
                {
                    ROOT: ((encode_rule(1), 1),),
                    1: ((encode_rule(2), 1), (A, 1)),
                    2: ((encode_rule(1), 1), (B, 1)),
                }
            )

    def test_deep_rule_chain_freezes(self):
        # occurrence counting is a worklist pass, not a recursion: a
        # grammar nested far beyond the interpreter recursion limit
        # (R -> R1 -> R2 -> ... -> a) must freeze without blowing up
        depth = 3000
        bodies = {ROOT: ((encode_rule(1), 1),)}
        for rid in range(1, depth):
            bodies[rid] = ((encode_rule(rid + 1), 2),)
        bodies[depth] = ((A, 1),)
        fg = FrozenGrammar(bodies)
        assert fg.occ[1] == 1
        assert fg.occ[depth] == 2 ** (depth - 1)
        assert fg.rule_count == depth + 1


class TestSerialization:
    @pytest.mark.parametrize(
        "seq",
        [
            [A],
            [A, B] * 25,
            ([A, B, C] * 5 + [D]) * 3,
            [A, A, A, B, B, C],
        ],
    )
    def test_roundtrip(self, seq):
        fg = freeze(seq)
        restored = FrozenGrammar.from_obj(fg.to_obj())
        assert restored.bodies == fg.bodies
        assert restored.unfold() == seq
        assert restored.occ == fg.occ

    def test_dump_mentions_root(self, fig1_frozen):
        assert fig1_frozen.dump().startswith("R ->")
