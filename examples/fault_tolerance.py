#!/usr/bin/env python
"""Fault tolerance: an application rides out a daemon crash and restart.

The oracle daemon sits on the critical path of every interposed
runtime, so :class:`PythiaClient` must treat the daemon as a service
that *will* go away: it reconnects with capped exponential backoff,
replays a ring of recently observed events so the fresh daemon-side
tracker re-attaches mid-stream (§II-B2), and — when the daemon never
comes back — degrades to an in-process oracle instead of crashing the
host application.

This script:

1. records a reference trace of a small iterative solver;
2. starts an :class:`OracleServer` and an application that follows the
   reference run through a client, checking every prediction against
   an uninterrupted in-process oracle;
3. **kills the daemon abruptly mid-run** (what ``kill -9`` looks like
   from the client), waits a moment, restarts it — the client
   reconnects, resyncs, and every post-resync prediction still matches
   the in-process oracle byte for byte;
4. stops the daemon for good — the client switches to its local
   fallback and the application finishes with zero exceptions;
5. prints the fault-layer counters and the client's flight journal.

Run: ``python examples/fault_tolerance.py``
"""

from __future__ import annotations

import os
import tempfile
import time

from repro import Pythia
from repro.server import OracleServer, PythiaClient, RetryPolicy, TraceStore

#: one iteration of the "solver": halo exchange, compute, reduce
STEP = [
    ("post_recv", 1),
    ("post_send", 1),
    ("wait_halo", None),
    ("compute", None),
    ("allreduce", "SUM"),
]
ITERATIONS = 40


def record_reference(trace_path: str) -> None:
    oracle = Pythia(trace_path, mode="record")
    for _ in range(ITERATIONS):
        for name, payload in STEP:
            oracle.event(name, payload)
    trace = oracle.finish()
    print(f"recorded {trace.event_count} events -> {trace_path}")


def main() -> None:
    tmp = tempfile.mkdtemp(prefix="pythia-faults-")
    trace_path = os.path.join(tmp, "solver.pythia")
    socket_path = os.path.join(tmp, "oracle.sock")
    record_reference(trace_path)

    events = [(n, p) for _ in range(ITERATIONS) for n, p in STEP]
    reference = Pythia(trace_path, mode="predict")  # the uninterrupted run

    server = OracleServer(socket_path, store=TraceStore(capacity=4)).start()
    client = PythiaClient(
        trace_path,
        socket=socket_path,
        # fight for ~a second, then fall back to the in-process oracle
        retry=RetryPolicy(max_retries=8, backoff_base=0.02, backoff_cap=0.2),
        fallback="local",
    )

    crash_at, give_up_at = len(events) // 3, 2 * len(events) // 3
    agreements = 0
    for i, (name, payload) in enumerate(events):
        if i == crash_at:
            print(f"[{i:3}] daemon killed abruptly mid-run ...")
            server.stop()  # connections die mid-session, like kill -9
            time.sleep(0.05)
            server = OracleServer(
                socket_path, store=TraceStore(capacity=4)
            ).start()
            print(f"[{i:3}] ... and restarted on the same socket")
        if i == give_up_at:
            print(f"[{i:3}] daemon stopped for good")
            server.stop()
        expected = reference.event_and_predict(name, payload, distance=1)
        got = client.event_and_predict(name, payload, distance=1)
        agreements += got == expected

    print(f"\n{agreements}/{len(events)} events: client agreed with the "
          f"uninterrupted in-process oracle")
    print(f"fault layer: {client.fault_stats()}")
    print("flight journal (client side):")
    for entry in client.flight_journal():
        if entry.get("kind") == "note":
            detail = {k: v for k, v in entry.items()
                      if k not in ("seq", "t", "kind", "session", "message")}
            print(f"  {entry['message']}: {detail}")
    client.finish()


if __name__ == "__main__":
    main()
