#!/usr/bin/env python
"""Anatomy of a PYTHIA trace: grammars, progress sequences, timings.

A guided tour of the library's internals on the paper's own worked
examples: the Fig 1 grammar, the Fig 4/5 progress-sequence walk, and a
Fig 6-style context-sensitive duration lookup.

Run: ``python examples/trace_anatomy.py``
"""

from __future__ import annotations

from repro import Grammar, FrozenGrammar, PythiaPredict, PythiaRecord
from repro.core.progress import (
    advance_exact,
    initial_chain,
    terminal_of,
)

NAMES = {0: "a", 1: "b", 2: "c", 3: "d"}
A, B, C, D = 0, 1, 2, 3


def show(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def main() -> None:
    # ---- Fig 1: reduction of "abbcbcab" ----------------------------------
    show("Fig 1: the trace 'abbcbcab' as a grammar")
    g = Grammar()
    g.extend([A, B, B, C, B, C, A, B])
    print(g.dump(NAMES.get))
    print("unfolds back to:", "".join(NAMES[t] for t in g.unfold()))

    # ---- Fig 4/5: progress sequences --------------------------------------
    show("Figs 4/5: walking progress sequences on 'abcabdababc'")
    fg = FrozenGrammar.from_grammar(
        (lambda gr: (gr.extend([A, B, C, A, B, D, A, B, A, B, C]), gr)[1])(Grammar())
    )
    print(fg.dump(NAMES.get))
    chain = initial_chain(fg)
    walk = [terminal_of(fg, chain)]
    for _ in range(10):
        chain = advance_exact(fg, chain)
        walk.append(terminal_of(fg, chain))
    print("depth-first walk:", "".join(NAMES[t] for t in walk))
    print("final progress sequence (bottom-first rule/index/iteration):")
    for step in chain:
        print("   ", step)

    # ---- §II-B: attaching mid-stream --------------------------------------
    show("§II-B: attaching mid-stream on event 'b'")
    p = PythiaPredict(fg)
    p.observe(B)
    print(f"after 'b':  {len(p.candidates)} candidate positions")
    p.observe(C)
    print(f"after 'c':  {len(p.candidates)} candidate positions (narrowed)")
    pred = p.predict(1)
    print(f"next event: '{NAMES.get(pred.terminal, 'end')}' "
          f"with probability {pred.probability:.2f}")

    # ---- §II-C / Fig 6: context-sensitive durations ------------------------
    show("Fig 6: durations depend on the progress-sequence context")
    rec = PythiaRecord(record_timestamps=True)
    seq = [A, B, C, A, B, D, A, B, A, B, C] * 6
    t = 0.0
    for i, ev in enumerate(seq):
        # the b before a c is slow (5s), every other event takes 1s
        slow = ev == B and i + 1 < len(seq) and seq[i + 1] == C
        t += 5.0 if slow else 1.0
        rec.record(ev, t)
    tt = rec.finish()
    p2 = PythiaPredict(tt.grammar, tt.timing)
    etas = set()
    for i, ev in enumerate(seq[:-1]):
        p2.observe(ev)
        if seq[i + 1] == B:
            pred = p2.predict(1, with_time=True)
            if pred and pred.eta is not None:
                etas.add(round(pred.eta, 2))
    print("distinct estimates for the delay before 'b':", sorted(etas))
    print("(a context-free average would produce a single value)")


if __name__ == "__main__":
    main()
