#!/usr/bin/env python
"""Scaling out: a multi-worker oracle tier with sticky session routing.

One :class:`OracleServer` is GIL-bound — past one core's worth of
prediction work, adding sessions degrades aggregate throughput.  The
:class:`OracleSupervisor` runs N full oracle daemons as *processes*
behind one socket and routes each client session to a worker by
consistent hash of its session id, so reconnects always land where the
session's tracker and telemetry live.  Workers map one shared compiled
grammar artifact (``.pygx``) instead of each parsing the JSON trace.

This script:

1. records a reference trace of a small iterative solver;
2. starts an :class:`OracleSupervisor` with three workers
   (``pythia-trace serve --workers 3`` does the same from the shell);
3. runs six applications, each with its own session id, and shows the
   ring spreading them across workers — and a reconnect landing on the
   *same* worker (stickiness);
4. asks the supervisor for the merged ``sessions`` table (what
   ``pythia-trace sessions`` prints) to count sessions per worker, and
   for ``stats`` to show the single shared grammar artifact.

Run: ``python examples/multi_worker.py``
"""

from __future__ import annotations

import collections
import os
import socket
import tempfile

from repro import Pythia
from repro.server import OracleSupervisor, PythiaClient
from repro.server.protocol import read_frame, write_frame

STEP = [
    ("post_recv", 1),
    ("post_send", 1),
    ("wait_halo", None),
    ("compute", None),
    ("allreduce", "SUM"),
]
ITERATIONS = 30
WORKERS = 3
APPS = 6


def record_reference(trace_path: str) -> None:
    oracle = Pythia(trace_path, mode="record", meta={"app": "demo-solver"})
    for _ in range(ITERATIONS):
        for name, payload in STEP:
            oracle.event(name, payload)
    oracle.finish()


def admin(sock_path: str, request: dict) -> dict:
    """One supervisor-served request (what the CLI tools send)."""
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.connect(sock_path)
    try:
        write_frame(conn, request)
        return read_frame(conn)
    finally:
        conn.close()


def main() -> None:
    tmp = tempfile.mkdtemp(prefix="pythia-multiworker-")
    trace_path = os.path.join(tmp, "solver.pythia")
    sock_path = os.path.join(tmp, "oracle.sock")
    record_reference(trace_path)

    with OracleSupervisor(sock_path, workers=WORKERS, drain_deadline=2.0):
        print(f"supervisor up: {WORKERS} workers behind {sock_path}\n")

        # -- six applications, each its own session id ------------------
        homes = {}
        for i in range(APPS):
            sid = f"app-{i}"
            client = PythiaClient(trace_path, socket=sock_path, session_id=sid)
            for _ in range(5):
                for name, payload in STEP:
                    client.event(name, payload)
            prediction = client.predict(1)
            homes[sid] = client.worker
            print(f"  {sid}: worker {client.worker}, "
                  f"next={client.describe(prediction)}")
            client.close()

        # -- stickiness: a reconnect lands on the same worker -----------
        again = PythiaClient(trace_path, socket=sock_path, session_id="app-0")
        again.event(*STEP[0])
        print(f"\napp-0 reconnected: worker {again.worker} "
              f"(was {homes['app-0']}) — sticky routing")
        assert again.worker == homes["app-0"]
        again.close()

        # -- per-worker session counts from the merged table ------------
        table = admin(sock_path, {"op": "sessions"})
        per_worker = collections.Counter(
            row["worker"] for row in table["sessions"]
        )
        print("\nsessions per worker (the `pythia-trace sessions` view):")
        for wid in sorted(per_worker):
            rows = [r["sid"] for r in table["sessions"] if r["worker"] == wid]
            print(f"  worker {wid}: {per_worker[wid]} session(s)  {sorted(rows)}")

        # -- one grammar parse for the whole tier -----------------------
        stats = admin(sock_path, {"op": "stats"})
        store = stats["store"]
        print(f"\nshared grammar: {store['artifact_compiles']} compile(s) "
              f"for {len(stats['workers'])} active worker(s); "
              f"artifact(s): {[os.path.basename(a) for a in store['artifacts']]}")
        workers = admin(sock_path, {"op": "workers"})["workers"]
        routed = {w: info["connections_routed"] for w, info in sorted(workers.items())}
        print(f"connections routed per worker: {routed}")

    print("\nsupervisor stopped (workers drained and exited)")


if __name__ == "__main__":
    main()
