#!/usr/bin/env python
"""Oracle service: two applications sharing one prediction daemon.

The in-process :class:`Pythia` facade reloads the reference trace in
every process.  The oracle *service* loads it once: a daemon
(``pythia-trace serve`` — here started in-process) keeps an LRU cache
of trace bundles, and any number of applications connect with
:class:`PythiaClient`, which mirrors the facade API.

This script:

1. records a reference trace of a small iterative solver;
2. starts an :class:`OracleServer` on a Unix socket;
3. runs TWO simulated applications concurrently, each following the
   reference run through its own client session and asking the shared
   daemon what comes next;
4. prints the daemon's ``stats`` counters — the trace was loaded once,
   served to both.

Run: ``python examples/oracle_service.py``
"""

from __future__ import annotations

import os
import tempfile
import threading

from repro import Pythia
from repro.server import OracleServer, PythiaClient, TraceStore

#: one iteration of the "solver": halo exchange, compute, reduce
STEP = [
    ("post_recv", 1),
    ("post_send", 1),
    ("wait_halo", None),
    ("compute", None),
    ("allreduce", "SUM"),
]
ITERATIONS = 30


def record_reference(trace_path: str) -> None:
    """Run 1 (could be on any machine): record the reference trace."""
    oracle = Pythia(trace_path, mode="record", meta={"app": "demo-solver"})
    clock = 0.0
    for _ in range(ITERATIONS):
        for name, payload in STEP:
            clock += 0.002
            oracle.event(name, payload, timestamp=clock)
    trace = oracle.finish()
    print(f"recorded {trace.event_count} events "
          f"({trace.rule_count} grammar rules) -> {trace_path}")


def application(app_id: int, trace_path: str, socket_path: str,
                results: dict) -> None:
    """Run 2..N: an application predicting through the shared daemon."""
    client = PythiaClient(trace_path, socket=socket_path)
    matched = predicted = 0
    sample = ""
    for step in range(ITERATIONS):
        for name, payload in STEP:
            matched += client.event(name, payload)
            pred = client.predict(1, with_time=True)
            if pred is not None:
                predicted += 1
                if step == 10 and not sample:
                    sample = client.describe(pred)
    results[app_id] = (matched, predicted, sample, client.stats())
    client.finish()


def main() -> None:
    tmp = tempfile.mkdtemp(prefix="pythia-service-")
    trace_path = os.path.join(tmp, "solver.pythia")
    socket_path = os.path.join(tmp, "oracle.sock")

    record_reference(trace_path)

    # normally: `pythia-trace serve --socket ...` in its own process
    with OracleServer(socket_path, store=TraceStore(capacity=4)) as server:
        print(f"daemon listening on {socket_path}")

        results: dict = {}
        apps = [
            threading.Thread(target=application,
                             args=(i, trace_path, socket_path, results))
            for i in (1, 2)
        ]
        for t in apps:
            t.start()
        for t in apps:
            t.join()

        for app_id, (matched, predicted, sample, stats) in sorted(results.items()):
            print(f"app {app_id}: {matched}/{stats['observed']} events matched, "
                  f"{predicted} predictions, e.g. {sample}")

        counters = server.counters
        store = server.store.snapshot()
        print(f"daemon: {counters['sessions_opened']} sessions, "
              f"{counters['events_observed']} events observed, "
              f"{counters['predictions_served']} predictions served")
        print(f"trace store: {store['misses']} load(s), {store['hits']} hit(s) "
              f"— both apps shared one loaded grammar")


if __name__ == "__main__":
    main()
