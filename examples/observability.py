#!/usr/bin/env python
"""Observability tour: metrics, accuracy tracking, spans and logs.

An NPB-style iterative solver (CG-like: halo exchange, SpMV compute,
dot-product reductions) is recorded once with timestamps, then replayed
with slightly perturbed timing while the oracle follows along.  Every
prediction the oracle makes is scored *online* against what actually
happens, so by the end the run can print its own Table-1-style numbers:

- hit rate (lifetime and rolling) of next-event predictions;
- mean |actual - predicted| delay of the timed predictions (§II-C);
- lost/resync transitions (one is provoked with an event the reference
  run never saw, §II-B2).

The same run leaves Prometheus-style metrics in the process registry and
wall-time spans exportable as a Chrome trace.

Run: ``python examples/observability.py``
"""

from __future__ import annotations

import random
import tempfile

from repro import Pythia
from repro.obs import metrics as obs_metrics
from repro.obs.spans import span, span_recording

ITERATIONS = 50
NEIGHBOURS = (1, 2)  # a 1-D halo: up and down


def solver_step(oracle: Pythia, clock: float, rng: random.Random,
                *, predicting: bool = False) -> float:
    """One CG-like iteration; returns the advanced clock.

    In predict mode, every event is preceded by a timed next-event query
    so the accuracy tracker has a claim to score.
    """
    step = [
        *[("post_irecv", nb) for nb in NEIGHBOURS],
        *[("post_isend", nb) for nb in NEIGHBOURS],
        ("wait_halo", None),
        ("spmv", None),
        ("allreduce", "dot"),
        ("allreduce", "rnorm"),
    ]
    durations = [0.0002, 0.0002, 0.0003, 0.0003, 0.0011, 0.0042, 0.0008, 0.0008]
    for (name, payload), base in zip(step, durations):
        if predicting:
            oracle.predict(1, with_time=True)
        clock += base * rng.uniform(0.95, 1.05)
        oracle.event(name, payload, timestamp=clock)
    return clock


def main() -> None:
    trace_path = tempfile.mktemp(prefix="pythia-obs-", suffix=".pythia")
    registry = obs_metrics.set_registry(obs_metrics.MetricsRegistry())

    with span_recording() as spans:
        # -- run 1: record the reference execution -----------------------
        with span("example.record"):
            oracle = Pythia(trace_path, mode="record", meta={"app": "cg-demo"})
            clock, rng = 0.0, random.Random(0)
            for _ in range(ITERATIONS):
                clock = solver_step(oracle, clock, rng)
            trace = oracle.finish()
        print(f"recorded {trace.event_count} events "
              f"({trace.rule_count} grammar rules) -> reference trace")

        # -- run 2: replay with perturbed timing, score every claim ------
        with span("example.predict"):
            oracle = Pythia(trace_path, mode="predict")
            clock, rng = 0.0, random.Random(7)  # different jitter
            for it in range(ITERATIONS):
                clock = solver_step(oracle, clock, rng, predicting=True)
                if it == ITERATIONS // 2:
                    # the reference run never wrote a checkpoint: the
                    # oracle goes lost, then resyncs on the next event
                    oracle.event("checkpoint_write", timestamp=clock)
            report = oracle.stats()

    # -- the accuracy report ---------------------------------------------
    print("\naccuracy report (scored online during the replay)")
    print(f"  predictions scored : {report['predictions_scored']}")
    print(f"  hit rate           : {100 * report['hit_rate']:.1f} % "
          f"(rolling {100 * report['rolling_hit_rate']:.1f} %)")
    print(f"  mean |time error|  : {1e3 * report['mean_abs_time_error']:.3f} ms "
          f"(max {1e3 * report['max_abs_time_error']:.3f} ms, "
          f"{report['time_scored']} timed)")
    print(f"  lost -> resync     : {report['lost_events']} lost, "
          f"{report['resyncs']} resyncs")

    # -- the same numbers, as scrapeable metrics --------------------------
    snapshot = registry.snapshot()
    print("\nmetrics registry (selected)")
    for name in ("pythia_record_events_total", "pythia_predict_observe_total",
                 "pythia_predict_hits_total", "pythia_predict_misses_total",
                 "pythia_predict_lost_total"):
        # counters flush lazily: one that never moved reads as 0
        print(f"  {name:32s} {snapshot.get(name, 0)}")

    # -- and where the wall time went -------------------------------------
    print("\nspans (export with recorder.dump() for chrome://tracing)")
    for name, agg in sorted(spans.totals().items()):
        print(f"  {name:18s} x{agg['count']}  {1e3 * agg['total_s']:7.2f} ms")


if __name__ == "__main__":
    main()
