#!/usr/bin/env python
"""Monitoring integration: the HTTP observability plane, end to end.

The oracle service speaks a length-prefixed frame protocol — great for
clients, invisible to Prometheus.  ``pythia-trace serve --http PORT``
(or :class:`~repro.obs.httpd.ObservabilityHTTPServer` in-process, as
here) exposes the whole observability surface over plain HTTP GET:

- ``/metrics``: one Prometheus exposition for the whole tier, every
  worker's samples labeled ``worker="N"``, supervisor and process
  metrics merged in;
- ``/healthz`` and ``/ready``: liveness vs. readiness (503 while
  draining, so load balancers stop routing before shutdown);
- ``/profile?seconds=N&format=svg``: a flamegraph from the always-on
  sampling profiler, with samples attributed to named ops;
- ``/history.json``: req/s, events/s and CPU rates computed from the
  daemon's metrics history ring.

This script records a trace, boots a supervised worker tier with the
HTTP endpoint attached, drives prediction load through it, and then
monitors it exactly like external infrastructure would — over HTTP,
validating the scrape with the in-repo exposition parser.  CI runs it
with ``--out-dir`` to archive the scrape and flamegraph as artifacts.

Run: ``python examples/http_observability.py [--workers 2]
[--profile-seconds 1.0] [--out-dir DIR]``
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import threading
import time
import urllib.request

from repro import Pythia
from repro.obs.httpd import ObservabilityHTTPServer
from repro.obs.metrics import parse_prometheus_text
from repro.server import OracleSupervisor, PythiaClient

STEP = [
    ("post_recv", 1),
    ("post_send", 1),
    ("wait_halo", None),
    ("compute", None),
    ("allreduce", "SUM"),
]


def record_reference(trace_path: str, iterations: int = 40) -> None:
    oracle = Pythia(trace_path, mode="record", meta={"app": "demo-solver"})
    for _ in range(iterations):
        for name, payload in STEP:
            oracle.event(name, payload)
    oracle.finish()


def fetch(url: str) -> tuple[int, str]:
    with urllib.request.urlopen(url, timeout=30.0) as resp:
        return resp.status, resp.read().decode()


def drive_load(trace_path: str, sock_path: str, sid: str,
               stop: threading.Event) -> None:
    """One application session streaming events until told to stop.

    Batched frames (many loop iterations per round trip) keep each
    handler burst above the profiler's GIL switch interval, so samples
    get attributed to the ``observe_predict`` op rather than pure
    socket waits.
    """
    client = PythiaClient(trace_path, socket=sock_path, session_id=sid)
    batch = STEP * 80  # 400 events (~1.3 ms of handler) per frame
    try:
        while not stop.is_set():
            client.event_batch_and_predict(batch, distance=2)
    finally:
        client.close()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--sessions", type=int, default=3)
    parser.add_argument("--port", type=int, default=0,
                        help="HTTP port (0 = ephemeral)")
    parser.add_argument("--load-seconds", type=float, default=2.0,
                        help="how long to keep traffic flowing")
    parser.add_argument("--profile-seconds", type=float, default=1.0,
                        help="flamegraph sampling window")
    parser.add_argument("--profile-hz", type=float, default=97.0,
                        help="temporary sampling rate for the window "
                             "(the always-on profiler stays at 19 Hz)")
    parser.add_argument("--out-dir", default=None,
                        help="write metrics.prom / flamegraph.svg / "
                             "history.json here (CI artifacts)")
    args = parser.parse_args()

    tmp = tempfile.mkdtemp(prefix="pythia-http-obs-")
    out_dir = args.out_dir or tmp
    os.makedirs(out_dir, exist_ok=True)
    trace_path = os.path.join(tmp, "solver.pythia")
    sock_path = os.path.join(tmp, "oracle.sock")
    record_reference(trace_path)
    print(f"reference trace recorded: {trace_path}")

    # profile the workers out of the box; 19 Hz is the daemon default
    os.environ.setdefault("PYTHIA_PROFILE_HZ", "19")

    sup = OracleSupervisor(sock_path, workers=args.workers, drain_deadline=2.0)
    sup.start()
    httpd = ObservabilityHTTPServer(sup, port=args.port,
                                    registry=sup._registry).start()
    print(f"tier up: {args.workers} workers, scrape endpoint {httpd.url}")

    stop = threading.Event()
    loaders = [
        threading.Thread(
            target=drive_load,
            args=(trace_path, sock_path, f"app-{i}", stop),
            daemon=True,
        )
        for i in range(args.sessions)
    ]
    for t in loaders:
        t.start()

    try:
        # -- liveness / readiness, like a load balancer would ----------
        assert fetch(httpd.url + "/healthz")[0] == 200
        status, reason = fetch(httpd.url + "/ready")
        print(f"/ready: {status} {reason.strip()!r}")

        # -- a flamegraph window while the load runs -------------------
        svg = fetch(
            httpd.url
            + f"/profile?seconds={args.profile_seconds}&format=svg"
            + f"&hz={args.profile_hz}"
        )[1]
        svg_path = os.path.join(out_dir, "flamegraph.svg")
        with open(svg_path, "w", encoding="utf-8") as fh:
            fh.write(svg)
        print(f"flamegraph written: {svg_path} ({len(svg)} bytes)")

        time.sleep(max(0.0, args.load_seconds - args.profile_seconds))

        # -- the Prometheus scrape, validated like a strict scraper ----
        page = fetch(httpd.url + "/metrics")[1]
        parsed = parse_prometheus_text(page)
        workers_seen = sorted(
            {
                labels["worker"]
                for labels, _v in parsed.series("pythia_server_requests_total")
            }
        )
        total = sum(
            v for _l, v in parsed.series("pythia_server_requests_total")
        )
        print(
            f"/metrics: {len(parsed.samples)} samples, "
            f"workers {workers_seen}, {int(total)} requests served"
        )
        for family in (
            "pythia_server_requests_total",
            "pythia_process_cpu_seconds_total",
            "pythia_worker_up",
            "pythia_http_requests_total",
        ):
            assert parsed.families[family]["type"], f"missing family {family}"
        # exactly one HELP/TYPE header per family — strict scrapers care
        for family in parsed.families:
            assert page.count(f"# TYPE {family} ") == 1, family
        with open(os.path.join(out_dir, "metrics.prom"), "w",
                  encoding="utf-8") as fh:
            fh.write(page)
        print(f"scrape validated and written: {out_dir}/metrics.prom")

        # -- rates from the history ring -------------------------------
        # a rate needs two ring entries (the ring ticks at 1 Hz), so a
        # fresh tier may need a moment before req/s exists
        deadline = time.monotonic() + 15.0
        while True:
            history = json.loads(fetch(httpd.url + "/history.json")[1])
            tier_rates = history.get("rates") or {}
            if (
                tier_rates.get("pythia_server_requests_total") is not None
                or time.monotonic() >= deadline
            ):
                break
            time.sleep(0.3)
        rates = {
            key.replace("pythia_server_", ""): round(value, 1)
            for key, value in (history.get("rates") or {}).items()
            if value is not None
        }
        print(f"history rates (per second): {rates}")
        with open(os.path.join(out_dir, "history.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(history, fh, indent=2, sort_keys=True)
    finally:
        stop.set()
        for t in loaders:
            t.join(timeout=10.0)
        httpd.stop()
        sup.stop()
    print("tier drained; endpoint down")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
