#!/usr/bin/env python
"""Operations: tracing one request end to end, then watching the fleet.

Every request a :class:`PythiaClient` sends carries a tracing context —
a client-lifetime session id plus a monotonically increasing request id
— and every reply carries the daemon's server-side timing (time spent
queued between socket and handler, time inside the handler).  The
client subtracts both from the round trip it observed: what remains is
the wire.  That decomposition is visible live (``client.last_timing``,
``client.timing_report()``), per session on the daemon (the
``sessions`` op / ``pythia-trace sessions``), on a console
(``pythia-trace top``) and offline (``pythia-trace analyze`` over
dumped span journals).

This script:

1. records a reference trace and starts a daemon on a Unix socket;
2. drives two client "applications" with distinct session ids through
   the same reference run;
3. prints one request's wire/queue/handler decomposition and the
   client-side per-op timing report;
4. fetches the daemon's per-session telemetry table (what
   ``pythia-trace sessions`` shows) and renders one ops-console frame
   (what ``pythia-trace top`` polls);
5. dumps the recorded spans and reproduces the decomposition offline
   with :class:`repro.obs.analysis.TraceTable` — the ``pythia-trace
   analyze`` path.

Run: ``python examples/ops_console.py``
"""

from __future__ import annotations

import os
import tempfile

from repro import Pythia
from repro.obs import spans as obs_spans
from repro.obs.analysis import TraceTable
from repro.obs.top import OpsConsole
from repro.server import OracleServer, PythiaClient, TraceStore
from repro.server.protocol import read_frame, write_frame

STEP = [
    ("post_recv", 1),
    ("post_send", 1),
    ("wait_halo", None),
    ("compute", None),
    ("allreduce", "SUM"),
]
ITERATIONS = 25


def record_reference(trace_path: str) -> None:
    oracle = Pythia(trace_path, mode="record", meta={"app": "demo-solver"})
    clock = 0.0
    for _ in range(ITERATIONS):
        for name, payload in STEP:
            clock += 0.002
            oracle.event(name, payload, timestamp=clock)
    oracle.finish()


def run_application(session_id: str, trace_path: str, socket_path: str):
    """One traced application session; returns its client (unfinished)."""
    client = PythiaClient(trace_path, socket=socket_path, session_id=session_id)
    for _ in range(ITERATIONS):
        for name, payload in STEP:
            client.event_and_predict(name, payload)
    return client


def daemon_request(socket_path: str, op: str) -> dict:
    """What the CLI does: one frame to the daemon, one reply back."""
    import socket as socketlib

    sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
    sock.settimeout(10.0)
    sock.connect(socket_path)
    try:
        write_frame(sock, {"op": op})
        return read_frame(sock)
    finally:
        sock.close()


def main() -> None:
    tmp = tempfile.mkdtemp(prefix="pythia-ops-")
    trace_path = os.path.join(tmp, "solver.pythia")
    socket_path = os.path.join(tmp, "oracle.sock")
    record_reference(trace_path)

    with obs_spans.span_recording() as recorder:
        with OracleServer(socket_path, store=TraceStore()) as _server:
            solver = run_application("solver-rank0", trace_path, socket_path)
            viz = run_application("viz-sidecar", trace_path, socket_path)

            print("=== one request, decomposed (client.last_timing) ===")
            t = solver.last_timing
            print(f"op={t['op']} sid={t['sid']} rid={t['rid']}")
            print(f"  total   {t['total_us']:8.1f} µs")
            print(f"  wire    {t['wire_us']:8.1f} µs  (send + receive + scheduling)")
            print(f"  queue   {t['queue_us']:8.1f} µs  (daemon: socket -> handler)")
            print(f"  handler {t['handler_us']:8.1f} µs  (daemon: the oracle work)")

            print("\n=== per-op timing report (client side) ===")
            for op, components in solver.timing_report().items():
                for component, stats in components.items():
                    print(f"{op:16s} {component:8s} x{stats['count']:<4d} "
                          f"p50 {stats['p50_us']:7.1f} µs  "
                          f"p99 {stats['p99_us']:7.1f} µs")

            print("\n=== daemon per-session telemetry (pythia-trace sessions) ===")
            table = solver.sessions()
            for row in table["sessions"]:
                print(f"{row['sid']:14s} requests={row['requests']:<4d} "
                      f"last_rid={row['last_rid']:<4d} "
                      f"duplicates={row['rid_regressions']} "
                      f"hit_rate={row.get('hit_rate', 0.0):.3f}")

            print("\n=== one ops-console frame (pythia-trace top) ===")
            metrics_text = daemon_request(socket_path, "metrics")["text"]
            sessions_table = daemon_request(socket_path, "sessions")
            console = OpsConsole(lambda: {}, clear=False, title="pythia ops demo")
            print(console.frame(
                {"metrics": metrics_text, "sessions": sessions_table}
            ))

            solver.finish()
            viz.finish()

        dump_path = os.path.join(tmp, "spans.json")
        recorder.dump(dump_path)

    print("=== offline: pythia-trace analyze over the span journal ===")
    report = TraceTable.load(dump_path).report()
    print(f"{report['requests']} traced requests from sessions "
          f"{', '.join(report['sessions'])}")
    for component, stats in report["ops"]["observe_predict"].items():
        print(f"observe_predict {component:8s} x{stats['count']:<4d} "
              f"p50 {stats['p50_us']:7.1f} µs  max {stats['max_us']:7.1f} µs")


if __name__ == "__main__":
    main()
