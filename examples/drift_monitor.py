#!/usr/bin/env python
"""Drift monitoring tour: detect a workload switch, fall back, recover.

A CG-like solver is recorded once as the reference execution.  The
"production" run then goes through three phases:

1. the recorded workload — the oracle stays in sync, the drift monitor
   reports ``ok``, and the OpenMP thread-count policy sizes parallel
   regions from the oracle's duration predictions;
2. a *different* workload (an FFT-style phase the reference never saw)
   — the monitor classifies the divergence within 64 events, fires the
   policy's fallback hook (vanilla thread counts: guidance from a stale
   reference must degrade to default behaviour, not to wrong answers),
   and the flight recorder auto-dumps the minute before the alarm;
3. the recorded workload again — after a few calm windows the monitor
   steps back down with hysteresis and the policy re-adopts the oracle.

Run: ``python examples/drift_monitor.py``
"""

from __future__ import annotations

import json
import pathlib
import random
import tempfile

from repro import Pythia
from repro.openmp.policies import AdaptivePythiaPolicy

ITERATIONS = 40
MAX_THREADS = 8

#: duration ladder: short regions get few threads, long ones get all
THRESHOLDS = [(0.001, 1), (0.004, 4)]


def cg_step(oracle: Pythia, clock: float, rng: random.Random) -> float:
    """One recorded-workload iteration (halo exchange + SpMV + reduce)."""
    step = [
        ("post_irecv", 1), ("post_irecv", 2), ("wait_halo", None),
        ("spmv", None), ("allreduce", "dot"),
    ]
    durations = [0.0002, 0.0002, 0.0004, 0.0048, 0.0009]
    for (name, payload), base in zip(step, durations):
        clock += base * rng.uniform(0.95, 1.05)
        oracle.event(name, payload, timestamp=clock)
    return clock


def region_decision(oracle: Pythia, policy: AdaptivePythiaPolicy) -> int:
    """Ask the oracle how long the next region runs, size the team."""
    pred = oracle.predict(1, with_time=True)
    eta = pred.eta if pred is not None else None
    return policy.threads_for("spmv", eta, MAX_THREADS)


def main() -> None:
    trace_path = tempfile.mktemp(prefix="pythia-drift-", suffix=".pythia")
    dump_dir = tempfile.mkdtemp(prefix="pythia-flight-")

    # -- record the reference execution ----------------------------------
    oracle = Pythia(trace_path, mode="record", meta={"app": "cg-demo"})
    clock, rng = 0.0, random.Random(0)
    for _ in range(ITERATIONS):
        clock = cg_step(oracle, clock, rng)
    trace = oracle.finish()
    print(f"recorded {trace.event_count} events -> {trace_path}")

    # -- the production run ----------------------------------------------
    oracle = Pythia(trace_path, mode="predict")
    monitor = oracle.enable_drift(flight=128, dump_dir=dump_dir)
    policy = AdaptivePythiaPolicy(thresholds=THRESHOLDS, drift_monitor=monitor)

    @monitor.on_transition
    def announce(old: str, new: str, snapshot: dict) -> None:
        print(f"  [drift] {old} -> {new} after {snapshot['events']} events "
              f"(hit {snapshot['hit_rate_ewma']:.2f}, "
              f"unseen {snapshot['unseen_ewma']:.2f})")

    clock, rng = 0.0, random.Random(7)

    print("\nphase 1: the recorded workload")
    for _ in range(ITERATIONS):
        region_decision(oracle, policy)
        clock = cg_step(oracle, clock, rng)
    print(f"  drift state: {monitor.state}, decisions: {policy.decisions}")

    print("\nphase 2: a workload the reference never saw")
    for i in range(24):
        region_decision(oracle, policy)
        for name in ("fft_forward", "transpose", "fft_inverse"):
            clock += 0.001
            oracle.event(name, i % 4, timestamp=clock)
    print(f"  drift state: {monitor.state}, decisions: {policy.decisions}")
    print(f"  policy fallback forced: {policy.force_fallback}")

    print("\nphase 3: back to the recorded workload")
    for _ in range(3 * ITERATIONS):
        region_decision(oracle, policy)
        clock = cg_step(oracle, clock, rng)
    print(f"  drift state: {monitor.state}, decisions: {policy.decisions}")
    print(f"  policy fallback forced: {policy.force_fallback}")

    # -- what the flight recorder kept -----------------------------------
    report = oracle.drift_report()
    print(f"\ndrift transitions: "
          f"{[(t['from'], t['to']) for t in report['transitions']]}")
    # every transition auto-dumped the journal: the minute before the
    # alarm is on disk even if the process had died right after
    for path in sorted(pathlib.Path(dump_dir).glob("flight-*.jsonl")):
        entries = [json.loads(line) for line in path.open(encoding="utf-8")]
        kinds: dict[str, int] = {}
        for e in entries:
            kinds[e["kind"]] = kinds.get(e["kind"], 0) + 1
        print(f"flight journal {path.name}: {len(entries)} entries {kinds}")

    oracle.finish()


if __name__ == "__main__":
    main()
