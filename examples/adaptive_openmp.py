#!/usr/bin/env python
"""The paper's headline optimisation (§III-D): PYTHIA-guided OpenMP.

Runs the 30-region OpenMP Lulesh model on the simulated Pudding machine
(24 cores) three ways:

- VANILLA        — GNU OpenMP default: max threads for every region;
- PYTHIA-RECORD  — same, while recording the reference trace;
- PYTHIA-PREDICT — the adaptive policy picks each region's team size
  from the oracle's predicted duration.

Run: ``python examples/adaptive_openmp.py [size]`` (default size 30).
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro.experiments.harness import (
    omp_predict_run,
    omp_record_run,
    omp_vanilla_run,
)
from repro.machines import PUDDING


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    machine = PUDDING
    trace_path = os.path.join(tempfile.gettempdir(), f"pythia-lulesh-{size}.pythia")
    if os.path.exists(trace_path):
        os.unlink(trace_path)

    print(f"Lulesh -s {size} on {machine.name} ({machine.cores} cores)\n")

    vanilla = omp_vanilla_run(machine, size)
    print(f"VANILLA        : {vanilla.time:7.2f} s  "
          f"(avg team {vanilla.average_team:.1f} threads)")

    record = omp_record_run(machine, size, trace_path)
    print(f"PYTHIA-RECORD  : {record.time:7.2f} s  "
          f"(overhead {100 * (record.time - vanilla.time) / vanilla.time:+.2f} %, "
          f"{record.stats['regions']} regions recorded)")

    predict = omp_predict_run(machine, size, trace_path)
    gain = 100 * (vanilla.time - predict.time) / vanilla.time
    print(f"PYTHIA-PREDICT : {predict.time:7.2f} s  "
          f"(avg team {predict.average_team:.1f} threads, "
          f"{predict.stats['predictions']} predictions used)")
    print(f"\nimprovement over vanilla: {gain:.1f} % "
          f"(the paper reports up to 38 % at size 30 on Pudding)")

    os.unlink(trace_path)


if __name__ == "__main__":
    main()
