#!/usr/bin/env python
"""The paper's MPI experiment in miniature (§III-B, §III-C).

Records the BT benchmark skeleton under the PYTHIA MPI runtime system,
prints the extracted grammar (compare with the paper's Fig 7), then
replays a *larger* working set against the trace and reports prediction
accuracy at several distances (Fig 8's protocol).

Run: ``python examples/mpi_oracle.py [app]``
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro.experiments.harness import mpi_predict_run, mpi_record_run


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "bt"
    ranks = 4
    trace_path = os.path.join(tempfile.gettempdir(), f"pythia-{app}.pythia")
    if os.path.exists(trace_path):
        os.unlink(trace_path)

    # ---- reference execution: record the small working set ---------------
    record = mpi_record_run(app, "small", trace_path, ranks=ranks)
    print(f"recorded {app}.small on {ranks} ranks: "
          f"{record.events:,} events, {record.rules_per_rank:.0f} rules/rank, "
          f"simulated {record.time:.2f}s")

    names = {i: str(ev) for i, ev in enumerate(record.trace.registry)}
    grammar = record.trace.thread(1).grammar
    print(f"\nrank 1's grammar ({grammar.rule_count} rules — cf. paper Fig 7):")
    text = grammar.dump(lambda t: names.get(t, "?").replace("MPI_", ""))
    for line in text.splitlines()[:12]:
        print("  ", line)

    # ---- next execution: larger working set, oracle predicts -------------
    for ws in ("small", "medium", "large"):
        predict = mpi_predict_run(app, ws, trace_path, ranks=ranks,
                                  distances=(1, 8, 64), sample_stride=4)
        accs = "  ".join(
            f"d={d}: {100 * predict.accuracy(d):5.1f}%" for d in (1, 8, 64)
        )
        print(f"\npredicting {app}.{ws:6s} from the small-set trace:  {accs}")

    os.unlink(trace_path)


if __name__ == "__main__":
    main()
