#!/usr/bin/env python
"""Quickstart: the PYTHIA oracle in five minutes.

A runtime system drives PYTHIA through two executions of the same
"application" (here, a tiny synthetic event loop):

1. first run  — no trace file exists, so the oracle records;
2. second run — the trace is reloaded and the oracle predicts what the
   application will do next, and when.

Run: ``python examples/quickstart.py``
"""

from __future__ import annotations

import os
import tempfile

from repro import Pythia


def application_run(oracle: Pythia) -> None:
    """One execution: 20 iterations of work/exchange/sync + a checkpoint."""
    clock = 0.0
    for step in range(20):
        for name, payload, dt in (
            ("compute_kernel", None, 0.010),
            ("send_halo", 1, 0.002),
            ("recv_halo", 1, 0.002),
            ("barrier", None, 0.004),
        ):
            clock += dt
            oracle.event(name, payload, timestamp=clock)
        if step % 5 == 4:
            clock += 0.050
            oracle.event("checkpoint", None, timestamp=clock)


def main() -> None:
    trace_path = os.path.join(tempfile.gettempdir(), "pythia-quickstart.pythia")
    if os.path.exists(trace_path):
        os.unlink(trace_path)

    # ---- run 1: record --------------------------------------------------
    oracle = Pythia(trace_path)  # auto mode: no file -> record
    print(f"run 1: mode={oracle.mode}")
    application_run(oracle)
    trace = oracle.finish()
    print(f"  recorded {trace.event_count} events, "
          f"{trace.rule_count} grammar rules, saved to {trace_path}")
    names = {i: str(ev) for i, ev in enumerate(trace.registry)}
    print("  grammar:")
    for line in trace.grammar.dump(lambda t: names.get(t, "?")).splitlines():
        print("   ", line)

    # ---- run 2: predict --------------------------------------------------
    oracle = Pythia(trace_path)  # auto mode: file exists -> predict
    print(f"\nrun 2: mode={oracle.mode}")
    clock = 0.0
    # replay the first half-iteration, then ask questions
    for name, payload, dt in (("compute_kernel", None, 0.010), ("send_halo", 1, 0.002)):
        clock += dt
        oracle.event(name, payload, timestamp=clock)

    print("  after observing compute_kernel, send_halo:")
    for distance in (1, 2, 3, 4, 8):
        pred = oracle.predict(distance, with_time=True)
        print(f"   event in {distance} steps: {oracle.describe(pred)}")

    eta = oracle.predict_duration(2)
    print(f"  estimated time until the barrier: {eta * 1e3:.1f} ms "
          f"(the reference run took 6.0 ms)")
    oracle.finish()
    os.unlink(trace_path)


if __name__ == "__main__":
    main()
