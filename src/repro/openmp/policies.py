"""Thread-count policies for parallel regions.

- :class:`MaxThreadsPolicy` — GNU OpenMP's default ("usually chooses the
  maximum number of threads", §III-D1): the VANILLA configuration.
- :class:`FixedThreadsPolicy` — a constant count (used in sweeps).
- :class:`AdaptivePythiaPolicy` — the paper's optimisation: ask PYTHIA
  for the probable duration of the starting region and pick the thread
  count by duration thresholds ("1 thread if D < t1, 4 threads if
  D < t4, 8 threads if D < t8, and so on").
"""

from __future__ import annotations

from typing import Protocol

from repro.openmp.costmodel import RegionCostModel

__all__ = [
    "AdaptivePythiaPolicy",
    "FixedThreadsPolicy",
    "MaxThreadsPolicy",
    "ThreadCountPolicy",
]


class ThreadCountPolicy(Protocol):
    """Decides the team size for an OpenMP parallel region."""

    def threads_for(self, region_id, predicted_duration: float | None, max_threads: int) -> int:
        """Return the number of threads for the region starting now."""


class MaxThreadsPolicy:
    """Always use every available thread (vanilla GNU OpenMP)."""

    def threads_for(self, region_id, predicted_duration, max_threads: int) -> int:
        return max_threads


class FixedThreadsPolicy:
    """Always use a constant team size."""

    def __init__(self, nthreads: int) -> None:
        if nthreads < 1:
            raise ValueError("need at least one thread")
        self.nthreads = nthreads

    def threads_for(self, region_id, predicted_duration, max_threads: int) -> int:
        return min(self.nthreads, max_threads)


class AdaptivePythiaPolicy:
    """Duration-thresholded team sizing driven by oracle predictions.

    ``thresholds`` maps duration upper bounds to thread counts, sorted
    ascending: ``[(t1, 1), (t4, 4), (t8, 8), ...]``; durations above the
    last bound use the maximum.  When the oracle has no prediction
    (lost, or first encounter of a region) the policy falls back to the
    vanilla heuristic — exactly the paper's fallback behaviour.

    Default thresholds are derived from the machine's cost model: for
    each ladder count ``n`` we find the largest region duration (as
    measured at max threads during the reference run) for which ``n``
    threads would still be at least as fast as using more.
    """

    def __init__(
        self,
        cost_model: RegionCostModel | None = None,
        thresholds: list[tuple[float, int]] | None = None,
        max_threads: int | None = None,
    ) -> None:
        if thresholds is None:
            if cost_model is None or max_threads is None:
                raise ValueError("need either explicit thresholds or a cost model + max_threads")
            thresholds = self.derive_thresholds(cost_model, max_threads)
        self.thresholds = sorted(thresholds)
        self.decisions = {"adaptive": 0, "fallback": 0}

    @staticmethod
    def derive_thresholds(
        model: RegionCostModel, max_threads: int
    ) -> list[tuple[float, int]]:
        """Build the duration ladder from the region cost model.

        The predicted duration D is a *max-threads* execution time (the
        reference run used max threads).  We invert it to a work amount,
        then ask the model which ladder count executes that work
        fastest; the thresholds are the D-values where the best count
        steps up.
        """
        counts = model.candidate_counts(max_threads)
        overhead_max = model.fork_cost(max_threads) + model.barrier_cost(max_threads)
        thresholds: list[tuple[float, int]] = []
        prev_best = None
        # scan durations logarithmically from 0.1 us to 1 s
        d = 1e-7
        while d < 1.0:
            work = max(0.0, (d - overhead_max)) * max_threads / (
                1.0 + model.imbalance * (max_threads - 1)
            )
            best = min(counts, key=lambda n: model.region_time(work, n))
            if prev_best is not None and best != prev_best:
                thresholds.append((d, prev_best))
            prev_best = best
            d *= 1.12
        return thresholds or [(overhead_max, 1)]

    def threads_for(self, region_id, predicted_duration, max_threads: int) -> int:
        if predicted_duration is None:
            self.decisions["fallback"] += 1
            return max_threads
        self.decisions["adaptive"] += 1
        for bound, count in self.thresholds:
            if predicted_duration < bound:
                return min(count, max_threads)
        return max_threads
