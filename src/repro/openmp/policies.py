"""Thread-count policies for parallel regions.

- :class:`MaxThreadsPolicy` — GNU OpenMP's default ("usually chooses the
  maximum number of threads", §III-D1): the VANILLA configuration.
- :class:`FixedThreadsPolicy` — a constant count (used in sweeps).
- :class:`AdaptivePythiaPolicy` — the paper's optimisation: ask PYTHIA
  for the probable duration of the starting region and pick the thread
  count by duration thresholds ("1 thread if D < t1, 4 threads if
  D < t4, 8 threads if D < t8, and so on").
"""

from __future__ import annotations

from typing import Protocol

from repro.openmp.costmodel import RegionCostModel

__all__ = [
    "AdaptivePythiaPolicy",
    "FixedThreadsPolicy",
    "MaxThreadsPolicy",
    "ThreadCountPolicy",
]


class ThreadCountPolicy(Protocol):
    """Decides the team size for an OpenMP parallel region."""

    def threads_for(self, region_id, predicted_duration: float | None, max_threads: int) -> int:
        """Return the number of threads for the region starting now."""


class MaxThreadsPolicy:
    """Always use every available thread (vanilla GNU OpenMP)."""

    def threads_for(self, region_id, predicted_duration, max_threads: int) -> int:
        return max_threads


class FixedThreadsPolicy:
    """Always use a constant team size."""

    def __init__(self, nthreads: int) -> None:
        if nthreads < 1:
            raise ValueError("need at least one thread")
        self.nthreads = nthreads

    def threads_for(self, region_id, predicted_duration, max_threads: int) -> int:
        return min(self.nthreads, max_threads)


class AdaptivePythiaPolicy:
    """Duration-thresholded team sizing driven by oracle predictions.

    ``thresholds`` maps duration upper bounds to thread counts, sorted
    ascending: ``[(t1, 1), (t4, 4), (t8, 8), ...]``; durations above the
    last bound use the maximum.  When the oracle has no prediction
    (lost, or first encounter of a region) the policy falls back to the
    vanilla heuristic — exactly the paper's fallback behaviour.

    A :class:`~repro.obs.drift.DriftMonitor` can additionally gate the
    policy: pass one as ``drift_monitor`` (or register
    :meth:`drift_transition` yourself via
    :meth:`~repro.obs.drift.DriftMonitor.on_transition`) and the policy
    stops trusting predictions while the monitor reports DIVERGED —
    every region falls back to the vanilla thread count until the
    monitor recovers.  Oracle guidance is an optimisation; a workload
    that no longer resembles its reference trace must degrade to
    default behaviour, not to wrong thread counts.

    Default thresholds are derived from the machine's cost model: for
    each ladder count ``n`` we find the largest region duration (as
    measured at max threads during the reference run) for which ``n``
    threads would still be at least as fast as using more.
    """

    def __init__(
        self,
        cost_model: RegionCostModel | None = None,
        thresholds: list[tuple[float, int]] | None = None,
        max_threads: int | None = None,
        drift_monitor=None,
    ) -> None:
        if thresholds is None:
            if cost_model is None or max_threads is None:
                raise ValueError("need either explicit thresholds or a cost model + max_threads")
            thresholds = self.derive_thresholds(cost_model, max_threads)
        self.thresholds = sorted(thresholds)
        self.decisions = {"adaptive": 0, "fallback": 0, "drift_fallback": 0}
        self.force_fallback = False
        if drift_monitor is not None:
            drift_monitor.on_transition(self.drift_transition)

    @staticmethod
    def derive_thresholds(
        model: RegionCostModel, max_threads: int
    ) -> list[tuple[float, int]]:
        """Build the duration ladder from the region cost model.

        The predicted duration D is a *max-threads* execution time (the
        reference run used max threads).  We invert it to a work amount,
        then ask the model which ladder count executes that work
        fastest; the thresholds are the D-values where the best count
        steps up.
        """
        counts = model.candidate_counts(max_threads)
        overhead_max = model.fork_cost(max_threads) + model.barrier_cost(max_threads)
        thresholds: list[tuple[float, int]] = []
        prev_best = None
        # scan durations logarithmically from 0.1 us to 1 s
        d = 1e-7
        while d < 1.0:
            work = max(0.0, (d - overhead_max)) * max_threads / (
                1.0 + model.imbalance * (max_threads - 1)
            )
            best = min(counts, key=lambda n: model.region_time(work, n))
            if prev_best is not None and best != prev_best:
                thresholds.append((d, prev_best))
            prev_best = best
            d *= 1.12
        return thresholds or [(overhead_max, 1)]

    def drift_transition(self, old: str, new: str, snapshot: dict) -> None:
        """Drift-monitor callback: distrust the oracle while DIVERGED.

        Shaped for :meth:`DriftMonitor.on_transition`; a DRIFTING
        session keeps using predictions (they still mostly hit), only a
        full divergence forces the vanilla thread counts.
        """
        from repro.obs.drift import DIVERGED

        self.force_fallback = new == DIVERGED

    def threads_for(self, region_id, predicted_duration, max_threads: int) -> int:
        if self.force_fallback:
            self.decisions["drift_fallback"] += 1
            return max_threads
        if predicted_duration is None:
            self.decisions["fallback"] += 1
            return max_threads
        self.decisions["adaptive"] += 1
        for bound, count in self.thresholds:
            if predicted_duration < bound:
                return min(count, max_threads)
        return max_threads
