"""Simulated GNU OpenMP runtime.

The paper's §III-D experiment modifies GNU OpenMP so that PYTHIA's
predicted parallel-region durations drive the number of threads used per
region.  This package models the pieces of GOMP that matter for that
experiment:

- a *cost model* for executing a parallel region with ``n`` threads
  (fork dispatch, work division, imbalance, closing barrier);
- a *thread pool* with the expensive-spawn/cheap-wake asymmetry —
  including the paper's pool modification (park idle threads instead of
  destroying them);
- a *runtime* that launches regions under a pluggable thread-count
  policy (vanilla max-threads vs PYTHIA-adaptive).
"""

from repro.openmp.costmodel import RegionCostModel
from repro.openmp.policies import (
    AdaptivePythiaPolicy,
    FixedThreadsPolicy,
    MaxThreadsPolicy,
    ThreadCountPolicy,
)
from repro.openmp.runtime import GompRuntime, OmpInterceptor
from repro.openmp.threadpool import ThreadPool

__all__ = [
    "AdaptivePythiaPolicy",
    "FixedThreadsPolicy",
    "GompRuntime",
    "MaxThreadsPolicy",
    "OmpInterceptor",
    "RegionCostModel",
    "ThreadCountPolicy",
    "ThreadPool",
]
