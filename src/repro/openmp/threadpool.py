"""The OpenMP worker-thread pool.

GNU OpenMP's default behaviour: when a parallel region uses fewer threads
than the previous one, the spurious threads are *destroyed*; growing
again later must *spawn* fresh pthreads — expensive.  The paper changes
this ("we have made the spurious threads wait until they are needed
again"): shrinking *parks* threads, growing *wakes* them cheaply.

:class:`ThreadPool` models both modes and charges the respective costs;
the adaptive-thread-count experiment (§III-D) depends on the park mode,
otherwise varying the thread count would thrash spawn/destroy.
"""

from __future__ import annotations

from repro.machines import MachineSpec

__all__ = ["ThreadPool"]

MODES = ("park", "destroy")


class ThreadPool:
    """Tracks worker threads and the cost of resizing the team."""

    __slots__ = ("machine", "mode", "active", "parked", "spawned_total", "stats")

    def __init__(self, machine: MachineSpec, mode: str = "park") -> None:
        if mode not in MODES:
            raise ValueError(f"unknown pool mode {mode!r}")
        self.machine = machine
        self.mode = mode
        self.active = 1  # the master thread always exists
        self.parked = 0
        self.spawned_total = 1
        self.stats = {"spawns": 0, "wakes": 0, "destroys": 0, "parks": 0}

    def acquire(self, nthreads: int) -> float:
        """Resize the team to ``nthreads``; returns the time it costs."""
        if nthreads < 1:
            raise ValueError("a team needs at least the master thread")
        if nthreads > self.machine.hw_threads:
            nthreads = self.machine.hw_threads
        m = self.machine
        cost = 0.0
        if nthreads > self.active:
            need = nthreads - self.active
            woken = min(need, self.parked)
            if woken:
                self.parked -= woken
                self.stats["wakes"] += woken
                cost += woken * m.thread_wake
            fresh = need - woken
            if fresh:
                self.spawned_total += fresh
                self.stats["spawns"] += fresh
                cost += fresh * m.thread_spawn
            self.active = nthreads
        elif nthreads < self.active:
            excess = self.active - nthreads
            if self.mode == "park":
                self.parked += excess
                self.stats["parks"] += excess
                # parking is a no-cost state change (threads block on a futex)
            else:
                self.stats["destroys"] += excess
                cost += excess * m.thread_destroy
            self.active = nthreads
        return cost

    @property
    def team_size(self) -> int:
        """Threads currently active in the team."""
        return self.active
