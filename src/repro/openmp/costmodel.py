"""Parallel-region execution cost model.

The trade-off the paper's optimisation exploits (§III-D1): "the speedup
due to many threads processing a workload in parallel against the cost
of synchronizing the threads".  The model:

``T(n) = fork(n) + W_par/n * (1 + imbalance*(n-1)) + W_ser + barrier(n)``

with ``fork`` and ``barrier`` growing with the thread count.  For small
``W`` the overhead dominates and few threads win; for large ``W`` the
division dominates and the maximum thread count wins — producing the
crossover Figs 10–13 show.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machines import MachineSpec

__all__ = ["REFERENCE_GHZ", "RegionCostModel"]

#: application work amounts are expressed as serial seconds on Pudding
#: (2.1 GHz); other machines scale by their clock ratio
REFERENCE_GHZ = 2.1


@dataclass(frozen=True, slots=True)
class RegionCostModel:
    """Time model for one machine's parallel regions.

    ``overhead_scale`` globally scales fork/barrier costs; the default
    is calibrated so that region durations and crossover points land in
    the ranges the paper reports for Lulesh on Pudding/Pixel.
    """

    machine: MachineSpec
    overhead_scale: float = 12.0
    imbalance: float = 0.015

    def fork_cost(self, nthreads: int) -> float:
        """Cost to dispatch a region onto ``nthreads`` threads."""
        if nthreads <= 1:
            return 0.0
        m = self.machine
        return self.overhead_scale * (m.fork_base + m.fork_per_thread * (nthreads - 1))

    def barrier_cost(self, nthreads: int) -> float:
        """Cost of the implicit barrier closing a region."""
        if nthreads <= 1:
            return 0.0
        m = self.machine
        return self.overhead_scale * (m.barrier_base + m.barrier_log * math.log2(nthreads))

    def body_time(self, work: float, nthreads: int, parallel_fraction: float = 1.0) -> float:
        """Execution time of the region body itself.

        ``work`` is serial seconds on the reference machine; a faster
        clock shrinks it proportionally.
        """
        n = max(1, nthreads)
        work = work * (REFERENCE_GHZ / self.machine.ghz)
        par = work * parallel_fraction
        ser = work - par
        eff = par / n * (1.0 + self.imbalance * (n - 1))
        return ser + eff

    def region_time(self, work: float, nthreads: int, parallel_fraction: float = 1.0) -> float:
        """Total wall time of a region executed with ``nthreads`` threads."""
        if work < 0:
            raise ValueError("work must be >= 0")
        n = max(1, min(nthreads, self.machine.hw_threads))
        return self.fork_cost(n) + self.body_time(work, n, parallel_fraction) + self.barrier_cost(n)

    def best_threads(self, work: float, max_threads: int, parallel_fraction: float = 1.0) -> int:
        """Oracle-optimal thread count among {1, 2, 4, ..., max}."""
        candidates = self.candidate_counts(max_threads)
        return min(
            candidates, key=lambda n: self.region_time(work, n, parallel_fraction)
        )

    @staticmethod
    def candidate_counts(max_threads: int) -> list[int]:
        """The thread-count ladder the runtime picks from (1,2,4,...,max)."""
        counts = []
        n = 1
        while n < max_threads:
            counts.append(n)
            n *= 2
        counts.append(max_threads)
        return counts
