"""The simulated GOMP runtime.

:class:`GompRuntime` executes parallel regions on a simulated clock:
each :meth:`GompRuntime.parallel` call asks its policy for a team size,
charges pool-resize + fork + body + barrier costs, and advances the
clock.  An :class:`OmpInterceptor` hook sees region begin/end — that is
where the paper's modified GOMP submits events to PYTHIA-RECORD and asks
PYTHIA-PREDICT for the probable region duration (§III-D1; "less than 100
lines of code" in the real runtime, and about as many here).  In predict
mode the interceptor issues a single fused ``event_and_predict`` oracle
call per region begin, riding the compiled successor machine's
observe/predict fast path.
"""

from __future__ import annotations

from typing import Any, Protocol

from repro.machines import MachineSpec
from repro.obs import metrics as obs_metrics
from repro.openmp.costmodel import RegionCostModel
from repro.openmp.policies import MaxThreadsPolicy, ThreadCountPolicy
from repro.openmp.threadpool import ThreadPool

__all__ = ["GompRuntime", "OmpInterceptor"]

#: simulated-seconds buckets for region durations (regions span ~µs..s)
_REGION_BUCKETS = obs_metrics.LATENCY_BUCKETS_S


class OmpInterceptor(Protocol):
    """What the PYTHIA-enabled runtime plugs into GOMP."""

    def region_begin(self, region_id: Any, clock: float) -> float | None:
        """A parallel region starts.  May return a predicted duration
        (seconds) — the paper's D_est — and may charge oracle overhead by
        returning it via :meth:`overhead` instead."""

    def region_end(self, region_id: Any, clock: float) -> None:
        """The parallel region finished."""

    def overhead(self) -> float:
        """Oracle time to charge to the application clock this call."""


class GompRuntime:
    """A single-node OpenMP runtime on a simulated clock."""

    def __init__(
        self,
        machine: MachineSpec,
        *,
        max_threads: int | None = None,
        policy: ThreadCountPolicy | None = None,
        pool_mode: str = "park",
        cost_model: RegionCostModel | None = None,
        interceptor: OmpInterceptor | None = None,
    ) -> None:
        self.machine = machine
        self.max_threads = machine.cores if max_threads is None else max_threads
        if self.max_threads < 1:
            raise ValueError("max_threads must be >= 1")
        self.policy = policy or MaxThreadsPolicy()
        self.pool = ThreadPool(machine, pool_mode)
        self.cost_model = cost_model or RegionCostModel(machine)
        self.interceptor = interceptor
        self.clock = 0.0
        self.stats = {"regions": 0, "threads_used": 0}
        self._team = 1
        reg = obs_metrics.get_registry()
        self._m_regions = reg.counter(
            "pythia_omp_regions_total", help="Parallel regions executed"
        )
        self._m_region_s = reg.histogram(
            "pythia_omp_region_seconds",
            buckets=_REGION_BUCKETS,
            help="Simulated wall time per parallel region",
        )
        self._m_pred_err_s = reg.histogram(
            "pythia_omp_prediction_abs_error_seconds",
            buckets=_REGION_BUCKETS,
            help="Absolute error of the oracle's region-duration estimate",
        )

    # ------------------------------------------------------------------

    def parallel(self, region_id: Any, work: float, *, parallel_fraction: float = 1.0) -> float:
        """Execute one parallel region; returns its wall duration.

        ``work`` is the serial execution time of the region body on this
        machine (seconds); ``region_id`` identifies the region code — the
        paper uses the outlined function pointer.
        """
        predicted = None
        if self.interceptor is not None:
            predicted = self.interceptor.region_begin(region_id, self.clock)
            self.clock += self.interceptor.overhead()
        n = self.policy.threads_for(region_id, predicted, self.max_threads)
        n = max(1, min(n, self.max_threads))
        resize_cost = self.pool.acquire(n)
        duration = self.cost_model.region_time(work, n, parallel_fraction)
        self.clock += resize_cost + duration
        self._team = n
        self.stats["regions"] += 1
        self.stats["threads_used"] += n
        self._m_regions.inc()
        self._m_region_s.observe(duration)
        if predicted is not None:
            self._m_pred_err_s.observe(abs(duration - predicted))
        if self.interceptor is not None:
            self.interceptor.region_end(region_id, self.clock)
            self.clock += self.interceptor.overhead()
        return resize_cost + duration

    def serial(self, seconds: float) -> None:
        """A serial (master-thread) phase between regions."""
        if seconds < 0:
            raise ValueError("time cannot be negative")
        self.clock += seconds

    def omp_get_max_threads(self) -> int:
        """OpenMP API shim (the Lulesh fix of §III-D2 calls this)."""
        return self.max_threads

    def omp_get_num_threads(self) -> int:
        """Team size of the most recent region."""
        return self._team

    @property
    def average_team(self) -> float:
        """Mean team size across regions executed so far."""
        if self.stats["regions"] == 0:
            return 0.0
        return self.stats["threads_used"] / self.stats["regions"]
