"""``pythia-trace`` — record, inspect and replay application traces.

Subcommands
-----------
``record APP``
    Run an application skeleton under PYTHIA-RECORD, write a trace file.
``dump TRACE``
    Print a trace's grammars in the paper's notation, with statistics.
``predict APP TRACE``
    Re-run an application against a reference trace and report per-
    distance prediction accuracy.
``serve``
    Run the oracle daemon: many applications share one long-lived
    prediction service over a Unix socket (or TCP).
``metrics``
    Scrape a running daemon's metrics in Prometheus text format.
``spans``
    Record + replay an application with span recording on and write a
    Chrome-trace JSON (chrome://tracing / Perfetto).
``explain TRACE``
    Replay a prefix of a trace and print the provenance of the oracle's
    next prediction: which candidate progress sequences back it, with
    what weights.  ``--socket`` asks a running daemon instead.
``flight TRACE``
    Same replay, then dump the session's flight-recorder journal (and
    drift report) as JSONL or a Chrome trace.
``apps``
    List the available application skeletons.

A global ``--log-level`` (or ``PYTHIA_LOG``) turns on structured
logging, e.g. ``pythia-trace --log-level debug record ...`` or
``--log-level json:info`` for JSON lines.
"""

from __future__ import annotations

import argparse
import sys

from repro.apps.base import APPS, get_app
from repro.core.trace_file import load_trace
from repro.experiments.harness import mpi_predict_run, mpi_record_run

__all__ = ["main"]


def _cmd_apps(_args) -> int:
    for name in sorted(APPS):
        spec = APPS[name]
        kind = "MPI+OpenMP" if spec.hybrid else "MPI"
        print(f"{name:12s} {kind:10s} ranks={spec.default_ranks:<3d} {spec.description}")
    return 0


def _cmd_record(args) -> int:
    spec = get_app(args.app)
    result = mpi_record_run(
        args.app, args.ws, args.trace,
        ranks=args.ranks or spec.default_ranks, seed=args.seed,
        timestamps=args.timestamps,
    )
    print(f"recorded {result.events:,} events from {args.app}.{args.ws} "
          f"({result.rules_per_rank:.0f} rules/rank avg, simulated {result.time:.2f}s)")
    print(f"trace written to {args.trace}")
    return 0


def _cmd_dump(args) -> int:
    trace = load_trace(args.trace)
    print(f"trace: {args.trace}")
    print(f"meta: {trace.meta}")
    print(f"events: {trace.event_count:,} over {len(trace.threads)} thread(s)")
    names = {i: str(ev) for i, ev in enumerate(trace.registry)}
    from repro.core.analysis import analyze

    for tid in sorted(trace.threads):
        tt = trace.thread(tid)
        print(f"\n--- thread {tid}: {analyze(tt.grammar).summary()} ---")
        if args.full or tt.grammar.rule_count <= args.max_rules:
            print(tt.grammar.dump(lambda t: names.get(t, f"?{t}")))
        else:
            print(f"(grammar has {tt.grammar.rule_count} rules; use --full to print)")
        if args.head and tid == min(trace.threads):
            stream = tt.grammar.unfold()[: args.head]
            print("first events:", " ".join(names.get(t, "?") for t in stream))
    return 0


def _cmd_predict(args) -> int:
    distances = tuple(int(d) for d in args.distances.split(","))
    result = mpi_predict_run(
        args.app, args.ws, args.trace,
        ranks=args.ranks, seed=args.seed,
        distances=distances, sample_stride=args.stride,
    )
    print(f"replayed {args.app}.{args.ws} against {args.trace} "
          f"(simulated {result.time:.2f}s)")
    for d in distances:
        score = result.scores[d]
        print(f"distance {d:4d}: accuracy {100 * score.accuracy:5.1f} % "
              f"({score.correct}/{score.correct + score.incorrect} scored, "
              f"{score.missing} without prediction)")
    return 0


def _cmd_metrics(args) -> int:
    import socket as socketlib

    from repro.server.protocol import read_frame, write_frame

    if args.tcp:
        host, _, port = args.tcp.rpartition(":")
        sock = socketlib.create_connection(
            (host or "127.0.0.1", int(port)), timeout=args.timeout
        )
    else:
        sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        sock.settimeout(args.timeout)
        sock.connect(args.socket)
    try:
        write_frame(sock, {"op": "metrics"})
        response = read_frame(sock)
    finally:
        sock.close()
    if response is None or not response.get("ok"):
        error = (response or {}).get("error", "daemon closed the connection")
        print(f"error: {error}", file=sys.stderr)
        return 1
    sys.stdout.write(response["text"])
    return 0


def _cmd_spans(args) -> int:
    from repro.experiments.harness import temp_trace_path
    from repro.obs.spans import span_recording

    trace = args.trace or temp_trace_path(args.app)
    with span_recording() as recorder:
        mpi_record_run(
            args.app, args.ws, trace,
            ranks=args.ranks, seed=args.seed, timestamps=True,
        )
        mpi_predict_run(args.app, args.ws, trace, ranks=args.ranks, seed=args.seed + 1)
    recorder.dump(args.output)
    totals = recorder.totals()
    print(f"{len(recorder)} spans from {args.app}.{args.ws} -> {args.output}")
    for name in sorted(totals, key=lambda n: -totals[n]["total_s"]):
        agg = totals[name]
        print(f"  {name:28s} x{agg['count']:<5d} total {1e3 * agg['total_s']:8.2f} ms "
              f"(max {1e3 * agg['max_s']:.2f} ms)")
    if args.trace is None:
        import os

        os.unlink(trace)
    return 0


def _primed_session(args):
    """Open an oracle for ``args.trace`` and replay the first ``--prime``
    reference events into it.

    Returns ``(oracle, name_of, close)`` — with ``--socket``/``--tcp``
    the oracle is a :class:`~repro.server.client.PythiaClient` session on
    the shared daemon; otherwise an in-process tracker via the
    :class:`~repro.core.oracle.Pythia` facade.  Both answer ``explain``
    and carry a flight recorder, so the verbs built on this helper work
    identically against either.
    """
    trace = load_trace(args.trace)
    registry = trace.registry
    tt = trace.thread(args.thread)
    stream = tt.grammar.unfold()
    prime = stream[: args.prime] if args.prime else stream
    pairs = [
        (registry.event(t).name, registry.event(t).payload) for t in prime
    ]
    if args.tcp:
        host, _, port = args.tcp.rpartition(":")
        address: object = (host or "127.0.0.1", int(port))
    else:
        address = args.socket
    if address:
        from repro.server.client import PythiaClient

        client = PythiaClient(args.trace, socket=address)
        client.event_batch(pairs, thread=args.thread)
        return client, registry.name, client.finish
    from repro.core.oracle import Pythia

    oracle = Pythia(args.trace, mode="predict")
    oracle.enable_drift()
    for name, payload in pairs:
        oracle.event(name, payload, thread=args.thread)
    return oracle, registry.name, lambda: None


def _cmd_explain(args) -> int:
    oracle, name_of, close = _primed_session(args)
    try:
        expl = oracle.explain(
            args.distance, thread=args.thread, top_k=args.top_k,
            with_time=args.with_time,
        )
    finally:
        close()
    if expl is None:
        print("no explanation: the oracle is lost (no candidate positions)")
        return 1
    print(f"after {args.prime} reference events:")
    print(expl.describe(name_of))
    return 0


def _cmd_flight(args) -> int:
    import json

    oracle, _name_of, close = _primed_session(args)
    try:
        if hasattr(oracle, "flight_dump"):  # daemon client
            dump = oracle.flight_dump(thread=args.thread, format=args.format)
            drift = dump.get("drift") or {}
            if args.format == "chrome":
                payload = json.dumps(dump.get("trace") or {}, indent=1)
            else:
                entries = dump.get("entries") or []
                payload = "".join(
                    json.dumps(e, sort_keys=True) + "\n" for e in entries
                )
        else:  # in-process facade
            pred = oracle._predictor(args.thread)
            drift = oracle.drift_report()
            if args.format == "chrome":
                trace_obj = (
                    pred.flight.to_chrome_trace() if pred.flight is not None else {}
                )
                payload = json.dumps(trace_obj, indent=1)
            else:
                payload = pred.flight.to_jsonl() if pred.flight is not None else ""
    finally:
        close()
    if args.output == "-":
        sys.stdout.write(payload)
    else:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(payload)
        lines = payload.count("\n") if args.format == "jsonl" else None
        what = f"{lines} journal entries" if lines is not None else "chrome trace"
        print(f"{what} -> {args.output}")
    if drift:
        print(f"drift state: {drift.get('state', 'ok')} "
              f"(transitions: {len(drift.get('transitions', []))})")
    return 0


def _cmd_serve(args) -> int:
    from repro.server import OracleServer, TraceStore

    if args.tcp:
        host, _, port = args.tcp.rpartition(":")
        server = OracleServer(
            tcp_address=(host or "127.0.0.1", int(port)),
            store=TraceStore(capacity=args.cache_size),
        )
    else:
        server = OracleServer(
            args.socket, store=TraceStore(capacity=args.cache_size)
        )
    server.start()
    addr = server.address
    where = addr if isinstance(addr, str) else f"{addr[0]}:{addr[1]}"
    print(f"pythia oracle service listening on {where} "
          f"(trace cache: {args.cache_size} entries); "
          f"SIGTERM drains, Ctrl-C stops")
    try:
        server.serve_forever(drain_deadline=args.drain_deadline)
    finally:
        stats = server.counters
        print(f"served {stats['predictions_served']:,} predictions over "
              f"{stats['sessions_opened']:,} sessions "
              f"({stats['events_observed']:,} events observed)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="pythia-trace", description=__doc__)
    parser.add_argument(
        "--log-level", default=None, metavar="[json:]LEVEL",
        help="enable structured logging (debug/info/warning/error; "
             "prefix 'json:' for JSON lines)",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    sub.add_parser("apps", help="list application skeletons")

    rec = sub.add_parser("record", help="record a reference trace")
    rec.add_argument("app")
    rec.add_argument("trace", help="output trace file")
    rec.add_argument("--ws", default="small", choices=("small", "medium", "large"))
    rec.add_argument("--ranks", type=int, default=None)
    rec.add_argument("--seed", type=int, default=0)
    rec.add_argument("--timestamps", action="store_true")

    dump = sub.add_parser("dump", help="inspect a trace file")
    dump.add_argument("trace")
    dump.add_argument("--full", action="store_true")
    dump.add_argument("--max-rules", type=int, default=30)
    dump.add_argument("--head", type=int, default=0, help="print the first N events")

    pred = sub.add_parser("predict", help="replay against a trace, score predictions")
    pred.add_argument("app")
    pred.add_argument("trace")
    pred.add_argument("--ws", default="small", choices=("small", "medium", "large"))
    pred.add_argument("--ranks", type=int, default=None)
    pred.add_argument("--seed", type=int, default=1)
    pred.add_argument("--distances", default="1,4,16,64")
    pred.add_argument("--stride", type=int, default=1)

    srv = sub.add_parser("serve", help="run the shared oracle daemon")
    srv.add_argument("--socket", default="/tmp/pythia-oracle.sock",
                     help="unix socket to listen on")
    srv.add_argument("--tcp", default=None, metavar="HOST:PORT",
                     help="listen on TCP instead of the unix socket")
    srv.add_argument("--cache-size", type=int, default=8,
                     help="trace store capacity (loaded trace bundles)")
    srv.add_argument("--drain-deadline", type=float, default=5.0,
                     help="seconds SIGTERM waits for in-flight requests "
                          "before closing connections")

    met = sub.add_parser("metrics", help="scrape a running daemon (Prometheus text)")
    met.add_argument("--socket", default="/tmp/pythia-oracle.sock",
                     help="unix socket the daemon listens on")
    met.add_argument("--tcp", default=None, metavar="HOST:PORT",
                     help="connect over TCP instead of the unix socket")
    met.add_argument("--timeout", type=float, default=10.0)

    def _session_args(p) -> None:
        p.add_argument("trace", help="reference trace file")
        p.add_argument("--prime", type=int, default=64,
                       help="reference events to replay before asking (default 64)")
        p.add_argument("--thread", type=int, default=0)
        p.add_argument("--socket", default=None,
                       help="ask a running daemon over this unix socket")
        p.add_argument("--tcp", default=None, metavar="HOST:PORT",
                       help="ask a running daemon over TCP")

    exp = sub.add_parser("explain", help="provenance of the oracle's next prediction")
    _session_args(exp)
    exp.add_argument("--distance", type=int, default=1)
    exp.add_argument("--top-k", type=int, default=3, dest="top_k")
    exp.add_argument("--with-time", action="store_true", dest="with_time")

    flt = sub.add_parser("flight", help="dump a session's flight-recorder journal")
    _session_args(flt)
    flt.add_argument("-o", "--output", default="-",
                     help="output file ('-' = stdout, the default)")
    flt.add_argument("--format", default="jsonl", choices=("jsonl", "chrome"))

    spn = sub.add_parser("spans", help="record+replay with span recording on")
    spn.add_argument("app")
    spn.add_argument("-o", "--output", default="pythia-spans.json",
                     help="Chrome-trace JSON output path")
    spn.add_argument("--trace", default=None,
                     help="trace file to (re)use; default: a temp file")
    spn.add_argument("--ws", default="small", choices=("small", "medium", "large"))
    spn.add_argument("--ranks", type=int, default=None)
    spn.add_argument("--seed", type=int, default=0)

    args = parser.parse_args(argv)
    if args.log_level:
        from repro.obs.log import configure, parse_spec

        level, fmt = parse_spec(args.log_level)
        configure(level=level, fmt=fmt)
    return {"apps": _cmd_apps, "record": _cmd_record,
            "dump": _cmd_dump, "predict": _cmd_predict,
            "serve": _cmd_serve, "metrics": _cmd_metrics,
            "spans": _cmd_spans, "explain": _cmd_explain,
            "flight": _cmd_flight}[args.cmd](args)


if __name__ == "__main__":
    sys.exit(main())
