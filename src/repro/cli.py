"""``pythia-trace`` — record, inspect and replay application traces.

Subcommands
-----------
``record APP``
    Run an application skeleton under PYTHIA-RECORD, write a trace file.
``dump TRACE``
    Print a trace's grammars in the paper's notation, with statistics.
``predict APP TRACE``
    Re-run an application against a reference trace and report per-
    distance prediction accuracy.
``serve``
    Run the oracle daemon: many applications share one long-lived
    prediction service over a Unix socket (or TCP).
``metrics``
    Scrape a running daemon's metrics in Prometheus text format.
``sessions``
    Print a running daemon's per-client-session telemetry table.
``top``
    Live ops console: poll a daemon and render throughput, latency
    (queue/handler split) and per-session rows every interval.
``analyze``
    Offline report over span dumps and flight journals: merge them,
    decompose traced requests into wire/queue/handler, print per-op
    percentiles (optionally write a merged Chrome trace).
``spans``
    Record + replay an application with span recording on and write a
    Chrome-trace JSON (chrome://tracing / Perfetto).
``explain TRACE``
    Replay a prefix of a trace and print the provenance of the oracle's
    next prediction: which candidate progress sequences back it, with
    what weights.  ``--socket`` asks a running daemon instead.
``flight TRACE``
    Same replay, then dump the session's flight-recorder journal (and
    drift report) as JSONL or a Chrome trace.
``apps``
    List the available application skeletons.

A global ``--log-level`` (or ``PYTHIA_LOG``) turns on structured
logging, e.g. ``pythia-trace --log-level debug record ...`` or
``--log-level json:info`` for JSON lines.
"""

from __future__ import annotations

import argparse
import sys

from repro.apps.base import APPS, get_app
from repro.core.trace_file import load_trace
from repro.experiments.harness import mpi_predict_run, mpi_record_run

__all__ = ["main"]


def _cmd_apps(_args) -> int:
    for name in sorted(APPS):
        spec = APPS[name]
        kind = "MPI+OpenMP" if spec.hybrid else "MPI"
        print(f"{name:12s} {kind:10s} ranks={spec.default_ranks:<3d} {spec.description}")
    return 0


def _cmd_record(args) -> int:
    spec = get_app(args.app)
    result = mpi_record_run(
        args.app, args.ws, args.trace,
        ranks=args.ranks or spec.default_ranks, seed=args.seed,
        timestamps=args.timestamps,
    )
    print(f"recorded {result.events:,} events from {args.app}.{args.ws} "
          f"({result.rules_per_rank:.0f} rules/rank avg, simulated {result.time:.2f}s)")
    print(f"trace written to {args.trace}")
    return 0


def _cmd_dump(args) -> int:
    trace = load_trace(args.trace)
    print(f"trace: {args.trace}")
    print(f"meta: {trace.meta}")
    print(f"events: {trace.event_count:,} over {len(trace.threads)} thread(s)")
    names = {i: str(ev) for i, ev in enumerate(trace.registry)}
    from repro.core.analysis import analyze

    for tid in sorted(trace.threads):
        tt = trace.thread(tid)
        print(f"\n--- thread {tid}: {analyze(tt.grammar).summary()} ---")
        if args.full or tt.grammar.rule_count <= args.max_rules:
            print(tt.grammar.dump(lambda t: names.get(t, f"?{t}")))
        else:
            print(f"(grammar has {tt.grammar.rule_count} rules; use --full to print)")
        if args.head and tid == min(trace.threads):
            stream = tt.grammar.unfold()[: args.head]
            print("first events:", " ".join(names.get(t, "?") for t in stream))
    return 0


def _cmd_predict(args) -> int:
    distances = tuple(int(d) for d in args.distances.split(","))
    result = mpi_predict_run(
        args.app, args.ws, args.trace,
        ranks=args.ranks, seed=args.seed,
        distances=distances, sample_stride=args.stride,
    )
    print(f"replayed {args.app}.{args.ws} against {args.trace} "
          f"(simulated {result.time:.2f}s)")
    for d in distances:
        score = result.scores[d]
        print(f"distance {d:4d}: accuracy {100 * score.accuracy:5.1f} % "
              f"({score.correct}/{score.correct + score.incorrect} scored, "
              f"{score.missing} without prediction)")
    return 0


def _daemon_requests(args, requests: list[dict]) -> list[dict]:
    """One connection to the daemon, many frames; returns the replies.

    Raises ``OSError`` when the daemon is unreachable and
    ``RuntimeError`` for error replies — callers decide presentation.
    """
    import socket as socketlib

    from repro.server.protocol import read_frame, write_frame

    timeout = getattr(args, "timeout", 10.0)
    if args.tcp:
        host, _, port = args.tcp.rpartition(":")
        sock = socketlib.create_connection(
            (host or "127.0.0.1", int(port)), timeout=timeout
        )
    else:
        sock = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(args.socket)
    replies: list[dict] = []
    try:
        for request in requests:
            write_frame(sock, request)
            response = read_frame(sock)
            if response is None or not response.get("ok"):
                error = (response or {}).get("error", "daemon closed the connection")
                raise RuntimeError(error)
            replies.append(response)
    finally:
        sock.close()
    return replies


def _cmd_metrics(args) -> int:
    try:
        (response,) = _daemon_requests(args, [{"op": "metrics"}])
    except (OSError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    sys.stdout.write(response["text"])
    return 0


def _cmd_sessions(args) -> int:
    import json

    try:
        (response,) = _daemon_requests(args, [{"op": "sessions"}])
    except (OSError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        response.pop("ok", None)
        print(json.dumps(response, indent=1, sort_keys=True))
        return 0
    rows = response.get("sessions") or []
    print(f"{response.get('tracked', len(rows))} session(s) tracked "
          f"(capacity {response.get('capacity', '?')}, "
          f"evicted {response.get('evicted', 0)})")
    if not rows:
        return 0
    print(f"{'session':16s} {'reqs':>7s} {'err':>5s} {'rid':>8s} {'dup':>4s} "
          f"{'hit%':>6s} {'drift':>8s} {'handler p50':>12s} {'p99':>9s} {'age':>7s}")
    for row in rows:
        hit = row.get("hit_rate")
        handler = row.get("handler_us") or {}
        hit_text = f"{100 * hit:5.1f}%" if hit is not None else f"{'-':>6s}"
        print(f"{str(row.get('sid', '?'))[:16]:16s} "
              f"{row.get('requests', 0):>7d} {row.get('errors', 0):>5d} "
              f"{row.get('last_rid', 0):>8d} {row.get('rid_regressions', 0):>4d} "
              f"{hit_text} {row.get('drift_state') or '-':>8s} "
              f"{handler.get('p50', 0):>10.1f}µs {handler.get('p99', 0):>7.1f}µs "
              f"{row.get('age_s', 0):>6.1f}s")
    return 0


def _cmd_top(args) -> int:
    from repro.obs.top import OpsConsole

    def poll() -> dict:
        metrics, sessions = _daemon_requests(
            args, [{"op": "metrics"}, {"op": "sessions"}]
        )
        snapshot = {"metrics": metrics["text"], "sessions": sessions}
        try:
            (hist,) = _daemon_requests(args, [{"op": "history", "window": 120}])
        except (OSError, RuntimeError):
            pass  # older daemon, or history disabled: console degrades
        else:
            snapshot["history"] = hist.get("history")
        return snapshot

    where = args.tcp or args.socket
    console = OpsConsole(
        poll, interval=args.interval, title=f"pythia ops — {where}",
        clear=None if not args.once else False,
    )
    return console.run(iterations=1 if args.once else args.iterations)


def _cmd_analyze(args) -> int:
    import json

    from repro.obs.analysis import TraceTable

    try:
        table = TraceTable.load(*args.files)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.merge:
        merged = {
            "traceEvents": [
                {
                    "name": row.get("name"),
                    "ph": row.get("ph") or "X",
                    "ts": row.get("ts"),
                    "dur": row.get("dur"),
                    "pid": row.get("pid") or 0,
                    "tid": row.get("tid") or 0,
                    "args": {
                        k: v for k, v in row.items()
                        if k not in ("name", "ph", "ts", "dur", "pid", "tid")
                        and v is not None
                    },
                }
                for row in table
            ],
            "displayTimeUnit": "ms",
        }
        with open(args.merge, "w", encoding="utf-8") as fh:
            json.dump(merged, fh, indent=1)
        print(f"merged {len(table)} events from {len(args.files)} file(s) "
              f"-> {args.merge}")
    report = table.report()
    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True))
        return 0
    print(f"{len(table)} events loaded from {len(args.files)} file(s); "
          f"{report['requests']} traced requests over "
          f"{len(report['sessions'])} session(s)")
    for sid in report["sessions"]:
        print(f"  session {sid}")
    for op, components in report["ops"].items():
        print(f"\n{op}:")
        print(f"  {'component':10s} {'count':>7s} {'mean':>10s} "
              f"{'p50':>10s} {'p99':>10s} {'max':>10s}")
        for component in ("total", "wire", "queue", "handler"):
            stats = components.get(component)
            if stats is None:
                continue
            print(f"  {component:10s} {stats['count']:>7d} "
                  f"{stats['mean_us']:>8.1f}µs {stats['p50_us']:>8.1f}µs "
                  f"{stats['p99_us']:>8.1f}µs {stats['max_us']:>8.1f}µs")
    if not report["ops"]:
        print("no traced client request spans found "
              "(enable spans and dump them: PYTHIA_SPANS=1 + PYTHIA_SPANS_DUMP)")
    return 0


def _cmd_spans(args) -> int:
    from repro.experiments.harness import temp_trace_path
    from repro.obs.spans import span_recording

    trace = args.trace or temp_trace_path(args.app)
    with span_recording() as recorder:
        mpi_record_run(
            args.app, args.ws, trace,
            ranks=args.ranks, seed=args.seed, timestamps=True,
        )
        mpi_predict_run(args.app, args.ws, trace, ranks=args.ranks, seed=args.seed + 1)
    recorder.dump(args.output)
    totals = recorder.totals()
    print(f"{len(recorder)} spans from {args.app}.{args.ws} -> {args.output}")
    for name in sorted(totals, key=lambda n: -totals[n]["total_s"]):
        agg = totals[name]
        print(f"  {name:28s} x{agg['count']:<5d} total {1e3 * agg['total_s']:8.2f} ms "
              f"(max {1e3 * agg['max_s']:.2f} ms)")
    if args.trace is None:
        import os

        os.unlink(trace)
    return 0


def _primed_session(args):
    """Open an oracle for ``args.trace`` and replay the first ``--prime``
    reference events into it.

    Returns ``(oracle, name_of, close)`` — with ``--socket``/``--tcp``
    the oracle is a :class:`~repro.server.client.PythiaClient` session on
    the shared daemon; otherwise an in-process tracker via the
    :class:`~repro.core.oracle.Pythia` facade.  Both answer ``explain``
    and carry a flight recorder, so the verbs built on this helper work
    identically against either.
    """
    trace = load_trace(args.trace)
    registry = trace.registry
    tt = trace.thread(args.thread)
    stream = tt.grammar.unfold()
    prime = stream[: args.prime] if args.prime else stream
    pairs = [
        (registry.event(t).name, registry.event(t).payload) for t in prime
    ]
    if args.tcp:
        host, _, port = args.tcp.rpartition(":")
        address: object = (host or "127.0.0.1", int(port))
    else:
        address = args.socket
    if address:
        from repro.server.client import PythiaClient

        client = PythiaClient(args.trace, socket=address)
        client.event_batch(pairs, thread=args.thread)
        return client, registry.name, client.finish
    from repro.core.oracle import Pythia

    oracle = Pythia(args.trace, mode="predict")
    oracle.enable_drift()
    for name, payload in pairs:
        oracle.event(name, payload, thread=args.thread)
    return oracle, registry.name, lambda: None


def _cmd_explain(args) -> int:
    oracle, name_of, close = _primed_session(args)
    try:
        expl = oracle.explain(
            args.distance, thread=args.thread, top_k=args.top_k,
            with_time=args.with_time,
        )
    finally:
        close()
    if expl is None:
        print("no explanation: the oracle is lost (no candidate positions)")
        return 1
    print(f"after {args.prime} reference events:")
    print(expl.describe(name_of))
    return 0


def _cmd_flight(args) -> int:
    import json

    oracle, _name_of, close = _primed_session(args)
    try:
        if hasattr(oracle, "flight_dump"):  # daemon client
            dump = oracle.flight_dump(thread=args.thread, format=args.format)
            drift = dump.get("drift") or {}
            if args.format == "chrome":
                payload = json.dumps(dump.get("trace") or {}, indent=1)
            else:
                entries = dump.get("entries") or []
                payload = "".join(
                    json.dumps(e, sort_keys=True) + "\n" for e in entries
                )
        else:  # in-process facade
            pred = oracle._predictor(args.thread)
            drift = oracle.drift_report()
            if args.format == "chrome":
                trace_obj = (
                    pred.flight.to_chrome_trace() if pred.flight is not None else {}
                )
                payload = json.dumps(trace_obj, indent=1)
            else:
                payload = pred.flight.to_jsonl() if pred.flight is not None else ""
    finally:
        close()
    if args.output == "-":
        sys.stdout.write(payload)
    else:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(payload)
        lines = payload.count("\n") if args.format == "jsonl" else None
        what = f"{lines} journal entries" if lines is not None else "chrome trace"
        print(f"{what} -> {args.output}")
    if drift:
        print(f"drift state: {drift.get('state', 'ok')} "
              f"(transitions: {len(drift.get('transitions', []))})")
    return 0


def _start_httpd(args, provider, registry=None):
    """Serve the observability endpoint next to a daemon/supervisor."""
    if args.http is None:
        return None
    from repro.obs.httpd import ObservabilityHTTPServer

    httpd = ObservabilityHTTPServer(
        provider, args.http_host, args.http, registry=registry
    ).start()
    print(f"observability endpoint on {httpd.url} "
          f"(/metrics /healthz /ready /profile /history.json)")
    return httpd


def _cmd_serve(args) -> int:
    import os

    from repro.obs.profiler import profiler_from_env
    from repro.server import OracleServer, TraceStore

    tcp_address = None
    if args.tcp:
        host, _, port = args.tcp.rpartition(":")
        tcp_address = (host or "127.0.0.1", int(port))
    if args.io:
        # single-process daemons take io_mode directly; supervisor
        # workers are subprocesses and pick it up from the environment
        os.environ["PYTHIA_SERVER_IO"] = args.io
    if args.workers and args.workers > 0:
        from repro.server import OracleSupervisor

        supervisor = OracleSupervisor(
            None if tcp_address else args.socket,
            tcp_address=tcp_address,
            workers=args.workers,
            routing=args.routing,
            use_mmap=not args.no_mmap,
            cache_size=args.cache_size,
            drain_deadline=args.drain_deadline,
        )
        supervisor.start()
        addr = supervisor.address
        where = addr if isinstance(addr, str) else f"{addr[0]}:{addr[1]}"
        print(f"pythia oracle supervisor listening on {where} "
              f"({args.workers} workers, {args.routing} routing, "
              f"{'mmap' if not args.no_mmap else 'json'} grammars); "
              f"SIGTERM drains, Ctrl-C stops")
        # scrape counts go to the supervisor's own registry so they show
        # up (unlabeled) in the merged /metrics page
        httpd = _start_httpd(args, supervisor, registry=supervisor._registry)
        try:
            supervisor.serve_forever(drain_deadline=args.drain_deadline)
        finally:
            if httpd is not None:
                httpd.stop()
        return 0
    if tcp_address is not None:
        server = OracleServer(
            tcp_address=tcp_address,
            store=TraceStore(capacity=args.cache_size),
            io_mode=args.io,
        )
    else:
        server = OracleServer(
            args.socket, store=TraceStore(capacity=args.cache_size),
            io_mode=args.io,
        )
    server.start()
    # long-lived daemon: continuous profiling on by default (19 Hz;
    # PYTHIA_PROFILE_HZ=0 opts out, any other value overrides)
    profiler_from_env(default_hz=19.0)
    addr = server.address
    where = addr if isinstance(addr, str) else f"{addr[0]}:{addr[1]}"
    print(f"pythia oracle service listening on {where} "
          f"(trace cache: {args.cache_size} entries); "
          f"SIGTERM drains, Ctrl-C stops")
    httpd = _start_httpd(args, server)
    try:
        server.serve_forever(drain_deadline=args.drain_deadline)
    finally:
        if httpd is not None:
            httpd.stop()
        stats = server.counters
        print(f"served {stats['predictions_served']:,} predictions over "
              f"{stats['sessions_opened']:,} sessions "
              f"({stats['events_observed']:,} events observed)")
    return 0


def _cmd_profile(args) -> int:
    fmt = args.format
    if fmt is None:
        fmt = "svg" if args.output.endswith(".svg") else "collapsed"
    request: dict = {"op": "profile_dump", "seconds": args.seconds, "format": fmt}
    if args.hz:
        request["hz"] = args.hz
    # the window blocks the reply; the frame timeout must outlive it
    args.timeout = max(args.timeout, args.seconds + 10.0)
    try:
        (response,) = _daemon_requests(args, [request])
    except (OSError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    text = response["profile"]
    if args.output == "-":
        sys.stdout.write(text)
        return 0
    with open(args.output, "w", encoding="utf-8") as fh:
        fh.write(text)
    report = response.get("report") or {}
    print(f"wrote {args.output} ({fmt}, {report.get('samples', '?')} samples)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="pythia-trace", description=__doc__)
    parser.add_argument(
        "--log-level", default=None, metavar="[json:]LEVEL",
        help="enable structured logging (debug/info/warning/error; "
             "prefix 'json:' for JSON lines)",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    sub.add_parser("apps", help="list application skeletons")

    rec = sub.add_parser("record", help="record a reference trace")
    rec.add_argument("app")
    rec.add_argument("trace", help="output trace file")
    rec.add_argument("--ws", default="small", choices=("small", "medium", "large"))
    rec.add_argument("--ranks", type=int, default=None)
    rec.add_argument("--seed", type=int, default=0)
    rec.add_argument("--timestamps", action="store_true")

    dump = sub.add_parser("dump", help="inspect a trace file")
    dump.add_argument("trace")
    dump.add_argument("--full", action="store_true")
    dump.add_argument("--max-rules", type=int, default=30)
    dump.add_argument("--head", type=int, default=0, help="print the first N events")

    pred = sub.add_parser("predict", help="replay against a trace, score predictions")
    pred.add_argument("app")
    pred.add_argument("trace")
    pred.add_argument("--ws", default="small", choices=("small", "medium", "large"))
    pred.add_argument("--ranks", type=int, default=None)
    pred.add_argument("--seed", type=int, default=1)
    pred.add_argument("--distances", default="1,4,16,64")
    pred.add_argument("--stride", type=int, default=1)

    srv = sub.add_parser("serve", help="run the shared oracle daemon")
    srv.add_argument("--socket", default="/tmp/pythia-oracle.sock",
                     help="unix socket to listen on")
    srv.add_argument("--tcp", default=None, metavar="HOST:PORT",
                     help="listen on TCP instead of the unix socket")
    srv.add_argument("--cache-size", type=int, default=8,
                     help="trace store capacity (loaded trace bundles)")
    srv.add_argument("--drain-deadline", type=float, default=5.0,
                     help="seconds SIGTERM waits for in-flight requests "
                          "before closing connections")
    srv.add_argument("--workers", type=int, default=0, metavar="N",
                     help="run N worker processes behind a supervisor "
                          "(0 = single-process daemon)")
    srv.add_argument("--routing", default="hash", choices=("hash", "kernel"),
                     help="multi-worker routing: 'hash' pins sessions to "
                          "workers by consistent hash; 'kernel' uses "
                          "SO_REUSEPORT (TCP only, no stickiness)")
    srv.add_argument("--no-mmap", action="store_true",
                     help="multi-worker: parse JSON traces per worker "
                          "instead of sharing mmap'd artifacts")
    srv.add_argument("--io", default=None, choices=("eventloop", "threads"),
                     help="data-connection I/O model: 'eventloop' (one "
                          "selectors loop, the default) or 'threads' "
                          "(thread per connection); also PYTHIA_SERVER_IO")
    srv.add_argument("--http", type=int, default=None, metavar="PORT",
                     help="also serve the HTTP observability endpoint "
                          "(/metrics /healthz /ready /sessions.json "
                          "/stats.json /profile /history.json) on this port")
    srv.add_argument("--http-host", default="127.0.0.1",
                     help="bind address for --http (default 127.0.0.1)")

    def _daemon_args(p) -> None:
        p.add_argument("--socket", default="/tmp/pythia-oracle.sock",
                       help="unix socket the daemon listens on")
        p.add_argument("--tcp", default=None, metavar="HOST:PORT",
                       help="connect over TCP instead of the unix socket")
        p.add_argument("--timeout", type=float, default=10.0)

    met = sub.add_parser("metrics", help="scrape a running daemon (Prometheus text)")
    _daemon_args(met)

    ses = sub.add_parser("sessions", help="per-client-session daemon telemetry")
    _daemon_args(ses)
    ses.add_argument("--json", action="store_true",
                     help="print the raw sessions table as JSON")

    top = sub.add_parser("top", help="live ops console (ANSI, polls the daemon)")
    _daemon_args(top)
    top.add_argument("--interval", type=float, default=1.0,
                     help="seconds between frames (default 1)")
    top.add_argument("--iterations", type=int, default=None,
                     help="stop after N frames (default: until Ctrl-C)")
    top.add_argument("--once", action="store_true",
                     help="render a single frame and exit (no screen clear)")

    prf = sub.add_parser(
        "profile", help="pull collapsed stacks / a flamegraph from a daemon"
    )
    _daemon_args(prf)
    prf.add_argument("--seconds", type=float, default=5.0,
                     help="profiling window (0 = the daemon's cumulative "
                          "view; default 5)")
    prf.add_argument("--format", default=None, choices=("collapsed", "svg"),
                     help="output format (default: svg when the output path "
                          "ends in .svg, else collapsed stacks)")
    prf.add_argument("--hz", type=float, default=0.0,
                     help="sampling rate for a temporary window when the "
                          "daemon's profiler is off (default 19)")
    prf.add_argument("-o", "--output", default="-",
                     help="output file ('-' = stdout, the default)")

    ana = sub.add_parser(
        "analyze", help="offline report over span/flight journals"
    )
    ana.add_argument("files", nargs="+",
                     help="Chrome-trace JSON and/or flight JSONL files")
    ana.add_argument("--json", action="store_true",
                     help="print the report as JSON")
    ana.add_argument("--merge", default=None, metavar="OUT.json",
                     help="also write the merged Chrome trace to this path")

    def _session_args(p) -> None:
        p.add_argument("trace", help="reference trace file")
        p.add_argument("--prime", type=int, default=64,
                       help="reference events to replay before asking (default 64)")
        p.add_argument("--thread", type=int, default=0)
        p.add_argument("--socket", default=None,
                       help="ask a running daemon over this unix socket")
        p.add_argument("--tcp", default=None, metavar="HOST:PORT",
                       help="ask a running daemon over TCP")

    exp = sub.add_parser("explain", help="provenance of the oracle's next prediction")
    _session_args(exp)
    exp.add_argument("--distance", type=int, default=1)
    exp.add_argument("--top-k", type=int, default=3, dest="top_k")
    exp.add_argument("--with-time", action="store_true", dest="with_time")

    flt = sub.add_parser("flight", help="dump a session's flight-recorder journal")
    _session_args(flt)
    flt.add_argument("-o", "--output", default="-",
                     help="output file ('-' = stdout, the default)")
    flt.add_argument("--format", default="jsonl", choices=("jsonl", "chrome"))

    spn = sub.add_parser("spans", help="record+replay with span recording on")
    spn.add_argument("app")
    spn.add_argument("-o", "--output", default="pythia-spans.json",
                     help="Chrome-trace JSON output path")
    spn.add_argument("--trace", default=None,
                     help="trace file to (re)use; default: a temp file")
    spn.add_argument("--ws", default="small", choices=("small", "medium", "large"))
    spn.add_argument("--ranks", type=int, default=None)
    spn.add_argument("--seed", type=int, default=0)

    args = parser.parse_args(argv)
    if args.log_level:
        from repro.obs.log import configure, parse_spec

        level, fmt = parse_spec(args.log_level)
        configure(level=level, fmt=fmt)
    return {"apps": _cmd_apps, "record": _cmd_record,
            "dump": _cmd_dump, "predict": _cmd_predict,
            "serve": _cmd_serve, "metrics": _cmd_metrics,
            "sessions": _cmd_sessions, "top": _cmd_top,
            "profile": _cmd_profile, "analyze": _cmd_analyze,
            "spans": _cmd_spans, "explain": _cmd_explain,
            "flight": _cmd_flight}[args.cmd](args)


if __name__ == "__main__":
    sys.exit(main())
