"""``pythia-trace`` — record, inspect and replay application traces.

Subcommands
-----------
``record APP``
    Run an application skeleton under PYTHIA-RECORD, write a trace file.
``dump TRACE``
    Print a trace's grammars in the paper's notation, with statistics.
``predict APP TRACE``
    Re-run an application against a reference trace and report per-
    distance prediction accuracy.
``serve``
    Run the oracle daemon: many applications share one long-lived
    prediction service over a Unix socket (or TCP).
``apps``
    List the available application skeletons.
"""

from __future__ import annotations

import argparse
import sys

from repro.apps.base import APPS, get_app
from repro.core.trace_file import load_trace
from repro.experiments.harness import mpi_predict_run, mpi_record_run

__all__ = ["main"]


def _cmd_apps(_args) -> int:
    for name in sorted(APPS):
        spec = APPS[name]
        kind = "MPI+OpenMP" if spec.hybrid else "MPI"
        print(f"{name:12s} {kind:10s} ranks={spec.default_ranks:<3d} {spec.description}")
    return 0


def _cmd_record(args) -> int:
    spec = get_app(args.app)
    result = mpi_record_run(
        args.app, args.ws, args.trace,
        ranks=args.ranks or spec.default_ranks, seed=args.seed,
        timestamps=args.timestamps,
    )
    print(f"recorded {result.events:,} events from {args.app}.{args.ws} "
          f"({result.rules_per_rank:.0f} rules/rank avg, simulated {result.time:.2f}s)")
    print(f"trace written to {args.trace}")
    return 0


def _cmd_dump(args) -> int:
    trace = load_trace(args.trace)
    print(f"trace: {args.trace}")
    print(f"meta: {trace.meta}")
    print(f"events: {trace.event_count:,} over {len(trace.threads)} thread(s)")
    names = {i: str(ev) for i, ev in enumerate(trace.registry)}
    from repro.core.analysis import analyze

    for tid in sorted(trace.threads):
        tt = trace.thread(tid)
        print(f"\n--- thread {tid}: {analyze(tt.grammar).summary()} ---")
        if args.full or tt.grammar.rule_count <= args.max_rules:
            print(tt.grammar.dump(lambda t: names.get(t, f"?{t}")))
        else:
            print(f"(grammar has {tt.grammar.rule_count} rules; use --full to print)")
        if args.head and tid == min(trace.threads):
            stream = tt.grammar.unfold()[: args.head]
            print("first events:", " ".join(names.get(t, "?") for t in stream))
    return 0


def _cmd_predict(args) -> int:
    distances = tuple(int(d) for d in args.distances.split(","))
    result = mpi_predict_run(
        args.app, args.ws, args.trace,
        ranks=args.ranks, seed=args.seed,
        distances=distances, sample_stride=args.stride,
    )
    print(f"replayed {args.app}.{args.ws} against {args.trace} "
          f"(simulated {result.time:.2f}s)")
    for d in distances:
        score = result.scores[d]
        print(f"distance {d:4d}: accuracy {100 * score.accuracy:5.1f} % "
              f"({score.correct}/{score.correct + score.incorrect} scored, "
              f"{score.missing} without prediction)")
    return 0


def _cmd_serve(args) -> int:
    from repro.server import OracleServer, TraceStore

    if args.tcp:
        host, _, port = args.tcp.rpartition(":")
        server = OracleServer(
            tcp_address=(host or "127.0.0.1", int(port)),
            store=TraceStore(capacity=args.cache_size),
        )
    else:
        server = OracleServer(
            args.socket, store=TraceStore(capacity=args.cache_size)
        )
    server.start()
    addr = server.address
    where = addr if isinstance(addr, str) else f"{addr[0]}:{addr[1]}"
    print(f"pythia oracle service listening on {where} "
          f"(trace cache: {args.cache_size} entries); Ctrl-C to stop")
    try:
        server.serve_forever()
    finally:
        stats = server.counters
        print(f"served {stats['predictions_served']:,} predictions over "
              f"{stats['sessions_opened']:,} sessions "
              f"({stats['events_observed']:,} events observed)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="pythia-trace", description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)

    sub.add_parser("apps", help="list application skeletons")

    rec = sub.add_parser("record", help="record a reference trace")
    rec.add_argument("app")
    rec.add_argument("trace", help="output trace file")
    rec.add_argument("--ws", default="small", choices=("small", "medium", "large"))
    rec.add_argument("--ranks", type=int, default=None)
    rec.add_argument("--seed", type=int, default=0)
    rec.add_argument("--timestamps", action="store_true")

    dump = sub.add_parser("dump", help="inspect a trace file")
    dump.add_argument("trace")
    dump.add_argument("--full", action="store_true")
    dump.add_argument("--max-rules", type=int, default=30)
    dump.add_argument("--head", type=int, default=0, help="print the first N events")

    pred = sub.add_parser("predict", help="replay against a trace, score predictions")
    pred.add_argument("app")
    pred.add_argument("trace")
    pred.add_argument("--ws", default="small", choices=("small", "medium", "large"))
    pred.add_argument("--ranks", type=int, default=None)
    pred.add_argument("--seed", type=int, default=1)
    pred.add_argument("--distances", default="1,4,16,64")
    pred.add_argument("--stride", type=int, default=1)

    srv = sub.add_parser("serve", help="run the shared oracle daemon")
    srv.add_argument("--socket", default="/tmp/pythia-oracle.sock",
                     help="unix socket to listen on")
    srv.add_argument("--tcp", default=None, metavar="HOST:PORT",
                     help="listen on TCP instead of the unix socket")
    srv.add_argument("--cache-size", type=int, default=8,
                     help="trace store capacity (loaded trace bundles)")

    args = parser.parse_args(argv)
    return {"apps": _cmd_apps, "record": _cmd_record,
            "dump": _cmd_dump, "predict": _cmd_predict,
            "serve": _cmd_serve}[args.cmd](args)


if __name__ == "__main__":
    sys.exit(main())
