"""Lulesh — Sedov blast hydrodynamics (MPI+OpenMP skeleton).

The hybrid Table-I variant: every timestep runs the OpenMP parallel
regions of the Lagrange leapfrog (the same 30-region catalogue the
single-node model of §III-D uses) interleaved with halo exchanges and
the dt-reduction collective.  The event stream is dominated by region
begin/end pairs, matching the paper's 28M-event count profile.
"""

from __future__ import annotations

from typing import Generator

from repro.apps.base import AppSpec, face_exchange, omp_region, register, ws_value
from repro.apps.lulesh_omp import LULESH_OMP_REGIONS, lulesh_timesteps, region_work
from repro.mpi.comm import SimComm
from repro.mpi.datatypes import MIN

__all__ = ["lulesh_main"]


def lulesh_main(comm: SimComm, ws: str, seed: int = 0) -> Generator:
    """Lulesh: leapfrog timesteps of OpenMP regions + halo exchange + dt."""
    size_param = ws_value(ws, 10, 30, 50)
    steps = lulesh_timesteps(size_param)
    # calibrate total compute to Table I's 125.6 s for the large set
    target = ws_value(ws, 4.0, 31.0, 125.6)
    serial_work = sum(region_work(r, size_param) for r in LULESH_OMP_REGIONS)
    scale = target / (steps * serial_work) if serial_work else 1.0
    halo = ws_value(ws, 8_000, 70_000, 200_000)
    neighbors = [n for n in ((comm.rank - 1) % comm.size, (comm.rank + 1) % comm.size)
                 if comm.size > 1]

    yield from comm.bcast(0 if comm.rank == 0 else None, root=0)
    yield from comm.barrier()
    for _step in range(steps):
        # nodal update regions, then halo, then element regions, then dt
        half = len(LULESH_OMP_REGIONS) // 2
        for region in LULESH_OMP_REGIONS[:half]:
            yield from omp_region(comm, region.rid, region_work(region, size_param) * scale)
        if neighbors:
            yield from face_exchange(comm, list(dict.fromkeys(neighbors)), size=halo, tag=7)
        for region in LULESH_OMP_REGIONS[half:]:
            yield from omp_region(comm, region.rid, region_work(region, size_param) * scale)
        yield from comm.allreduce(1e-3, op=MIN)  # dt courant constraint
        if _step % 10 == 9:
            # periodic diagnostics: energy gather + dt rebroadcast
            yield from comm.gather(0.0, root=0, size=64)
            yield from comm.bcast(0.0 if comm.rank == 0 else None, root=0)
    yield from comm.reduce(0.0, root=0)
    yield from comm.barrier()


register(AppSpec("lulesh", lulesh_main, hybrid=True, default_ranks=8,
                 description="Sedov blast hydrodynamics (MPI+OpenMP)",
                 paper={"vanilla_s": 125.6, "overhead_pct": -1.1, "events": 28_150_300, "rules": 12}))
