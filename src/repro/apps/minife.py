"""miniFE — unstructured implicit finite elements proxy (MPI+OpenMP).

Structure: a short assembly/setup phase, then a conjugate-gradient
solve whose iterations pair a neighbour halo exchange with two
dot-product allreduces and a matvec OpenMP region — a very regular
stream (Table I: 8 rules).
"""

from __future__ import annotations

from typing import Generator

from repro.apps.base import AppSpec, face_exchange, omp_region, register, ws_value
from repro.mpi.comm import SimComm
from repro.mpi.datatypes import SUM

__all__ = ["minife_main"]


def minife_main(comm: SimComm, ws: str, seed: int = 0) -> Generator:
    """miniFE: assembly then CG solve (halo + 2 allreduce per iteration)."""
    iters = ws_value(ws, 50, 120, 200)
    total_time = ws_value(ws, 3.5, 12.0, 25.8)
    msg = ws_value(ws, 20_000, 80_000, 180_000)
    assembly = 0.15 * total_time
    per_iter = (total_time - assembly) / iters
    neighbors = [n for n in ((comm.rank - 1) % comm.size, (comm.rank + 1) % comm.size,
                             comm.rank ^ 2)
                 if comm.size > 1 and n != comm.rank and n < comm.size]
    neighbors = list(dict.fromkeys(neighbors))

    # ---- assembly/setup ----
    yield from comm.bcast(0 if comm.rank == 0 else None, root=0)
    yield from omp_region(comm, 400, assembly * 0.6)
    yield from comm.allgather(0, size=64)
    yield from omp_region(comm, 401, assembly * 0.4)
    yield from comm.barrier()

    # ---- CG solve ----
    for _it in range(iters):
        if neighbors:
            yield from face_exchange(comm, neighbors, size=msg, tag=8)
        yield from omp_region(comm, 402, per_iter * 0.8)  # matvec
        yield from comm.allreduce(0.0, op=SUM)  # p . Ap
        yield from omp_region(comm, 403, per_iter * 0.2)  # axpy updates
        yield from comm.allreduce(0.0, op=SUM)  # r . r
        if _it % 20 == 19:
            yield from comm.bcast(0 if comm.rank == 0 else None, root=0)  # convergence verdict
    yield from comm.reduce(0.0, op=SUM, root=0)
    yield from comm.barrier()


register(AppSpec("minife", minife_main, hybrid=True, default_ranks=8,
                 description="unstructured implicit finite-element proxy (MPI+OpenMP)",
                 paper={"vanilla_s": 25.8, "overhead_pct": -5.8, "events": 39_272, "rules": 8}))
