"""The single-node OpenMP Lulesh model of §III-D.

"Our illustrative use case is the OpenMP version of Lulesh that contains
30 parallel regions of different sizes."  The catalogue below models
those 30 regions by the way their work scales with the problem size
``s`` (the ``-s`` command-line parameter, 10–50 in Figs 10–13):

- **volume** regions (stress/hourglass/element updates) scale with the
  element count s^3 — they dominate for large problems;
- **surface** regions (boundary/communication packing) scale with s^2;
- **fixup** regions (constraint checks, small reductions, monotonic
  slope fixes) scale weakly (s^1) — at s=30 these are microsecond-scale
  regions whose fork/barrier overhead exceeds their work, which is what
  the adaptive thread policy exploits for its up-to-38 % win.

Work constants are expressed as serial seconds on the Pudding machine
and calibrated so the Vanilla execution-time curve of Fig 10 lands in
the paper's range (~8.4 s at s=30 with 24 threads).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.openmp.runtime import GompRuntime

__all__ = [
    "LULESH_OMP_REGIONS",
    "LuleshRegion",
    "lulesh_omp_run",
    "lulesh_timesteps",
    "region_work",
]


@dataclass(frozen=True, slots=True)
class LuleshRegion:
    """One OpenMP parallel region of Lulesh."""

    rid: int
    name: str
    kind: str  # "volume" | "surface" | "fixup"
    coeff: float  # serial seconds per scaled unit


def _catalogue() -> tuple[LuleshRegion, ...]:
    regions: list[LuleshRegion] = []
    rid = 0
    # 10 volume regions: the heavy element-centred loops
    volume_names = [
        "CalcForceForNodes", "CalcAccelerationForNodes", "CalcVelocityForNodes",
        "CalcPositionForNodes", "IntegrateStressForElems", "CalcHourglassControlForElems",
        "CalcKinematicsForElems", "CalcLagrangeElements", "CalcQForElems", "EvalEOSForElems",
    ]
    for name in volume_names:
        regions.append(LuleshRegion(rid, name, "volume", 1.5e-7))
        rid += 1
    # 8 surface regions: boundary handling / comm packing
    surface_names = [
        "CommSendPack", "CommRecvUnpack", "ApplyAccelerationBC", "CalcMonotonicQGradient",
        "UpdateVolumesForElems", "CalcSoundSpeed", "BoundaryNodeSet", "CommMonoQ",
    ]
    for name in surface_names:
        regions.append(LuleshRegion(rid, name, "surface", 3.0e-8))
        rid += 1
    # 12 fixup regions: tiny constraint / reduction loops
    fixup_names = [
        "CalcCourantConstraint", "CalcHydroConstraint", "CalcMonotonicQRegion",
        "ApplyMaterialProperties", "CalcEnergyPass1", "CalcEnergyPass2",
        "CalcEnergyPass3", "CalcPressurePass1", "CalcPressurePass2",
        "VolumeErrorCheck", "CopyVelocityTmp", "ZeroForces",
    ]
    for name in fixup_names:
        regions.append(LuleshRegion(rid, name, "fixup", 1.0e-6))
        rid += 1
    assert len(regions) == 30
    return tuple(regions)


LULESH_OMP_REGIONS: tuple[LuleshRegion, ...] = _catalogue()


def region_work(region: LuleshRegion, size: int) -> float:
    """Serial work (seconds) of a region at problem size ``size``."""
    if region.kind == "volume":
        return region.coeff * size**3
    if region.kind == "surface":
        return region.coeff * size**2
    return region.coeff * size  # fixup


def lulesh_timesteps(size: int) -> int:
    """Timestep count as a function of the problem size.

    Real Lulesh integrates to a fixed physical time, so the step count
    grows with resolution; this linear model keeps simulated runs
    tractable while preserving the paper's scaling behaviour.
    """
    return 40 * size


def lulesh_omp_run(
    runtime: GompRuntime,
    size: int,
    *,
    timesteps: int | None = None,
    serial_fraction_time: float = 2.0e-6,
) -> float:
    """Run the OpenMP Lulesh model; returns the final runtime clock.

    ``runtime`` carries the machine, the thread policy (vanilla or
    PYTHIA-adaptive) and the optional PYTHIA interceptor.
    """
    steps = timesteps if timesteps is not None else lulesh_timesteps(size)
    for _step in range(steps):
        for region in LULESH_OMP_REGIONS:
            runtime.parallel(region.rid, region_work(region, size))
            runtime.serial(serial_fraction_time)
    return runtime.clock
