"""NAS Parallel Benchmarks skeletons (BT, CG, EP, FT, IS, LU, MG, SP).

Each kernel reproduces the communication structure that shapes its
PYTHIA grammar in the paper's Table I / Fig 7:

- **BT/SP** — a fixed-length ADI iteration (200 / 400 iterations for
  every class) mixing halo waitalls with pipelined Isend/Irecv/Wait^2;
  grammar of a handful of rules, identical across working sets.
- **CG** — many point-to-point exchanges plus two dot-product
  allreduces per iteration; iteration count grows with the class.
- **EP** — embarrassingly parallel: a handful of collectives.
- **FT** — an alltoall transpose per FFT iteration.
- **IS** — bucket sort: allreduce + alltoall(+v) per repetition.
- **LU** — SSOR wavefront: the pipeline depth (number of k-planes)
  grows with the problem size, which is exactly why Fig 8 shows LU
  mispredicting across working sets at loop boundaries.
- **MG** — V-cycles whose depth (grid levels) grows with the class.

Compute phases are calibrated so the **large** simulated times land
near Table I's measurements.
"""

from __future__ import annotations

from typing import Generator

from repro.apps.base import AppSpec, face_exchange, register, ws_value
from repro.mpi.comm import SimComm
from repro.mpi.datatypes import MAX, SUM

__all__ = ["bt_main", "cg_main", "ep_main", "ft_main", "is_main", "lu_main", "mg_main", "sp_main"]


# ----------------------------------------------------------------------
# BT — block tridiagonal solver (Fig 7's example grammar)
# ----------------------------------------------------------------------

def _bt_halo(comm: SimComm, size: int) -> Generator:
    """The paper's ``B -> Irecv Irecv [...] WaitAll`` block."""
    if comm.size == 1:
        return
    left, right = (comm.rank - 1) % comm.size, (comm.rank + 1) % comm.size
    reqs = [comm.irecv(source=left, tag=1), comm.irecv(source=right, tag=1)]
    reqs += [
        comm.isend(None, dest=right, tag=1, size=size),
        comm.isend(None, dest=left, tag=1, size=size),
    ]
    yield from comm.waitall(reqs)


def bt_main(comm: SimComm, ws: str, seed: int = 0) -> Generator:
    """BT: 200 ADI iterations for every class (A/B/C), Fig 7 structure."""
    iters = 200
    total_time = ws_value(ws, 3.0, 8.5, 24.2)
    face = ws_value(ws, 40_000, 100_000, 200_000)
    step_compute = total_time / iters
    nxt = (comm.rank + 1) % comm.size

    for _ in range(6):
        yield from comm.bcast(0 if comm.rank == 0 else None, root=0)
    yield from _bt_halo(comm, face)
    yield from comm.barrier()

    for _it in range(iters):
        # "A -> B Isend Irecv [...] Wait^2"
        yield from _bt_halo(comm, face)
        if comm.size > 1:
            sreq = comm.isend(None, dest=nxt, tag=2, size=face)
            rreq = comm.irecv(source=(comm.rank - 1) % comm.size, tag=2)
            yield comm.compute(step_compute)
            yield from comm.wait(sreq)
            yield from comm.wait(rreq)
        else:
            yield comm.compute(step_compute)

    yield from comm.allreduce(0.0, op=SUM)
    yield from comm.allreduce(0.0, op=MAX)
    yield from _bt_halo(comm, face)
    yield from comm.reduce(0.0, op=SUM, root=0)
    yield from comm.barrier()


# ----------------------------------------------------------------------
# CG — conjugate gradient
# ----------------------------------------------------------------------

def cg_main(comm: SimComm, ws: str, seed: int = 0) -> Generator:
    """CG: transpose exchanges + two reduction allreduces per iteration."""
    iters = ws_value(ws, 15, 75, 75)
    inner = 13
    total_time = ws_value(ws, 0.7, 5.5, 9.9)
    msg = ws_value(ws, 15_000, 60_000, 150_000)
    step_compute = total_time / (iters * (inner + 1))
    partner = comm.rank ^ 1 if comm.size > 1 else comm.rank

    yield from comm.barrier()
    for it in range(iters):
        for _j in range(inner):
            if partner != comm.rank and partner < comm.size:
                rreq = comm.irecv(source=partner, tag=3)
                yield from comm.send(None, dest=partner, tag=3, size=msg)
                yield from comm.wait(rreq)
            yield comm.compute(step_compute)
        yield comm.compute(step_compute)
        yield from comm.allreduce(0.0, op=SUM)  # p . Ap
        yield from comm.allreduce(0.0, op=SUM)  # residual norm
        if it % 5 == 4:
            # periodic residual re-orthogonalisation (distinct phase)
            second = comm.rank ^ 2
            if second < comm.size and second != comm.rank:
                rreq = comm.irecv(source=second, tag=9)
                yield from comm.send(None, dest=second, tag=9, size=msg // 2)
                yield from comm.wait(rreq)
            yield from comm.allreduce(0.0, op=MAX)
            yield from comm.bcast(0 if comm.rank == 0 else None, root=0)
    yield from comm.reduce(0.0, op=MAX, root=0)
    yield from comm.barrier()


# ----------------------------------------------------------------------
# EP — embarrassingly parallel
# ----------------------------------------------------------------------

def ep_main(comm: SimComm, ws: str, seed: int = 0) -> Generator:
    """EP: pure compute plus a few terminal collectives (6 events/rank)."""
    yield comm.compute(ws_value(ws, 0.6, 1.6, 4.2))
    yield from comm.allreduce(0.0, op=SUM)  # sx
    yield from comm.allreduce(0.0, op=SUM)  # sy
    yield from comm.allreduce(0, op=SUM)    # counts
    yield from comm.barrier()


# ----------------------------------------------------------------------
# FT — 3D FFT
# ----------------------------------------------------------------------

def ft_main(comm: SimComm, ws: str, seed: int = 0) -> Generator:
    """FT: an alltoall transpose per FFT iteration (6/20/20 iterations)."""
    iters = ws_value(ws, 6, 20, 20)
    total_time = ws_value(ws, 1.6, 8.0, 17.4)
    slab = ws_value(ws, 250_000, 1_000_000, 4_000_000)
    step_compute = total_time / (iters + 1)

    yield from comm.bcast(0 if comm.rank == 0 else None, root=0)
    yield from comm.bcast(0 if comm.rank == 0 else None, root=0)
    yield comm.compute(step_compute)
    for _it in range(iters):
        yield from comm.alltoall([None] * comm.size, size=slab // max(comm.size, 1))
        yield comm.compute(step_compute)
    yield from comm.allreduce(0.0, op=SUM)  # checksum
    yield from comm.barrier()


# ----------------------------------------------------------------------
# IS — integer sort
# ----------------------------------------------------------------------

def is_main(comm: SimComm, ws: str, seed: int = 0) -> Generator:
    """IS: 10 bucket-sort repetitions of allreduce + alltoall + alltoallv."""
    iters = 10
    total_time = ws_value(ws, 0.5, 1.4, 3.2)
    keys = ws_value(ws, 60_000, 250_000, 1_000_000)
    step_compute = total_time / (iters + 1)

    for _it in range(iters):
        yield comm.compute(step_compute)
        yield from comm.allreduce(0, op=SUM)  # bucket sizes
        yield from comm.alltoall([None] * comm.size, size=64)
        yield from comm.alltoallv(
            [[None]] * comm.size, sizes=[keys // max(comm.size, 1)] * comm.size
        )
    yield comm.compute(step_compute)
    yield from comm.allreduce(0, op=SUM)  # verification
    yield from comm.barrier()


# ----------------------------------------------------------------------
# LU — SSOR with pipelined wavefronts
# ----------------------------------------------------------------------

def lu_main(comm: SimComm, ws: str, seed: int = 0) -> Generator:
    """LU: per-iteration lower/upper wavefront sweeps over k-planes.

    The pipeline depth (``planes``) grows with the problem size, so a
    grammar recorded on **small** mispredicts the sweep boundaries of
    **large** — the paper calls this out explicitly for LU.
    """
    iters = ws_value(ws, 12, 30, 50)
    planes = ws_value(ws, 16, 24, 32)
    total_time = ws_value(ws, 2.4, 9.5, 23.0)
    msg = ws_value(ws, 10_000, 25_000, 50_000)
    # each sweep pays a pipeline fill of ~(P-1) stages on top of the
    # per-rank plane work
    step_compute = total_time / (iters * 2 * (planes + comm.size - 1))
    prev_rank, next_rank = comm.rank - 1, comm.rank + 1

    yield from comm.bcast(0 if comm.rank == 0 else None, root=0)
    yield from comm.barrier()
    for _it in range(iters):
        # lower-triangular sweep: wave flows rank 0 -> P-1
        for _k in range(planes):
            if prev_rank >= 0:
                yield from comm.recv(source=prev_rank, tag=4)
            yield comm.compute(step_compute)
            if next_rank < comm.size:
                yield from comm.send(None, dest=next_rank, tag=4, size=msg)
        # upper-triangular sweep: wave flows P-1 -> 0
        for _k in range(planes):
            if next_rank < comm.size:
                yield from comm.recv(source=next_rank, tag=5)
            yield comm.compute(step_compute)
            if prev_rank >= 0:
                yield from comm.send(None, dest=prev_rank, tag=5, size=msg)
        yield from comm.allreduce(0.0, op=SUM)  # residual
        if _it % 5 == 4:
            yield from comm.allreduce(0.0, op=MAX)  # periodic full norm
            yield from comm.bcast(0 if comm.rank == 0 else None, root=0)
    yield from comm.reduce(0.0, op=MAX, root=0)
    yield from comm.barrier()


# ----------------------------------------------------------------------
# MG — multigrid V-cycles
# ----------------------------------------------------------------------

def mg_main(comm: SimComm, ws: str, seed: int = 0) -> Generator:
    """MG: V-cycles whose level count depends on the problem size."""
    cycles = 20
    levels = ws_value(ws, 4, 5, 6)
    total_time = ws_value(ws, 0.6, 1.8, 4.2)
    step_compute = total_time / (cycles * levels * 2)

    yield from comm.bcast(0 if comm.rank == 0 else None, root=0)
    for _cy in range(cycles):
        # restriction: fine -> coarse, message size shrinks per level
        for lvl in range(levels):
            partner = comm.rank ^ (1 << lvl)
            if partner < comm.size and comm.size > 1:
                yield from face_exchange(comm, [partner], size=max(1 << (14 - lvl), 64), tag=6 + lvl)
            yield comm.compute(step_compute)
        # prolongation: coarse -> fine
        for lvl in reversed(range(levels)):
            partner = comm.rank ^ (1 << lvl)
            if partner < comm.size and comm.size > 1:
                yield from face_exchange(comm, [partner], size=max(1 << (14 - lvl), 64), tag=6 + lvl)
            yield comm.compute(step_compute)
        yield from comm.allreduce(0.0, op=SUM)  # norm
    yield from comm.allreduce(0.0, op=MAX)
    yield from comm.barrier()


# ----------------------------------------------------------------------
# SP — scalar pentadiagonal solver
# ----------------------------------------------------------------------

def sp_main(comm: SimComm, ws: str, seed: int = 0) -> Generator:
    """SP: like BT with 400 shorter iterations (every class)."""
    iters = 400
    total_time = ws_value(ws, 3.0, 8.6, 24.3)
    face = ws_value(ws, 25_000, 60_000, 120_000)
    step_compute = total_time / iters

    yield from comm.bcast(0 if comm.rank == 0 else None, root=0)
    yield from comm.barrier()
    for it in range(iters):
        yield from _bt_halo(comm, face)
        if it % 4 == 3 and comm.size > 2:
            # y-direction line solve every fourth step
            partner = comm.rank ^ 2
            if partner < comm.size:
                rreq = comm.irecv(source=partner, tag=11)
                sreq = comm.isend(None, dest=partner, tag=11, size=face)
                yield from comm.wait(rreq)
                yield from comm.wait(sreq)
        yield comm.compute(step_compute)
        yield from comm.allreduce(0.0, op=SUM)
    yield from comm.reduce(0.0, op=SUM, root=0)
    yield from comm.barrier()


# ----------------------------------------------------------------------
# registration (paper Table I reference values)
# ----------------------------------------------------------------------

register(AppSpec("bt", bt_main, hybrid=False, default_ranks=16,
                 description="NPB block-tridiagonal ADI solver",
                 paper={"vanilla_s": 24.2, "overhead_pct": 0.7, "events": 2_329_920, "rules": 3}))
register(AppSpec("cg", cg_main, hybrid=False, default_ranks=16,
                 description="NPB conjugate gradient",
                 paper={"vanilla_s": 9.9, "overhead_pct": -0.3, "events": 3_837_890, "rules": 15}))
register(AppSpec("ep", ep_main, hybrid=False, default_ranks=16,
                 description="NPB embarrassingly parallel",
                 paper={"vanilla_s": 4.2, "overhead_pct": -3.8, "events": 384, "rules": 1}))
register(AppSpec("ft", ft_main, hybrid=False, default_ranks=16,
                 description="NPB 3D FFT",
                 paper={"vanilla_s": 17.4, "overhead_pct": 0.2, "events": 3_072, "rules": 2}))
register(AppSpec("is", is_main, hybrid=False, default_ranks=16,
                 description="NPB integer sort",
                 paper={"vanilla_s": 3.2, "overhead_pct": 0.1, "events": 2_493, "rules": 2}))
register(AppSpec("lu", lu_main, hybrid=False, default_ranks=16,
                 description="NPB SSOR wavefront solver",
                 paper={"vanilla_s": 23.0, "overhead_pct": 1.4, "events": 18_164_200, "rules": 11}))
register(AppSpec("mg", mg_main, hybrid=False, default_ranks=16,
                 description="NPB multigrid",
                 paper={"vanilla_s": 4.2, "overhead_pct": -0.5, "events": 609_888, "rules": 14}))
register(AppSpec("sp", sp_main, hybrid=False, default_ranks=16,
                 description="NPB scalar pentadiagonal solver",
                 paper={"vanilla_s": 24.3, "overhead_pct": 0.2, "events": 356_870, "rules": 9}))
