"""Kripke — deterministic Sn particle transport (MPI+OpenMP skeleton).

Kripke sweeps the angular flux across the spatial domain for every
octant and group-set: a pipelined recv/compute/send per sweep step, with
octant-dependent upwind/downwind neighbours.  The eight distinct octant
patterns (plus the group-set loop) give Kripke its mid-sized grammar
(46 rules in Table I) while keeping the total event count low.
"""

from __future__ import annotations

from typing import Generator

from repro.apps.base import AppSpec, omp_region, register, ws_value
from repro.mpi.comm import SimComm
from repro.mpi.datatypes import MAX, SUM

__all__ = ["kripke_main"]

#: direction signs per octant (dx, dy, dz) — determines sweep neighbours
OCTANTS = [
    (+1, +1, +1), (-1, +1, +1), (+1, -1, +1), (-1, -1, +1),
    (+1, +1, -1), (-1, +1, -1), (+1, -1, -1), (-1, -1, -1),
]


def kripke_main(comm: SimComm, ws: str, seed: int = 0) -> Generator:
    """Kripke: octant sweeps over group-sets, pipelined along ranks."""
    groupsets = ws_value(ws, 2, 4, 8)  # --groups 128/512/1024
    iters = 10
    total_time = ws_value(ws, 9.0, 26.0, 59.8)
    msg = ws_value(ws, 16_000, 64_000, 128_000)
    # the sweep pipelines across ranks: each octant pays a fill of
    # ~(P-1) stages plus 2*groupsets compute units per rank
    step_compute = total_time / (iters * len(OCTANTS) * (2 * groupsets + 1.6 * comm.size))

    yield from comm.bcast(0 if comm.rank == 0 else None, root=0)
    yield from comm.barrier()
    for _it in range(iters):
        for oct_id, (dx, _dy, _dz) in enumerate(OCTANTS):
            upwind = comm.rank - dx
            downwind = comm.rank + dx
            # odd octants carry one extra group-set chunk (anisotropy)
            for gs in range(groupsets + (oct_id % 2)):
                # sweep: consume upwind flux, compute, emit downwind flux
                if 0 <= upwind < comm.size:
                    yield from comm.recv(source=upwind, tag=50 + oct_id)
                yield from omp_region(comm, 300 + oct_id, step_compute)
                yield comm.compute(step_compute)
                if 0 <= downwind < comm.size:
                    yield from comm.send(None, dest=downwind, tag=50 + oct_id, size=msg)
        yield from comm.allreduce(0.0, op=SUM)  # particle balance
        if _it % 3 == 2:
            yield from comm.gather(0, root=0, size=256)  # diagnostics dump
    yield from comm.allreduce(0.0, op=MAX)
    yield from comm.barrier()


register(AppSpec("kripke", kripke_main, hybrid=True, default_ranks=8,
                 description="deterministic Sn particle transport (MPI+OpenMP)",
                 paper={"vanilla_s": 59.8, "overhead_pct": 2.0, "events": 9_881, "rules": 46}))
