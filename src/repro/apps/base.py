"""Application registry and shared skeleton helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Sequence

from repro.mpi.comm import SimComm

WORKING_SETS = ("small", "medium", "large")

__all__ = [
    "APPS",
    "AppSpec",
    "WORKING_SETS",
    "face_exchange",
    "get_app",
    "list_apps",
    "omp_region",
    "register",
    "ws_value",
]


@dataclass(frozen=True, slots=True)
class AppSpec:
    """One evaluated application.

    ``main(comm, ws, seed)`` is the per-rank generator; ``hybrid`` apps
    also emit OpenMP region events (the paper runs them under both the
    MPI and the OpenMP runtime systems).  ``paper`` holds Table I's
    reference row for the EXPERIMENTS.md comparison.
    """

    name: str
    main: Callable[[SimComm, str, int], Generator]
    hybrid: bool
    default_ranks: int
    description: str
    paper: dict = field(default_factory=dict)


APPS: dict[str, AppSpec] = {}


def register(spec: AppSpec) -> AppSpec:
    """Add an application to the registry (module import time)."""
    if spec.name in APPS:
        raise ValueError(f"duplicate app {spec.name!r}")
    APPS[spec.name] = spec
    return spec


def get_app(name: str) -> AppSpec:
    """Look up an application by name (case-insensitive)."""
    try:
        return APPS[name.lower()]
    except KeyError:
        raise KeyError(f"unknown app {name!r}; know {sorted(APPS)}") from None


def list_apps() -> list[str]:
    """All registered application names, NPB kernels first."""
    return sorted(APPS)


def ws_value(ws: str, small, medium, large):
    """Pick a per-working-set parameter value."""
    try:
        return {"small": small, "medium": medium, "large": large}[ws]
    except KeyError:
        raise ValueError(f"unknown working set {ws!r}; use one of {WORKING_SETS}") from None


# ----------------------------------------------------------------------
# skeleton building blocks
# ----------------------------------------------------------------------


def face_exchange(
    comm: SimComm, neighbors: Sequence[int], size: int, tag: int = 0
) -> Generator:
    """Nonblocking halo exchange with ``neighbors`` + one Waitall.

    The canonical NPB/Lulesh boundary pattern: post all receives, post
    all sends, wait for everything.
    """
    reqs = [comm.irecv(source=n, tag=tag) for n in neighbors]
    reqs += [comm.isend(None, dest=n, tag=tag, size=size) for n in neighbors]
    yield from comm.waitall(reqs)


def omp_region(comm: SimComm, region_id: int, seconds: float) -> Generator:
    """An OpenMP parallel region inside a hybrid MPI+OpenMP rank.

    Emits the same begin/end events the OpenMP runtime system submits,
    through the rank's interceptor, and advances simulated time by the
    region's duration.
    """
    if comm.interceptor is not None:
        comm.interceptor.mpi_call("GOMP_parallel_begin", region_id)
    yield comm.compute(seconds)
    if comm.interceptor is not None:
        comm.interceptor.mpi_call("GOMP_parallel_end", region_id)


def ring_neighbors(rank: int, size: int, *offsets: int) -> list[int]:
    """Deterministic neighbor set on a rank ring (wrapping)."""
    return [(rank + off) % size for off in offsets if size > 1]
