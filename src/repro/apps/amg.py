"""AMG — parallel algebraic multigrid solver (MPI+OpenMP).

AMG's *setup* phase builds coarse grids whose communication partners
depend on the matrix structure — data-dependent and different per rank,
which is why the paper measures ~150 grammar rules for AMG and a lower
(though still >70 %) prediction accuracy.  The *solve* phase is a
regular sequence of V-cycles.
"""

from __future__ import annotations

from typing import Generator

from repro.apps.base import AppSpec, face_exchange, omp_region, register, ws_value
from repro.mpi.comm import SimComm
from repro.mpi.datatypes import SUM
from repro.sim.rng import StreamRNG

__all__ = ["amg_main"]


def amg_main(comm: SimComm, ws: str, seed: int = 0) -> Generator:
    """AMG: irregular setup (data-dependent partners) + regular solve."""
    levels = ws_value(ws, 6, 8, 10)
    cycles = ws_value(ws, 8, 14, 20)
    total_time = ws_value(ws, 7.0, 19.0, 38.7)
    setup_time = 0.35 * total_time
    solve_time = total_time - setup_time

    # ---- setup: coarsening with data-dependent communication ----
    yield from comm.bcast(0 if comm.rank == 0 else None, root=0)
    per_level = setup_time / levels
    for lvl in range(levels):
        yield from omp_region(comm, 100 + lvl, per_level * 0.5)
        # the coarse-grid stencil couples a data-dependent set of rank
        # pairs; every rank derives the same pair list from the shared
        # seed, so sends and receives always match (no deadlock), but
        # each rank's own event pattern is irregular
        pair_rng = StreamRNG(seed).stream("amg-pairs", lvl)
        npairs = max(1, 2 * comm.size + pair_rng.randint(-3, 6))
        reqs = []
        for _ in range(npairs):
            a = pair_rng.randrange(comm.size)
            b = pair_rng.randrange(comm.size)
            if a == b:
                continue
            if comm.rank == a or comm.rank == b:
                other = b if comm.rank == a else a
                reqs.append(comm.irecv(source=other, tag=20 + lvl))
                reqs.append(comm.isend(None, dest=other, tag=20 + lvl, size=4_000))
        if reqs:
            yield from comm.waitall(reqs)
        yield comm.compute(per_level * 0.5)
        yield from comm.allgather(len(reqs), size=8)
    yield from comm.barrier()

    # ---- solve: regular V-cycles ----
    per_cycle = solve_time / cycles
    for _cy in range(cycles):
        for lvl in range(levels):
            partner = comm.rank ^ (1 << (lvl % 4))
            if partner < comm.size and comm.size > 1:
                yield from face_exchange(comm, [partner], size=max(32_000 >> lvl, 256), tag=40 + lvl)
            yield comm.compute(per_cycle / (2 * levels))
        for lvl in reversed(range(levels)):
            partner = comm.rank ^ (1 << (lvl % 4))
            if partner < comm.size and comm.size > 1:
                yield from face_exchange(comm, [partner], size=max(32_000 >> lvl, 256), tag=40 + lvl)
            yield comm.compute(per_cycle / (2 * levels))
        yield from comm.allreduce(0.0, op=SUM)
    yield from comm.allreduce(0.0, op=SUM)
    yield from comm.barrier()


register(AppSpec("amg", amg_main, hybrid=True, default_ranks=8,
                 description="parallel algebraic multigrid solver (MPI+OpenMP)",
                 paper={"vanilla_s": 38.7, "overhead_pct": -0.9, "events": 118_438, "rules": 150}))
