"""The 13 evaluated applications (§III-A2), as communication skeletons.

Each module reproduces the *event-stream structure* of one application —
the loops, communication patterns and irregularities PYTHIA sees — with
compute phases calibrated so that simulated execution times land near
the paper's Table I.  Working sets (small / medium / large) scale
iteration counts and problem dimensions the same way the paper's
parameters do, which is what makes the cross-working-set prediction
experiment (Fig 8) meaningful.
"""

from repro.apps.base import APPS, AppSpec, WORKING_SETS, get_app, list_apps, omp_region

# importing the modules registers their specs
from repro.apps import amg, kripke, lulesh, minife, npb, quicksilver  # noqa: F401, E402
from repro.apps.lulesh_omp import LULESH_OMP_REGIONS, lulesh_omp_run, lulesh_timesteps

__all__ = [
    "APPS",
    "AppSpec",
    "LULESH_OMP_REGIONS",
    "WORKING_SETS",
    "get_app",
    "list_apps",
    "lulesh_omp_run",
    "lulesh_timesteps",
    "omp_region",
]
