"""Deterministic per-stream random numbers.

Irregular applications (Quicksilver's particle exits, AMG's setup) need
data-dependent randomness that is reproducible per run but *differs*
between the reference run and later runs — that difference is precisely
what exercises PYTHIA's tolerance to unexpected events.  Each simulated
rank derives an independent child stream from ``(seed, stream id)``.
"""

from __future__ import annotations

import random

__all__ = ["StreamRNG"]


class StreamRNG:
    """A family of independent deterministic random streams."""

    __slots__ = ("seed",)

    def __init__(self, seed: int) -> None:
        self.seed = seed

    def stream(self, *ids: int | str) -> random.Random:
        """An independent :class:`random.Random` for the given stream id."""
        key = ":".join([str(self.seed), *map(str, ids)])
        return random.Random(key)
