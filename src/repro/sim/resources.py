"""Synchronisation resources built on the simulation kernel."""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.sim.engine import SimEvent, Simulator

__all__ = ["Barrier", "Latch", "Mailbox"]


class Mailbox:
    """An unbounded message queue with matching (MPI-style).

    Messages carry an envelope; receivers pass a predicate over
    envelopes.  Unmatched messages wait in an *unexpected queue*, pending
    receives in a *posted queue* — the classic MPI matching structure.
    Matching is FIFO within each queue, so message ordering between a
    pair of endpoints is preserved (MPI's non-overtaking rule).
    """

    __slots__ = ("sim", "_unexpected", "_posted")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._unexpected: deque[tuple[Any, Any]] = deque()
        self._posted: deque[tuple[Callable[[Any], bool], SimEvent]] = deque()

    def deliver(self, envelope: Any, payload: Any) -> None:
        """Deliver a message (called at its arrival time)."""
        for i, (pred, ev) in enumerate(self._posted):
            if pred(envelope):
                del self._posted[i]
                ev.trigger((envelope, payload))
                return
        self._unexpected.append((envelope, payload))

    def receive(self, pred: Callable[[Any], bool]) -> SimEvent:
        """Post a receive; the event fires with ``(envelope, payload)``."""
        for i, (envelope, payload) in enumerate(self._unexpected):
            if pred(envelope):
                del self._unexpected[i]
                ev = self.sim.event("recv-immediate")
                ev.trigger((envelope, payload))
                return ev
        ev = self.sim.event("recv")
        self._posted.append((pred, ev))
        return ev

    def probe(self, pred: Callable[[Any], bool]) -> bool:
        """True if a matching message is already waiting."""
        return any(pred(env) for env, _p in self._unexpected)

    @property
    def unexpected_count(self) -> int:
        """Messages delivered but not yet received."""
        return len(self._unexpected)


class Barrier:
    """A reusable barrier for a fixed group size."""

    __slots__ = ("sim", "size", "_arrived", "_event")

    def __init__(self, sim: Simulator, size: int) -> None:
        if size < 1:
            raise ValueError("barrier size must be >= 1")
        self.sim = sim
        self.size = size
        self._arrived = 0
        self._event = sim.event("barrier")

    def arrive(self) -> SimEvent:
        """Arrive at the barrier; the returned event fires when full."""
        self._arrived += 1
        ev = self._event
        if self._arrived == self.size:
            self._arrived = 0
            self._event = self.sim.event("barrier")
            ev.trigger(self.sim.now)
        return ev


class Latch:
    """A countdown latch: fires once after ``count`` calls to :meth:`hit`."""

    __slots__ = ("sim", "remaining", "event")

    def __init__(self, sim: Simulator, count: int) -> None:
        if count < 1:
            raise ValueError("latch count must be >= 1")
        self.sim = sim
        self.remaining = count
        self.event = sim.event("latch")

    def hit(self, value: Any = None) -> None:
        """Count one arrival; the last one fires the event."""
        if self.remaining <= 0:
            raise RuntimeError("latch already fired")
        self.remaining -= 1
        if self.remaining == 0:
            self.event.trigger(value)
