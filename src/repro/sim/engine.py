"""A small deterministic discrete-event simulation kernel.

Processes are Python generators.  A process advances by ``yield``-ing:

- a number — sleep for that many simulated seconds;
- a :class:`SimEvent` — suspend until the event triggers (the ``yield``
  evaluates to the event's value);
- a :class:`Process` — join: suspend until that process terminates
  (evaluates to its return value);
- an :class:`AllOf` — suspend until all wrapped events have triggered.

The scheduler is a plain time-ordered heap with FIFO tie-breaking, which
makes every run bit-reproducible — a property the PYTHIA record/replay
experiments rely on.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable

__all__ = ["AllOf", "DeadlockError", "Process", "SimEvent", "Simulator"]


class DeadlockError(RuntimeError):
    """Raised when live processes remain but no event can ever fire."""


class SimEvent:
    """A one-shot condition processes can wait on."""

    __slots__ = ("sim", "triggered", "value", "_waiters", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._waiters: list[Process] = []
        self.name = name

    def trigger(self, value: Any = None) -> None:
        """Fire the event, resuming every waiter at the current time."""
        if self.triggered:
            raise RuntimeError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.sim._resume(proc, value)

    def _wait(self, proc: "Process") -> None:
        self._waiters.append(proc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.triggered else "pending"
        return f"<SimEvent {self.name or id(self):x} {state}>"


class AllOf:
    """Wait for all of several events (e.g. ``MPI_Waitall``)."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[SimEvent]) -> None:
        self.events = list(events)


class Process:
    """A running coroutine inside the simulator."""

    __slots__ = ("sim", "gen", "name", "done", "alive")

    def __init__(self, sim: "Simulator", gen: Generator, name: str) -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        self.done = SimEvent(sim, name=f"done:{name}")
        self.alive = True

    @property
    def value(self) -> Any:
        """Return value of the process (valid once it terminated)."""
        if self.alive:
            raise RuntimeError(f"process {self.name!r} still running")
        return self.done.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name} {'alive' if self.alive else 'done'}>"


class Simulator:
    """Deterministic event-driven scheduler with a simulated clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Process, Any]] = []
        self._seq = 0
        self._live = 0

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------

    def spawn(self, gen: Generator, name: str | None = None) -> Process:
        """Start a new process; it first runs at the current time."""
        proc = Process(self, gen, name or f"proc{self._seq}")
        self._live += 1
        self._resume(proc, None)
        return proc

    def event(self, name: str = "") -> SimEvent:
        """Create a fresh untriggered event."""
        return SimEvent(self, name)

    def timeout(self, delay: float, value: Any = None) -> SimEvent:
        """An event that fires ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        ev = SimEvent(self, name=f"timeout+{delay:g}")
        self._push(self.now + delay, _TRIGGER, ev, value)
        return ev

    def call_later(self, delay: float, fn: Any, *args: Any) -> None:
        """Invoke ``fn(*args)`` at ``now + delay`` (message delivery etc.)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._push(self.now + delay, _CALLBACK, fn, args)

    # ------------------------------------------------------------------
    # scheduling internals
    # ------------------------------------------------------------------

    def _push(self, when: float, proc: Any, *payload: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, proc, payload))

    def _resume(self, proc: Process, value: Any) -> None:
        self._push(self.now, proc, value)

    def _step_process(self, proc: Process, send_value: Any) -> None:
        try:
            yielded = proc.gen.send(send_value)
        except StopIteration as stop:
            proc.alive = False
            self._live -= 1
            proc.done.trigger(stop.value)
            return
        if isinstance(yielded, (int, float)):
            self._push(self.now + float(yielded), proc, None)
        elif isinstance(yielded, SimEvent):
            if yielded.triggered:
                self._resume(proc, yielded.value)
            else:
                yielded._wait(proc)
        elif isinstance(yielded, Process):
            target = yielded
            if target.alive:
                target.done._wait(proc)
            else:
                self._resume(proc, target.done.value)
        elif isinstance(yielded, AllOf):
            self._wait_all(proc, yielded.events)
        else:
            raise TypeError(
                f"process {proc.name!r} yielded unsupported {yielded!r}"
            )

    def _wait_all(self, proc: Process, events: list[SimEvent]) -> None:
        pending = [ev for ev in events if not ev.triggered]
        if not pending:
            self._resume(proc, [ev.value for ev in events])
            return
        remaining = {"n": len(pending)}
        collector = SimEvent(self, name="allof")

        for ev in pending:
            ev._waiters.append(_AllOfWaiter(self, collector, remaining, events))
        collector._wait(proc)

    # ------------------------------------------------------------------
    # the main loop
    # ------------------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Process events until quiescence (or simulated time ``until``).

        Raises :class:`DeadlockError` if live processes remain with an
        empty agenda — e.g. an MPI receive whose send never comes.
        """
        while self._heap:
            when, _seq, target, payload = self._heap[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = when
            if target is _TRIGGER:
                ev, value = payload
                ev.trigger(value)
            elif target is _CALLBACK:
                fn, args = payload
                fn(*args)
            elif isinstance(target, _AllOfWaiter):
                target.notify(payload[0])
            else:
                self._step_process(target, payload[0])
        if self._live > 0:
            raise DeadlockError(f"{self._live} process(es) blocked forever")
        return self.now


class _Trigger:
    """Sentinel heap target: fire an event at its due time."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<trigger>"


_TRIGGER = _Trigger()


class _Callback:
    """Sentinel heap target: run a plain function at its due time."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<callback>"


_CALLBACK = _Callback()


class _AllOfWaiter:
    """Adapter: counts down event completions, then fires the collector."""

    __slots__ = ("sim", "collector", "remaining", "events")

    def __init__(self, sim: Simulator, collector: SimEvent, remaining: dict, events: list[SimEvent]):
        self.sim = sim
        self.collector = collector
        self.remaining = remaining
        self.events = events

    def notify(self, _value: Any) -> None:
        self.remaining["n"] -= 1
        if self.remaining["n"] == 0:
            self.collector.trigger([ev.value for ev in self.events])
