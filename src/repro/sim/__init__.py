"""Discrete-event simulation substrate.

The paper evaluates PYTHIA with real MPI applications on the Paravance
cluster.  This repo replaces that environment with a deterministic
discrete-event simulator: application skeletons run as coroutine
*processes* whose communication and compute phases advance a simulated
clock.  PYTHIA itself only consumes the resulting event streams and
timestamps, so the oracle code paths exercised are identical.
"""

from repro.sim.engine import AllOf, DeadlockError, Process, SimEvent, Simulator
from repro.sim.resources import Barrier, Latch, Mailbox
from repro.sim.rng import StreamRNG

__all__ = [
    "AllOf",
    "Barrier",
    "DeadlockError",
    "Latch",
    "Mailbox",
    "Process",
    "SimEvent",
    "Simulator",
    "StreamRNG",
]
