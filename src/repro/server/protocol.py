"""Wire protocol of the oracle service.

Frames are length-prefixed JSON: a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON.  The format is deliberately
dumb — traces are tiny (tens of rules), requests are tinier, and JSON
keeps every exchange greppable with ``socat | head``.

Requests are objects with an ``op`` field; responses carry ``ok`` plus
either the result fields or ``error``/``code``.  Two payload details
need care so that a remote prediction is *byte-identical* to a local
one:

- event payloads may be tuples (the registry interns them); they cross
  the wire with the same ``["__tuple__", ...]`` convention the trace
  file uses, so ``(name, payload)`` resolves to the same terminal;
- prediction distributions are keyed by ``int | None`` — JSON objects
  would stringify the keys, so they travel as ``[terminal, weight]``
  pairs instead.

The fused ``observe_predict`` op reuses both encodings unchanged: its
response carries the ``matched`` flag(s) next to the same
``prediction`` object a plain ``predict`` would return (``null`` when
the oracle is lost or ``require_match`` skipped the predict half), so a
fused round trip decodes with the same helpers as two separate ones.

Tracing context (optional, both directions):

- a request may carry ``ctx = {"sid": str, "rid": int}`` — the
  client's session id and a monotonically increasing request id.  A
  daemon that does not understand ``ctx`` ignores it (unknown request
  fields are not errors), so old daemons interoperate.  A valid ``ctx``
  binds the identity to the connection, after which requests need no
  stamp at all: a bare request on a bound connection inherits the sid,
  and — because a stream connection delivers requests in order — the
  daemon assigns it the next consecutive rid, reproducing the client's
  own counter.  The context rides *every* request of a traced client,
  so the steady-state form costs zero request bytes;
- a reply to a traced request carries ``srv = [queue_us, handler_us]``
  (integer microseconds) — server-side timing that lets the client
  decompose its observed round-trip latency into wire/queue/handler.
  Positional for the same reason prediction distributions travel as
  ``[terminal, weight]`` pairs: it is the one reply field that exists
  on every traced exchange.  No rid is echoed — a connection answers
  in request order, so the client correlates replies itself.  Clients
  that predate ``srv`` ignore it.  Neither field changes any existing
  key, so the formats are forward- and backward-compatible.

Binary framing (protocol v2)
----------------------------
Steady-state ``observe_predict`` spends more time in the JSON encoder
and on the wire than in the tracker, so v2 adds a second, compact
framing that coexists with JSON *per frame* on one connection:

- a binary frame starts with the magic byte ``0xA7`` followed by a
  fixed ``>BBHI`` header (magic, opcode, flags, body length).  A JSON
  frame's first byte is the high byte of its length, which is always
  ``0x00`` while ``max_frame`` stays below 16 MiB — so the first byte
  of every frame says which framing follows, no connection state
  needed, and replies mirror the request's framing;
- hot requests (:data:`OP_OBSERVE` / :data:`OP_OBSERVE_PREDICT` /
  :data:`OP_PREDICT`) carry a ``>IIH`` body — numeric session id,
  interned terminal id, distance — instead of strings: the client
  resolves ``(name, payload)`` against the registry it fetched at
  ``open_session`` (event-id interning), exactly the lookup the daemon
  would have done, so predictions stay byte-identical across framings
  (an event absent from the registry sets :data:`F_UNKNOWN_EVENT` and
  the daemon runs the same ``observe_unknown`` path);
- replies pack matched/prediction into flags + a fixed-layout body
  (IEEE-754 doubles travel exactly); traced replies prepend the same
  ``(queue_us, handler_us)`` pair ``srv`` carries in JSON;
- ``OP_JSON`` wraps a regular JSON object in a binary frame (used by
  peers that want one framing for everything — the supervisor's
  router understands it);
- everything else — negotiation (``hello``), ``open_session``,
  batches, admin ops — stays length-prefixed JSON, so old clients,
  ``socat`` debugging and the admin/HTTP surfaces work unchanged.

Negotiation is one JSON ``hello`` request: a v2 daemon answers
``{"ok": true, "binary": true}``, an old daemon answers ``unknown_op``
and the client stays on JSON for good.  A binary frame reaching an old
daemon reads as a length >= ``0xA7000000`` and is refused as
:class:`FrameTooLarge` — loud, immediate, and impossible after a
completed ``hello``.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Hashable

from repro.core.predict import Prediction

__all__ = [
    "BIN_MAGIC",
    "BIN_OPS",
    "BIN_REQ",
    "DEFAULT_MAX_FRAME",
    "RETRYABLE_CODES",
    "ProtocolError",
    "FrameTooLarge",
    "ConnectionClosed",
    "FrameParser",
    "OP_JSON",
    "OP_OBSERVE",
    "OP_OBSERVE_PREDICT",
    "OP_PREDICT",
    "OP_REPLY_ERROR",
    "OP_REPLY_MATCHED",
    "OP_REPLY_PREDICT",
    "F_WITH_TIME",
    "F_REQUIRE_MATCH",
    "F_UNKNOWN_EVENT",
    "F_MATCHED",
    "F_HAS_PRED",
    "F_HAS_ETA",
    "F_HAS_SRV",
    "SRV_PAIR",
    "read_frame",
    "read_frame_any",
    "write_frame",
    "encode_json_body",
    "encode_json_frame",
    "encode_bin_frame",
    "encode_bin_error",
    "decode_bin_error",
    "encode_payload",
    "decode_payload",
    "encode_prediction",
    "decode_prediction",
    "encode_bin_prediction",
    "decode_bin_prediction",
]

_HEADER = struct.Struct(">I")

#: refuse frames beyond this many bytes (a batch of ~100k events fits
#: comfortably; anything larger is a bug or an attack, not a request)
DEFAULT_MAX_FRAME = 8 * 1024 * 1024

# -- binary framing (protocol v2) --------------------------------------

#: first byte of every binary frame.  A JSON frame's first byte is its
#: length's high byte — 0x00 for any frame under 16 MiB — so one peek
#: at the first byte decides the framing.
BIN_MAGIC = 0xA7

#: (magic, opcode, flags, body length)
_BIN_HEADER = struct.Struct(">BBHI")

# request opcodes
OP_JSON = 0x00  # body is a UTF-8 JSON object (request or reply)
OP_OBSERVE = 0x01
OP_OBSERVE_PREDICT = 0x02
OP_PREDICT = 0x03
# reply opcodes
OP_REPLY_MATCHED = 0x10
OP_REPLY_PREDICT = 0x11
OP_REPLY_ERROR = 0x1F  # body: JSON {"code": ..., "error": ...}

#: binary request opcode -> the JSON op name it is equivalent to
BIN_OPS = {
    OP_OBSERVE: "observe",
    OP_OBSERVE_PREDICT: "observe_predict",
    OP_PREDICT: "predict",
}

# request flags
F_WITH_TIME = 0x01
F_REQUIRE_MATCH = 0x02
F_UNKNOWN_EVENT = 0x04  # event absent from the registry: observe_unknown
# reply flags
F_MATCHED = 0x01
F_HAS_PRED = 0x02
F_HAS_ETA = 0x04
F_HAS_SRV = 0x08

#: hot-request body: (session number, terminal id, distance)
BIN_REQ = struct.Struct(">IIH")

#: traced-reply timing prefix: (queue_us, handler_us) — the binary
#: spelling of the JSON ``srv`` pair
SRV_PAIR = struct.Struct(">II")

# prediction body: terminal (i64, -1 = None), probability (f64),
# [eta f64 when F_HAS_ETA], count (u32), then count x (terminal, weight)
_PRED_HEAD = struct.Struct(">qd")
_PRED_ETA = struct.Struct(">d")
_PRED_COUNT = struct.Struct(">I")
_PRED_ITEM = struct.Struct(">qd")

#: error codes that mean "the request was fine, the daemon just cannot
#: take it right now" — a client may retry them (against the same daemon
#: after a restart, or another one) without changing the request.
#: ``shutting_down`` is what a draining daemon answers between SIGTERM
#: and the drain deadline; the session it names dies with the daemon, so
#: retrying means reconnect + reopen + resync, not a blind resend.
RETRYABLE_CODES = frozenset({"shutting_down"})


class ProtocolError(Exception):
    """The peer sent something that is not a valid frame."""


class FrameTooLarge(ProtocolError):
    """A frame announced a length beyond the configured maximum."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection (mid-frame if ``partial``)."""

    def __init__(self, message: str = "connection closed", *, partial: bool = False):
        super().__init__(message)
        self.partial = partial


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes, ``None`` on clean EOF at a boundary."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 16))
        if not chunk:
            if got == 0:
                return None
            raise ConnectionClosed(
                f"connection closed mid-frame ({got}/{n} bytes)", partial=True
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket, *, max_frame: int = DEFAULT_MAX_FRAME) -> dict | None:
    """Read one frame; ``None`` on clean EOF before a header.

    Raises :class:`FrameTooLarge` for oversized announcements and
    :class:`ProtocolError` for bodies that are not a JSON object.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise FrameTooLarge(f"frame of {length} bytes exceeds limit {max_frame}")
    body = _recv_exact(sock, length) if length else b""
    if body is None:
        raise ConnectionClosed("connection closed mid-frame", partial=True)
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(f"frame body must be a JSON object, got {type(obj).__name__}")
    return obj


def _parse_json_body(body: bytes) -> dict:
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(f"frame body must be a JSON object, got {type(obj).__name__}")
    return obj


def read_frame_any(
    sock: socket.socket, *, max_frame: int = DEFAULT_MAX_FRAME
) -> tuple | None:
    """Read one frame of either framing; ``None`` on clean EOF.

    Returns ``("json", obj)`` for a length-prefixed JSON frame or
    ``("bin", opcode, flags, body)`` for a binary one — the first byte
    decides (see :data:`BIN_MAGIC`).  Raises the same errors as
    :func:`read_frame`.
    """
    first = _recv_exact(sock, 1)
    if first is None:
        return None
    if first[0] != BIN_MAGIC:
        rest = _recv_exact(sock, _HEADER.size - 1)
        if rest is None:
            raise ConnectionClosed("connection closed mid-frame", partial=True)
        (length,) = _HEADER.unpack(first + rest)
        if length > max_frame:
            raise FrameTooLarge(f"frame of {length} bytes exceeds limit {max_frame}")
        body = _recv_exact(sock, length) if length else b""
        if body is None:
            raise ConnectionClosed("connection closed mid-frame", partial=True)
        return "json", _parse_json_body(body)
    rest = _recv_exact(sock, _BIN_HEADER.size - 1)
    if rest is None:
        raise ConnectionClosed("connection closed mid-frame", partial=True)
    _magic, opcode, flags, length = _BIN_HEADER.unpack(first + rest)
    if length > max_frame:
        raise FrameTooLarge(f"frame of {length} bytes exceeds limit {max_frame}")
    body = _recv_exact(sock, length) if length else b""
    if body is None:
        raise ConnectionClosed("connection closed mid-frame", partial=True)
    return "bin", opcode, flags, body


class FrameParser:
    """Incremental parser over a fed byte buffer, both framings.

    The event-loop daemon reads sockets non-blockingly and feeds raw
    chunks here; :meth:`next_frame` yields complete frames in arrival
    order (same return shapes as :func:`read_frame_any`) or ``None``
    when more bytes are needed.  A framing violation — oversized length
    announcement, non-JSON body — poisons the parser permanently: the
    byte stream has no recoverable resync point after a bad header, so
    every later call re-raises and the connection must be closed.
    """

    __slots__ = ("max_frame", "_buf", "_dead")

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buf = bytearray()
        self._dead: ProtocolError | None = None

    def feed(self, data: bytes) -> None:
        if data:
            self._buf += data

    def __len__(self) -> int:
        return len(self._buf)

    def next_frame(self) -> tuple | None:
        if self._dead is not None:
            raise self._dead
        try:
            return self._next()
        except ProtocolError as exc:
            self._dead = exc
            raise

    def _next(self) -> tuple | None:
        buf = self._buf
        if not buf:
            return None
        if buf[0] != BIN_MAGIC:
            if len(buf) < _HEADER.size:
                return None
            (length,) = _HEADER.unpack_from(buf)
            if length > self.max_frame:
                raise FrameTooLarge(
                    f"frame of {length} bytes exceeds limit {self.max_frame}"
                )
            end = _HEADER.size + length
            if len(buf) < end:
                return None
            body = bytes(buf[_HEADER.size:end])
            del buf[:end]
            return "json", _parse_json_body(body)
        if len(buf) < _BIN_HEADER.size:
            return None
        _magic, opcode, flags, length = _BIN_HEADER.unpack_from(buf)
        if length > self.max_frame:
            raise FrameTooLarge(
                f"frame of {length} bytes exceeds limit {self.max_frame}"
            )
        end = _BIN_HEADER.size + length
        if len(buf) < end:
            return None
        body = bytes(buf[_BIN_HEADER.size:end])
        del buf[:end]
        return "bin", opcode, flags, body


def encode_json_body(obj: dict, *, extra: str | None = None) -> bytes:
    """Serialize ``obj`` (+ optional pre-serialized ``extra`` splice)."""
    body = json.dumps(obj, separators=(",", ":"))
    if extra:
        body = body[:-1] + extra + "}"
    return body.encode("utf-8")


def encode_json_frame(
    obj: dict,
    *,
    max_frame: int = DEFAULT_MAX_FRAME,
    extra: str | None = None,
) -> bytes:
    """A length-prefixed JSON frame as bytes (socketless write_frame).

    Same ``extra`` splice as :func:`write_frame`; used where frames are
    buffered instead of written — the event-loop daemon's reply queue
    and the client's pipelined sends.
    """
    encoded = encode_json_body(obj, extra=extra)
    if len(encoded) > max_frame:
        raise FrameTooLarge(f"frame of {len(encoded)} bytes exceeds limit {max_frame}")
    return _HEADER.pack(len(encoded)) + encoded


def encode_bin_frame(
    opcode: int, flags: int = 0, body: bytes = b"",
    *, max_frame: int = DEFAULT_MAX_FRAME,
) -> bytes:
    """One binary frame as bytes (header + body)."""
    if len(body) > max_frame:
        raise FrameTooLarge(f"frame of {len(body)} bytes exceeds limit {max_frame}")
    return _BIN_HEADER.pack(BIN_MAGIC, opcode, flags, len(body)) + body


def encode_bin_error(code: str, message: str) -> bytes:
    """An :data:`OP_REPLY_ERROR` frame (body mirrors the JSON error shape)."""
    body = json.dumps({"code": code, "error": message}).encode("utf-8")
    return encode_bin_frame(OP_REPLY_ERROR, 0, body)


def decode_bin_error(body: bytes, offset: int = 0) -> tuple[str, str]:
    """``(code, message)`` from an :data:`OP_REPLY_ERROR` body."""
    obj = _parse_json_body(bytes(body[offset:]))
    return str(obj.get("code", "error")), str(obj.get("error", "unknown error"))


def write_frame(
    sock: socket.socket,
    obj: dict,
    *,
    max_frame: int = DEFAULT_MAX_FRAME,
    extra: str | None = None,
    scratch: bytearray | None = None,
) -> None:
    """Serialize ``obj`` and send it as one frame.

    ``extra`` is a pre-serialized JSON fragment (``',"key":<value>'``)
    spliced in before the object's closing brace.  Hot paths use it to
    attach a per-request field (tracing ctx, reply timing) without
    paying the encoder for the nested dict — the bytes on the wire are
    identical to encoding the field normally.  The caller guarantees
    the fragment is valid JSON and ``obj`` is a non-empty dict (every
    protocol frame carries at least ``op`` or ``ok``).

    ``scratch`` is an optional reusable send buffer: header and body
    are assembled in place and sent as one ``sendall``, skipping the
    per-frame ``header + body`` concatenation (a fresh allocation on
    every request).  Frames larger than the buffer fall back to the
    allocating path; the bytes on the wire are identical either way.
    """
    body = json.dumps(obj, separators=(",", ":"))
    if extra:
        body = body[:-1] + extra + "}"
    encoded = body.encode("utf-8")
    n = len(encoded)
    if n > max_frame:
        raise FrameTooLarge(f"frame of {n} bytes exceeds limit {max_frame}")
    if scratch is not None and _HEADER.size + n <= len(scratch):
        _HEADER.pack_into(scratch, 0, n)
        scratch[_HEADER.size : _HEADER.size + n] = encoded
        sock.sendall(memoryview(scratch)[: _HEADER.size + n])
    else:
        sock.sendall(_HEADER.pack(n) + encoded)


# ----------------------------------------------------------------------
# value encodings
# ----------------------------------------------------------------------


def encode_payload(payload: Hashable):
    """Event payload -> JSON value (tuples use the trace-file convention).

    Tuples become ``["__tuple__", <elements>]`` at every nesting level,
    so ``decode_payload(encode_payload(p)) == p`` holds for any payload
    built from JSON scalars and tuples — including ``()``, a literal
    ``("__tuple__",)`` and nested tuples.
    """
    if isinstance(payload, tuple):
        return ["__tuple__", *(encode_payload(item) for item in payload)]
    return payload


def decode_payload(obj) -> Hashable:
    """Inverse of :func:`encode_payload`.

    A JSON list is only valid as a sentinel-tagged tuple: payloads are
    hashable, so a *bare* list can never come from ``encode_payload``
    and is rejected instead of being guessed into a tuple (the old
    leniency made encode/decode non-inverse).  Raises
    :class:`ValueError` — a request-level error, not a framing one.
    """
    if isinstance(obj, list):
        if not obj or obj[0] != "__tuple__":
            raise ValueError(
                "ambiguous payload: bare JSON lists are not valid payloads; "
                "tuples use the ['__tuple__', ...] sentinel"
            )
        return tuple(decode_payload(item) for item in obj[1:])
    return obj


def encode_prediction(pred: Prediction | None) -> dict | None:
    """Prediction -> JSON object (``None`` stays ``None``: oracle lost)."""
    if pred is None:
        return None
    return {
        "terminal": pred.terminal,
        "probability": pred.probability,
        "eta": pred.eta,
        "distribution": [[t, w] for t, w in pred.distribution.items()],
    }


def decode_prediction(obj: dict | None) -> Prediction | None:
    """Inverse of :func:`encode_prediction`."""
    if obj is None:
        return None
    return Prediction(
        terminal=obj["terminal"],
        probability=obj["probability"],
        eta=obj.get("eta"),
        distribution={t: w for t, w in obj.get("distribution", [])},
    )


def encode_bin_prediction(pred: Prediction | None) -> tuple[int, bytes]:
    """Prediction -> ``(reply flag bits, body bytes)``.

    ``None`` (oracle lost / require_match skipped) encodes as no
    :data:`F_HAS_PRED` flag and an empty body.  Terminals are i64 with
    ``-1`` for the end-of-execution ``None``; probabilities, etas and
    distribution weights are IEEE-754 doubles, which Python floats are,
    so a decoded prediction is bit-for-bit the encoded one.
    """
    if pred is None:
        return 0, b""
    flags = F_HAS_PRED
    parts = [_PRED_HEAD.pack(
        -1 if pred.terminal is None else pred.terminal, pred.probability
    )]
    if pred.eta is not None:
        flags |= F_HAS_ETA
        parts.append(_PRED_ETA.pack(pred.eta))
    dist = pred.distribution
    parts.append(_PRED_COUNT.pack(len(dist)))
    for t, w in dist.items():
        parts.append(_PRED_ITEM.pack(-1 if t is None else t, w))
    return flags, b"".join(parts)


def decode_bin_prediction(
    flags: int, body: bytes, offset: int = 0
) -> Prediction | None:
    """Inverse of :func:`encode_bin_prediction` (reads from ``offset``)."""
    if not flags & F_HAS_PRED:
        return None
    terminal, probability = _PRED_HEAD.unpack_from(body, offset)
    offset += _PRED_HEAD.size
    eta = None
    if flags & F_HAS_ETA:
        (eta,) = _PRED_ETA.unpack_from(body, offset)
        offset += _PRED_ETA.size
    (count,) = _PRED_COUNT.unpack_from(body, offset)
    offset += _PRED_COUNT.size
    distribution: dict = {}
    for _ in range(count):
        t, w = _PRED_ITEM.unpack_from(body, offset)
        offset += _PRED_ITEM.size
        distribution[None if t == -1 else t] = w
    return Prediction(
        terminal=None if terminal == -1 else terminal,
        probability=probability,
        eta=eta,
        distribution=distribution,
    )
