"""Wire protocol of the oracle service.

Frames are length-prefixed JSON: a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON.  The format is deliberately
dumb — traces are tiny (tens of rules), requests are tinier, and JSON
keeps every exchange greppable with ``socat | head``.

Requests are objects with an ``op`` field; responses carry ``ok`` plus
either the result fields or ``error``/``code``.  Two payload details
need care so that a remote prediction is *byte-identical* to a local
one:

- event payloads may be tuples (the registry interns them); they cross
  the wire with the same ``["__tuple__", ...]`` convention the trace
  file uses, so ``(name, payload)`` resolves to the same terminal;
- prediction distributions are keyed by ``int | None`` — JSON objects
  would stringify the keys, so they travel as ``[terminal, weight]``
  pairs instead.

The fused ``observe_predict`` op reuses both encodings unchanged: its
response carries the ``matched`` flag(s) next to the same
``prediction`` object a plain ``predict`` would return (``null`` when
the oracle is lost or ``require_match`` skipped the predict half), so a
fused round trip decodes with the same helpers as two separate ones.

Tracing context (optional, both directions):

- a request may carry ``ctx = {"sid": str, "rid": int}`` — the
  client's session id and a monotonically increasing request id.  A
  daemon that does not understand ``ctx`` ignores it (unknown request
  fields are not errors), so old daemons interoperate.  A valid ``ctx``
  binds the identity to the connection, after which requests need no
  stamp at all: a bare request on a bound connection inherits the sid,
  and — because a stream connection delivers requests in order — the
  daemon assigns it the next consecutive rid, reproducing the client's
  own counter.  The context rides *every* request of a traced client,
  so the steady-state form costs zero request bytes;
- a reply to a traced request carries ``srv = [queue_us, handler_us]``
  (integer microseconds) — server-side timing that lets the client
  decompose its observed round-trip latency into wire/queue/handler.
  Positional for the same reason prediction distributions travel as
  ``[terminal, weight]`` pairs: it is the one reply field that exists
  on every traced exchange.  No rid is echoed — a connection answers
  in request order, so the client correlates replies itself.  Clients
  that predate ``srv`` ignore it.  Neither field changes any existing
  key, so the formats are forward- and backward-compatible.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Hashable

from repro.core.predict import Prediction

__all__ = [
    "DEFAULT_MAX_FRAME",
    "RETRYABLE_CODES",
    "ProtocolError",
    "FrameTooLarge",
    "ConnectionClosed",
    "read_frame",
    "write_frame",
    "encode_payload",
    "decode_payload",
    "encode_prediction",
    "decode_prediction",
]

_HEADER = struct.Struct(">I")

#: refuse frames beyond this many bytes (a batch of ~100k events fits
#: comfortably; anything larger is a bug or an attack, not a request)
DEFAULT_MAX_FRAME = 8 * 1024 * 1024

#: error codes that mean "the request was fine, the daemon just cannot
#: take it right now" — a client may retry them (against the same daemon
#: after a restart, or another one) without changing the request.
#: ``shutting_down`` is what a draining daemon answers between SIGTERM
#: and the drain deadline; the session it names dies with the daemon, so
#: retrying means reconnect + reopen + resync, not a blind resend.
RETRYABLE_CODES = frozenset({"shutting_down"})


class ProtocolError(Exception):
    """The peer sent something that is not a valid frame."""


class FrameTooLarge(ProtocolError):
    """A frame announced a length beyond the configured maximum."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection (mid-frame if ``partial``)."""

    def __init__(self, message: str = "connection closed", *, partial: bool = False):
        super().__init__(message)
        self.partial = partial


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes, ``None`` on clean EOF at a boundary."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 16))
        if not chunk:
            if got == 0:
                return None
            raise ConnectionClosed(
                f"connection closed mid-frame ({got}/{n} bytes)", partial=True
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket, *, max_frame: int = DEFAULT_MAX_FRAME) -> dict | None:
    """Read one frame; ``None`` on clean EOF before a header.

    Raises :class:`FrameTooLarge` for oversized announcements and
    :class:`ProtocolError` for bodies that are not a JSON object.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise FrameTooLarge(f"frame of {length} bytes exceeds limit {max_frame}")
    body = _recv_exact(sock, length) if length else b""
    if body is None:
        raise ConnectionClosed("connection closed mid-frame", partial=True)
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(f"frame body must be a JSON object, got {type(obj).__name__}")
    return obj


def write_frame(
    sock: socket.socket,
    obj: dict,
    *,
    max_frame: int = DEFAULT_MAX_FRAME,
    extra: str | None = None,
    scratch: bytearray | None = None,
) -> None:
    """Serialize ``obj`` and send it as one frame.

    ``extra`` is a pre-serialized JSON fragment (``',"key":<value>'``)
    spliced in before the object's closing brace.  Hot paths use it to
    attach a per-request field (tracing ctx, reply timing) without
    paying the encoder for the nested dict — the bytes on the wire are
    identical to encoding the field normally.  The caller guarantees
    the fragment is valid JSON and ``obj`` is a non-empty dict (every
    protocol frame carries at least ``op`` or ``ok``).

    ``scratch`` is an optional reusable send buffer: header and body
    are assembled in place and sent as one ``sendall``, skipping the
    per-frame ``header + body`` concatenation (a fresh allocation on
    every request).  Frames larger than the buffer fall back to the
    allocating path; the bytes on the wire are identical either way.
    """
    body = json.dumps(obj, separators=(",", ":"))
    if extra:
        body = body[:-1] + extra + "}"
    encoded = body.encode("utf-8")
    n = len(encoded)
    if n > max_frame:
        raise FrameTooLarge(f"frame of {n} bytes exceeds limit {max_frame}")
    if scratch is not None and _HEADER.size + n <= len(scratch):
        _HEADER.pack_into(scratch, 0, n)
        scratch[_HEADER.size : _HEADER.size + n] = encoded
        sock.sendall(memoryview(scratch)[: _HEADER.size + n])
    else:
        sock.sendall(_HEADER.pack(n) + encoded)


# ----------------------------------------------------------------------
# value encodings
# ----------------------------------------------------------------------


def encode_payload(payload: Hashable):
    """Event payload -> JSON value (tuples use the trace-file convention)."""
    if isinstance(payload, tuple):
        return ["__tuple__", *payload]
    return payload


def decode_payload(obj) -> Hashable:
    """Inverse of :func:`encode_payload` (mirrors EventRegistry.from_obj)."""
    if isinstance(obj, list):
        if obj and obj[0] == "__tuple__":
            return tuple(obj[1:])
        return tuple(obj)
    return obj


def encode_prediction(pred: Prediction | None) -> dict | None:
    """Prediction -> JSON object (``None`` stays ``None``: oracle lost)."""
    if pred is None:
        return None
    return {
        "terminal": pred.terminal,
        "probability": pred.probability,
        "eta": pred.eta,
        "distribution": [[t, w] for t, w in pred.distribution.items()],
    }


def decode_prediction(obj: dict | None) -> Prediction | None:
    """Inverse of :func:`encode_prediction`."""
    if obj is None:
        return None
    return Prediction(
        terminal=obj["terminal"],
        probability=obj["probability"],
        eta=obj.get("eta"),
        distribution={t: w for t, w in obj.get("distribution", [])},
    )
