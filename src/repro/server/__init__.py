"""Oracle service: a multi-client PYTHIA-PREDICT daemon.

The paper links the oracle into each runtime process, so every execution
re-loads and re-indexes the grammar and concurrent applications cannot
share anything.  This subsystem splits record from serve:

- :mod:`repro.server.store` — :class:`TraceStore`, an LRU-bounded,
  concurrency-safe cache of loaded trace bundles (one load per trace
  file, shared by every session);
- :mod:`repro.server.daemon` — :class:`OracleServer`, a threaded daemon
  speaking a length-prefixed JSON protocol over a Unix socket (TCP
  optional), one tracker per session, per-connection error isolation;
- :mod:`repro.server.client` — :class:`PythiaClient`, a drop-in
  predict-mode replacement for the :class:`~repro.core.oracle.Pythia`
  facade;
- :mod:`repro.server.protocol` — the framing and value encodings.

- :mod:`repro.server.supervisor` — :class:`OracleSupervisor`, the
  multi-process serving tier: N worker processes (each a full
  ``OracleServer``) behind one listening socket, sessions pinned to
  workers by consistent hash (fd passing over ``SCM_RIGHTS``), crashed
  workers restarted, per-worker telemetry merged into one exposition;
  workers share grammars through mmap'd compiled artifacts
  (:mod:`repro.core.mmap_grammar`) so a host pays one parse and one
  page-cache copy per trace regardless of worker count.

Start a daemon with ``pythia-trace serve --socket /tmp/pythia.sock`` (or
:class:`OracleServer` in-process) and point any number of applications
at it with ``PythiaClient(trace_path, socket="/tmp/pythia.sock")``.
Add ``--workers N`` to scale across cores.

The stack is fault tolerant end to end: the client reconnects with
capped exponential backoff (:class:`RetryPolicy`), replays a ring of
recent events to resynchronise its daemon session, and degrades to an
in-process oracle (or honest ``lost`` predictions) when the daemon stays
unreachable; the daemon drains gracefully on SIGTERM, answering late
requests with the retryable ``shutting_down`` code.
"""

from repro.server.client import OracleServiceError, PythiaClient, RetryPolicy
from repro.server.daemon import OracleServer, RequestError
from repro.server.protocol import (
    DEFAULT_MAX_FRAME,
    RETRYABLE_CODES,
    ConnectionClosed,
    FrameTooLarge,
    ProtocolError,
    read_frame,
    write_frame,
)
from repro.server.store import TraceBundle, TraceStore
from repro.server.supervisor import HashRing, OracleSupervisor

__all__ = [
    "DEFAULT_MAX_FRAME",
    "RETRYABLE_CODES",
    "ConnectionClosed",
    "FrameTooLarge",
    "HashRing",
    "OracleServer",
    "OracleServiceError",
    "OracleSupervisor",
    "ProtocolError",
    "PythiaClient",
    "RequestError",
    "RetryPolicy",
    "TraceBundle",
    "TraceStore",
    "read_frame",
    "write_frame",
]
