"""Worker process of the multi-worker oracle daemon.

Run as ``python -m repro.server.worker`` by
:class:`~repro.server.supervisor.OracleSupervisor` — never by hand.
Each worker is a full :class:`~repro.server.daemon.OracleServer` in its
own process (its own GIL, its own metrics registry, its own
session/tracker state) that receives work over two inherited socket
pairs instead of a listener:

- the **connection channel**: client connections the supervisor
  accepted and routed here arrive as file descriptors over
  ``SCM_RIGHTS`` (:func:`socket.recv_fds`); each is adopted into the
  server's normal per-connection serving loop;
- the **RPC channel**: supervisor-originated control requests
  (``metrics`` / ``sessions`` / ``stats`` / ``ping`` / ``drain``) in
  the regular frame protocol, answered inline — this is how the
  supervisor aggregates per-worker telemetry into one exposition.

In the supervisor's ``routing="kernel"`` mode the worker additionally
binds its own ``SO_REUSEPORT`` TCP listener on the shared port, letting
the kernel balance accepts across the worker group.

Grammar sharing: the worker's :class:`~repro.server.store.TraceStore`
runs with ``use_mmap=True``, so all workers of a host map one compiled
artifact per trace (compiled exactly once under the artifact lock)
instead of each parsing the JSON trace.

Shutdown: SIGTERM (or either channel reaching EOF — the supervisor
died) drains the server within the configured deadline, then exits.
The supervisor restarts workers that exit unexpectedly; clients ride
through either via their reconnect/resync layer.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
import threading

from repro.obs.log import get_logger
from repro.obs.metrics import render_prometheus
from repro.obs.profiler import profiler_from_env
from repro.server.daemon import OracleServer, RequestError
from repro.server.protocol import ProtocolError, read_frame, write_frame
from repro.server.store import TraceStore

_log = get_logger("worker")

#: ops the supervisor may issue over the RPC channel
RPC_OPS = frozenset({"metrics", "sessions", "stats", "ping", "drain",
                     "profile", "history"})


def _handle_rpc(server: OracleServer, request: dict, stop: threading.Event) -> dict:
    op = request.get("op")
    try:
        if op == "metrics":
            return {"ok": True, "metrics": render_prometheus()}
        if op == "sessions":
            return {"ok": True, **server._op_sessions(request, 0)}
        if op == "stats":
            return {"ok": True, **server._op_stats({}, 0)}
        if op == "profile":
            # collapsed text only: the supervisor merges per-worker
            # stacks itself before rendering a tier-wide flamegraph
            return {"ok": True, **server._op_profile_dump(
                {"seconds": request.get("seconds", 0), "format": "collapsed",
                 "hz": request.get("hz", 0)}, 0)}
        if op == "history":
            return {"ok": True, **server._op_history(request, 0)}
        if op == "ping":
            return {"ok": True, "pong": True, "worker": server.worker_id,
                    "pid": os.getpid()}
        if op == "drain":
            stop.set()
            return {"ok": True, "draining": True}
        return {"ok": False, "code": "bad_request", "error": f"unknown rpc op {op!r}"}
    except RequestError as exc:
        return {"ok": False, "code": exc.code, "error": str(exc)}
    except Exception as exc:  # never let one RPC kill the channel
        return {"ok": False, "code": "internal", "error": str(exc)}


def _rpc_loop(server: OracleServer, chan: socket.socket, stop: threading.Event) -> None:
    while not stop.is_set():
        try:
            request = read_frame(chan)
        except (ProtocolError, OSError):
            break
        if request is None:
            break  # supervisor closed its end: time to go
        try:
            write_frame(chan, _handle_rpc(server, request, stop))
        except OSError:
            break
    stop.set()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="pythia oracle worker (internal)")
    parser.add_argument("--worker-id", type=int, required=True)
    parser.add_argument("--conn-fd", type=int, required=True,
                        help="socketpair fd receiving routed connection fds")
    parser.add_argument("--rpc-fd", type=int, required=True,
                        help="socketpair fd for supervisor control requests")
    parser.add_argument("--cache-size", type=int, default=8)
    parser.add_argument("--drain-deadline", type=float, default=5.0)
    parser.add_argument("--no-mmap", action="store_true",
                        help="parse JSON traces instead of mapping artifacts")
    parser.add_argument("--tcp-listen", default=None, metavar="HOST:PORT",
                        help="bind an SO_REUSEPORT listener (kernel routing mode)")
    args = parser.parse_args(argv)

    store = TraceStore(capacity=args.cache_size, use_mmap=not args.no_mmap)
    tcp_address = None
    if args.tcp_listen:
        host, _, port = args.tcp_listen.rpartition(":")
        tcp_address = (host, int(port))
    server = OracleServer(
        store=store,
        worker_id=args.worker_id,
        tcp_address=tcp_address,
        reuse_port=tcp_address is not None,
    )
    server.start()
    # long-lived daemon process: continuous profiling on by default
    # (19 Hz; PYTHIA_PROFILE_HZ=0 opts out, any other value overrides)
    profiler_from_env(default_hz=19.0)

    conn_chan = socket.socket(fileno=args.conn_fd)
    rpc_chan = socket.socket(fileno=args.rpc_fd)
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_sig: stop.set())
    # Ctrl-C in a foreground `serve --workers N` hits the whole process
    # group; shutdown is the supervisor's job (drain RPC, then SIGTERM),
    # so a worker must not die mid-recv_fds with a KeyboardInterrupt.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    rpc_thread = threading.Thread(
        target=_rpc_loop, args=(server, rpc_chan, stop),
        name="pythia-worker-rpc", daemon=True,
    )
    rpc_thread.start()
    _log.info("worker_started", worker=args.worker_id, pid=os.getpid(),
              mmap=not args.no_mmap)

    conn_chan.settimeout(0.25)  # poll the stop flag between deliveries
    try:
        while not stop.is_set():
            try:
                msg, fds, _flags, _addr = socket.recv_fds(conn_chan, 1, 1)
            except TimeoutError:
                continue
            except OSError:
                break
            if not msg and not fds:
                break  # supervisor closed the channel
            for fd in fds:
                try:
                    server.adopt(socket.socket(fileno=fd))
                except (OSError, RuntimeError):
                    try:
                        os.close(fd)
                    except OSError:
                        pass
    finally:
        _log.info("worker_draining", worker=args.worker_id)
        server.drain(args.drain_deadline)
        server.stop()
        for chan in (conn_chan, rpc_chan):
            try:
                chan.close()
            except OSError:
                pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
