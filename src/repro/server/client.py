"""Client-side mirror of the :class:`~repro.core.oracle.Pythia` facade.

A runtime system that links against :class:`Pythia` can switch to a
shared daemon by swapping one constructor::

    oracle = Pythia(trace_path, mode="predict")          # in-process
    oracle = PythiaClient(trace_path, socket=sock_path)  # remote daemon

Everything the interposers touch behaves identically: ``event`` returns
the matched flag, ``predict`` returns the same :class:`Prediction`
(terminal, probability, eta and distribution are byte-identical — the
daemon runs the same tracker over the same grammar), ``registry`` is
fetched once from the daemon, per-``thread`` addressing opens one
daemon session per thread lazily, and an unknown thread raises
:class:`KeyError` just like the facade.

The client only *predicts*: recording stays local (record anywhere,
predict from one long-lived daemon).  It is safe to share between
threads — requests are serialized over one connection.
"""

from __future__ import annotations

import os
import socket
import threading
from typing import Hashable

from repro.core.events import EventRegistry
from repro.core.explain import Explanation
from repro.core.predict import Prediction
from repro.core.trace_file import TraceFormatError
from repro.obs.accuracy import aggregate_stats
from repro.server.protocol import (
    DEFAULT_MAX_FRAME,
    ProtocolError,
    decode_prediction,
    encode_payload,
    read_frame,
    write_frame,
)

__all__ = ["OracleServiceError", "PythiaClient"]


class OracleServiceError(RuntimeError):
    """The daemon answered with an error the facade has no analog for."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class PythiaClient:
    """Remote PYTHIA-PREDICT oracle over an oracle-service daemon.

    Parameters
    ----------
    trace_path:
        Reference trace the daemon should serve (a path valid *on the
        daemon's host*; with a Unix socket that is this machine).
    socket:
        Unix socket path, or a ``(host, port)`` tuple for TCP.
    max_candidates:
        Tracker bound, forwarded to the daemon per session.
    timeout:
        Socket timeout in seconds for connect and each request.
    """

    mode = "predict"

    def __init__(
        self,
        trace_path: str | os.PathLike,
        *,
        socket: str | os.PathLike | tuple[str, int],
        max_candidates: int = 64,
        timeout: float | None = 30.0,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        self.trace_path = os.fspath(trace_path)
        self.address = socket
        self.max_frame = max_frame
        self._max_candidates = max_candidates
        self._lock = threading.Lock()
        self._sessions: dict[int, str] = {}
        self._registry: EventRegistry | None = None
        self._finished = False
        self._sock = self._connect(socket, timeout)

    @staticmethod
    def _connect(address, timeout) -> socket.socket:
        if isinstance(address, tuple):
            sock = socket.create_connection(address, timeout=timeout)
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(os.fspath(address))
        return sock

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------

    def _request(self, op: str, **fields) -> dict:
        request = {"op": op, **fields}
        with self._lock:
            write_frame(self._sock, request, max_frame=self.max_frame)
            response = read_frame(self._sock, max_frame=self.max_frame)
        if response is None:
            raise ProtocolError("daemon closed the connection")
        if response.get("ok"):
            return response
        code = response.get("code", "error")
        message = response.get("error", "unknown error")
        # map daemon error codes back onto the facade's exceptions
        if code == "no_such_thread":
            raise KeyError(message)
        if code == "trace_not_found":
            raise FileNotFoundError(message)
        if code == "trace_format":
            raise TraceFormatError(message)
        raise OracleServiceError(code, message)

    def _session(self, thread: int) -> str:
        sid = self._sessions.get(thread)
        if sid is None:
            response = self._request(
                "open_session",
                trace=self.trace_path,
                thread=thread,
                max_candidates=self._max_candidates,
                with_registry=self._registry is None,
            )
            sid = response["session"]
            self._sessions[thread] = sid
            if self._registry is None and "registry" in response:
                self._registry = EventRegistry.from_obj(response["registry"])
        return sid

    # ------------------------------------------------------------------
    # the Pythia facade surface
    # ------------------------------------------------------------------

    @property
    def recording(self) -> bool:
        """Always False: the client never records (record stays local)."""
        return False

    @property
    def predicting(self) -> bool:
        """Always True: a client is a predict-mode oracle."""
        return True

    @property
    def registry(self) -> EventRegistry:
        """The daemon's event registry for this trace (fetched once)."""
        if self._registry is None:
            response = self._request("registry", trace=self.trace_path)
            self._registry = EventRegistry.from_obj(response["registry"])
        return self._registry

    def event(
        self,
        name: str,
        payload: Hashable = None,
        *,
        timestamp: float | None = None,
        thread: int = 0,
    ) -> bool:
        """Submit one event; True when it matched the oracle's expectation."""
        if self._finished:
            raise RuntimeError("oracle already finished")
        del timestamp  # predict mode never records timestamps
        return self._request(
            "observe",
            session=self._session(thread),
            name=name,
            payload=encode_payload(payload),
        )["matched"]

    def event_batch(
        self, events: list[tuple[str, Hashable]], *, thread: int = 0
    ) -> list[bool]:
        """Submit many events in one round-trip (amortizes the socket)."""
        if self._finished:
            raise RuntimeError("oracle already finished")
        return self._request(
            "observe_batch",
            session=self._session(thread),
            events=[[name, encode_payload(payload)] for name, payload in events],
        )["matched"]

    def event_and_predict(
        self,
        name: str,
        payload: Hashable = None,
        *,
        distance: int = 1,
        thread: int = 0,
        with_time: bool = False,
        timestamp: float | None = None,
        require_match: bool = False,
    ) -> tuple[bool, Prediction | None]:
        """Fused :meth:`event` + :meth:`predict` in one round trip.

        Mirrors ``Pythia.event_and_predict``; the runtime-system loop
        (submit an event, ask about the future) pays one socket round
        trip instead of two.  With ``require_match`` the daemon skips
        the predict half after a mismatch and returns ``None`` for it.
        """
        if self._finished:
            raise RuntimeError("oracle already finished")
        del timestamp  # predict mode never records timestamps
        response = self._request(
            "observe_predict",
            session=self._session(thread),
            name=name,
            payload=encode_payload(payload),
            distance=distance,
            with_time=with_time,
            require_match=require_match,
        )
        return response["matched"], decode_prediction(response["prediction"])

    def event_batch_and_predict(
        self,
        events: list[tuple[str, Hashable]],
        *,
        distance: int = 1,
        thread: int = 0,
        with_time: bool = False,
        require_match: bool = False,
    ) -> tuple[list[bool], Prediction | None]:
        """Submit many events and predict once, in one round trip."""
        if self._finished:
            raise RuntimeError("oracle already finished")
        response = self._request(
            "observe_predict",
            session=self._session(thread),
            events=[[name, encode_payload(payload)] for name, payload in events],
            distance=distance,
            with_time=with_time,
            require_match=require_match,
        )
        return response["matched"], decode_prediction(response["prediction"])

    def predict(
        self, distance: int = 1, *, thread: int = 0, with_time: bool = False
    ) -> Prediction | None:
        """Predict the event ``distance`` steps ahead."""
        response = self._request(
            "predict",
            session=self._session(thread),
            distance=distance,
            with_time=with_time,
        )
        return decode_prediction(response["prediction"])

    def predict_duration(self, distance: int = 1, *, thread: int = 0) -> float | None:
        """Predict the delay until the event ``distance`` steps ahead."""
        return self._request(
            "predict_duration", session=self._session(thread), distance=distance
        )["eta"]

    def explain(
        self,
        distance: int = 1,
        *,
        thread: int = 0,
        top_k: int = 3,
        with_time: bool = False,
    ) -> Explanation | None:
        """Provenance of :meth:`predict`, mirroring ``Pythia.explain``.

        The daemon runs the same tracker, so the returned
        :class:`~repro.core.explain.Explanation` agrees with an
        in-process oracle fed the same events — terminals, probabilities
        and source chains alike.  ``None`` when the session is lost.
        """
        obj = self._request(
            "explain",
            session=self._session(thread),
            distance=distance,
            top_k=top_k,
            with_time=with_time,
        )["explanation"]
        return Explanation.from_obj(obj) if obj is not None else None

    def flight_journal(self, thread: int = 0) -> list[dict]:
        """This thread's daemon-side flight journal (mirrors the facade)."""
        entries = self._request(
            "flight_dump", session=self._session(thread), format="jsonl"
        )["entries"]
        return entries or []

    def flight_dump(self, *, thread: int = 0, format: str = "jsonl") -> dict:
        """The raw ``flight_dump`` response: journal + drift report."""
        return self._request(
            "flight_dump", session=self._session(thread), format=format
        )

    def describe(self, prediction: Prediction | None) -> str:
        """Human-readable form of a prediction (mirrors the facade)."""
        if prediction is None:
            return "<no prediction: oracle is lost>"
        if prediction.terminal is None:
            return f"<end of execution, p={prediction.probability:.2f}>"
        name = self.registry.name(prediction.terminal)
        eta = f", eta={prediction.eta:.6f}" if prediction.eta is not None else ""
        return f"<{name}, p={prediction.probability:.2f}{eta}>"

    def stats(self, thread: int | None = None) -> dict:
        """Tracking counters and accuracy report, mirroring the facade.

        ``thread=None`` aggregates every session this client opened;
        a thread id returns that session's view.
        """
        if thread is not None:
            return self._request("stats", session=self._session(thread))["session_stats"]
        threads = sorted(self._sessions) or [0]
        reports = [
            self._request("stats", session=self._session(t))["session_stats"]
            for t in threads
        ]
        return aggregate_stats(reports)

    def server_stats(self) -> dict:
        """Daemon-wide counters (sessions, cache, latency aggregates)."""
        return self._request("stats")

    def finish(self) -> None:
        """Close every session and the connection; returns None.

        Mirrors ``Pythia.finish`` in predict mode (which returns None);
        safe to call once.
        """
        if self._finished:
            raise RuntimeError("oracle already finished")
        self._finished = True
        try:
            for sid in self._sessions.values():
                self._request("close_session", session=sid)
        except (OSError, ProtocolError, OracleServiceError):
            pass  # daemon gone: sessions die with the connection anyway
        finally:
            self._sessions.clear()
            try:
                self._sock.close()
            except OSError:
                pass
        return None

    close = finish

    def __enter__(self) -> "PythiaClient":
        return self

    def __exit__(self, *exc) -> None:
        if not self._finished:
            self.finish()
