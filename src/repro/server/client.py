"""Client-side mirror of the :class:`~repro.core.oracle.Pythia` facade.

A runtime system that links against :class:`Pythia` can switch to a
shared daemon by swapping one constructor::

    oracle = Pythia(trace_path, mode="predict")          # in-process
    oracle = PythiaClient(trace_path, socket=sock_path)  # remote daemon

Everything the interposers touch behaves identically: ``event`` returns
the matched flag, ``predict`` returns the same :class:`Prediction`
(terminal, probability, eta and distribution are byte-identical — the
daemon runs the same tracker over the same grammar), ``registry`` is
fetched once from the daemon, per-``thread`` addressing opens one
daemon session per thread lazily, and an unknown thread raises
:class:`KeyError` just like the facade.

The client only *predicts*: recording stays local (record anywhere,
predict from one long-lived daemon).  It is safe to share between
threads — requests are serialized over one connection.

Fault tolerance
---------------
The daemon sits on the critical path of every interposed runtime, so a
daemon hiccup must never take the host application with it.  The client
therefore:

- **never reuses a desynchronized socket** — any timeout, ``OSError``
  or :class:`~repro.server.protocol.ProtocolError` mid-request closes
  the connection immediately (a request that timed out mid-reply would
  otherwise leave half a frame on the wire and the *next* request would
  decode the stale bytes as its answer);
- **reconnects with capped exponential backoff plus jitter** under a
  per-request retry budget and deadline (:class:`RetryPolicy`);
- **re-establishes its sessions after a reconnect** — a ring of the
  most recent observed events per thread (``resync_window``) is
  replayed through ``observe_batch``, so the fresh daemon-side tracker
  attaches mid-stream and resynchronises (§II-B2); while the ring
  still covers the whole run (or with ``resync_window=None``, which
  keeps the full history) the post-resync prediction stream is
  byte-identical to an uninterrupted run, and with a bounded ring the
  top prediction converges immediately while residual candidate mass
  may differ by a fraction of a percent;
- **degrades instead of crashing** — when the retry budget is
  exhausted the client switches permanently to an in-process
  :class:`Pythia` over the same trace path (``fallback="local"``), or
  to reporting every prediction as lost (``fallback="lost"``), or
  re-raises (``fallback="raise"``).  The local fallback is seeded with
  the rings, so it starts resynchronised.

Every transition is observable: ``pythia_client_reconnects_total`` /
``pythia_client_retries_total`` / ``pythia_client_fallbacks_total``
counters, a client-side flight recorder journaling each reconnect,
resync and fallback (dumped via ``PYTHIA_FLIGHT_DIR``), and the same
counters mirrored on :attr:`PythiaClient.counters`.

Request tracing
---------------
Unless ``context=False``, every request is stamped with a ``ctx``
field: a client-lifetime session id (:attr:`session_id`, stable across
reconnects and daemon restarts, so one logical run stays one trace)
and a monotonically increasing request id — each *transmitted attempt*
gets a fresh rid, so retries never reuse one.  The full ``ctx`` rides
only until the daemon first echoes timing back (proof the identity is
bound to the connection); from then on requests carry no stamp at all
— the daemon counts consecutive rids on the bound connection, mirror
of the client's own counter, so steady-state tracing adds zero bytes
to the request.  A context-aware daemon echoes server-side timing (``srv``:
queue and handler microseconds) in each reply, and the client
decomposes its observed round-trip into
**wire** (the residual), **queue** and **handler** components:
``pythia_client_request_seconds{op=...,component=...}`` histograms,
:attr:`last_timing`, and :meth:`timing_report`.  With span recording
on (``PYTHIA_SPANS=1`` / :func:`~repro.obs.spans.enable_spans`) each
request also emits a ``client.<op>`` span tagged ``sid``/``rid`` that
correlates 1:1 with the daemon's ``server.<op>`` span.  Old daemons
simply ignore ``ctx`` and return no ``srv``; only the total is then
recorded.
"""

from __future__ import annotations

import json
import os
import random
import socket
import threading
import uuid
from collections import deque
from dataclasses import dataclass
from time import monotonic, perf_counter, sleep
from typing import Hashable

from repro.core.events import Event, EventRegistry
from repro.core.explain import Explanation
from repro.core.predict import Prediction
from repro.core.trace_file import TraceFormatError
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs.accuracy import aggregate_stats
from repro.obs.flight import FlightRecorder
from repro.obs.log import get_logger
from repro.obs.metrics import LATENCY_BUCKETS_S
from repro.server.protocol import (
    BIN_REQ,
    DEFAULT_MAX_FRAME,
    F_HAS_SRV,
    F_MATCHED,
    F_REQUIRE_MATCH,
    F_UNKNOWN_EVENT,
    F_WITH_TIME,
    OP_OBSERVE,
    OP_OBSERVE_PREDICT,
    OP_PREDICT,
    OP_REPLY_ERROR,
    OP_REPLY_MATCHED,
    OP_REPLY_PREDICT,
    RETRYABLE_CODES,
    SRV_PAIR,
    ProtocolError,
    decode_bin_error,
    decode_bin_prediction,
    decode_payload,
    decode_prediction,
    encode_bin_frame,
    encode_json_frame,
    encode_payload,
    read_frame,
    read_frame_any,
    write_frame,
)

__all__ = ["OraclePipeline", "OracleServiceError", "PythiaClient", "RetryPolicy"]

#: JSON op name -> binary opcode for the requests that have a binary
#: spelling (protocol v2 hot path)
_BIN_OPCODES = {
    "observe": OP_OBSERVE,
    "observe_predict": OP_OBSERVE_PREDICT,
    "predict": OP_PREDICT,
}

_log = get_logger("client")


class OracleServiceError(RuntimeError):
    """The daemon answered with an error the facade has no analog for."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


@dataclass(frozen=True)
class RetryPolicy:
    """How hard a :class:`PythiaClient` fights for one request.

    A *retry* is one failed attempt (connect refused, request timed
    out, connection broke, daemon answered ``shutting_down``).  After
    ``max_retries`` retries — or once ``deadline`` seconds have been
    spent on the request including backoff sleeps — the client stops
    retrying and enters degraded mode (see ``fallback``).

    Backoff before retry *n* (1-based) is
    ``min(cap, base * 2**(n-1)) * (1 + jitter * U[0,1))``.
    """

    max_retries: int = 5
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.5
    deadline: float | None = 60.0

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Sleep before retry ``attempt`` (1-based), jittered."""
        base = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        return base * (1.0 + self.jitter * rng.random())


class _UseFallback(Exception):
    """Internal: the retry budget is gone; serve from the fallback."""


class _RetryableFailure(Exception):
    """Internal: this attempt failed but the request may be retried."""

    def __init__(self, cause: BaseException | str) -> None:
        super().__init__(str(cause))
        self.cause = cause if isinstance(cause, BaseException) else None


class _LostOracle:
    """Fallback of last resort: every prediction is honestly lost.

    Used when the daemon is unreachable *and* the trace cannot be
    loaded locally (different host, unreadable file).  Mirrors the
    facade surface the client needs: events never match, predictions
    are ``None``, so a §III-E-aware runtime falls back to its own
    heuristics instead of crashing.
    """

    mode = "predict"

    def event(self, name, payload=None, *, timestamp=None, thread=0) -> bool:
        return False

    def event_and_predict(self, name, payload=None, **kwargs):
        return False, None

    def predict(self, distance=1, *, thread=0, with_time=False):
        return None

    def predict_duration(self, distance=1, *, thread=0):
        return None

    def explain(self, distance=1, *, thread=0, top_k=3, with_time=False):
        return None

    def stats(self, thread=None) -> dict:
        return {"observed": 0, "matched": 0, "unexpected": 0, "unknown": 0,
                "predictions": 0, "lost": True}

    def finish(self) -> None:
        return None


class PythiaClient:
    """Remote PYTHIA-PREDICT oracle over an oracle-service daemon.

    Parameters
    ----------
    trace_path:
        Reference trace the daemon should serve (a path valid *on the
        daemon's host*; with a Unix socket that is this machine).
    socket:
        Unix socket path, or a ``(host, port)`` tuple for TCP.
    max_candidates:
        Tracker bound, forwarded to the daemon per session.
    timeout:
        Socket timeout in seconds for connect and each request I/O.
    retry:
        :class:`RetryPolicy` for reconnect/backoff, or ``None`` to
        fail a request on its first transport error (pre-fault-layer
        behavior, still followed by the fallback).
    resync_window:
        How many recent observed events per thread are kept for session
        replay after a reconnect, or ``None`` to keep the full history.
        The replayed tracker re-attaches mid-stream (§II-B2): its top
        prediction converges within a handful of events, but on
        grammars with long loops a low-weight alternative candidate
        can survive any bounded ring (the ring cannot disambiguate
        *which iteration* the run is in), leaving post-resync
        probabilities a fraction of a percent off an uninterrupted
        run.  ``None`` guarantees byte-identical predictions after a
        resync, at the cost of unbounded memory and a full-history
        replay; the default of 256 bounds both and is exact whenever
        the ring still covers the whole run.
    fallback:
        What happens when the retry budget is exhausted:
        ``"local"`` (default) switches to an in-process
        :class:`~repro.core.oracle.Pythia` over ``trace_path`` (seeded
        with the rings; falls back to ``"lost"`` when the trace cannot
        be loaded locally), ``"lost"`` reports every event unmatched
        and every prediction ``None``, ``"raise"`` re-raises the last
        transport error.
    context:
        Stamp every request with tracing context (``ctx``: session id
        + request id) and decompose reply latency (default True).
        ``False`` restores the pre-tracing wire format byte for byte.
    session_id:
        Override the generated client session id (at most 128 chars;
        useful when an outer system owns correlation ids).
    protocol:
        ``"auto"`` (default) negotiates protocol v2 with one ``hello``
        per connection and uses the compact binary framing for hot
        requests when the daemon supports it, falling back to JSON
        against old daemons.  ``"json"`` skips negotiation and stays on
        JSON (the pre-v2 wire format); ``"binary"`` demands v2 and
        raises :class:`OracleServiceError` (code ``protocol``) when the
        daemon cannot speak it.  Predictions are byte-identical across
        framings — the binary path resolves ``(name, payload)`` against
        the same registry the daemon would use.
    """

    mode = "predict"

    def __init__(
        self,
        trace_path: str | os.PathLike,
        *,
        socket: str | os.PathLike | tuple[str, int],
        max_candidates: int = 64,
        timeout: float | None = 30.0,
        max_frame: int = DEFAULT_MAX_FRAME,
        retry: RetryPolicy | None = RetryPolicy(),
        resync_window: int | None = 256,
        fallback: str = "local",
        context: bool = True,
        session_id: str | None = None,
        protocol: str = "auto",
    ) -> None:
        if fallback not in ("local", "lost", "raise"):
            raise ValueError(f"unknown fallback {fallback!r}")
        if protocol not in ("auto", "json", "binary"):
            raise ValueError(f"unknown protocol {protocol!r}")
        if resync_window is not None and resync_window < 1:
            raise ValueError("resync_window must be >= 1 or None")
        if session_id is not None and not 0 < len(session_id) <= 128:
            raise ValueError("session_id must be 1..128 characters")
        self.trace_path = os.fspath(trace_path)
        self.address = socket
        self.max_frame = max_frame
        self.retry = retry
        self.resync_window = resync_window
        self.fallback = fallback
        self._max_candidates = max_candidates
        self._timeout = timeout
        self._lock = threading.Lock()
        self._sessions: dict[int, str] = {}
        #: daemon session id -> its numeric spelling (the ``snum`` the
        #: open_session reply advertised; what binary frames carry)
        self._snums: dict[str, int] = {}
        #: requested protocol ("auto"/"json"/"binary") vs the per-run
        #: negotiated state: None before the first hello, then "binary"
        #: or "json".  A daemon that answers hello with unknown_op is
        #: old — the state pins to "json" and is never re-negotiated.
        self._protocol = protocol
        self._proto_state: str | None = "json" if protocol == "json" else None
        self._hello_done = protocol == "json"
        self._rings: dict[int, deque] = {}
        self._registry: EventRegistry | None = None
        self._finished = False
        self._degraded = False
        self._fallback_oracle = None
        self._rng = random.Random(f"pythia-client:{self.trace_path}")
        #: client-lifetime session id: stamped into every request's
        #: ``ctx``, stable across reconnects and daemon restarts
        self.session_id = (
            session_id if session_id is not None else f"c{uuid.uuid4().hex[:12]}"
        )
        self._ctx = bool(context)
        self._rid = 0  # last transmitted request id (under self._lock)
        # pre-serialized ctx fragment: per request only the rid varies,
        # so the sid half (escaped once, here) never hits the encoder
        self._ctx_prefix = ',"ctx":{"sid":%s,"rid":' % json.dumps(self.session_id)
        # once a reply carries srv the daemon has bound our identity to
        # this connection and no stamp is needed; reset on reconnect
        self._sid_bound = False
        #: wire/queue/handler/total digests keyed (op, component); the
        #: instruments live in the metrics registry as
        #: pythia_client_request_seconds{op=...,component=...}.  The
        #: hot path appends raw samples to _timing_pending and folds
        #: them into the histograms in batches (same idiom as the
        #: facade's counter bumps) — readers flush first.
        self._timing: dict[tuple[str, str], object] = {}
        #: per-op pending samples as parallel float lists
        #: (totals, srv_totals, queues, handlers): container-free on
        #: the per-request path — building a tuple per reply measurably
        #: taxes the round trip, plain float appends do not
        self._timing_pending: dict[str, tuple] = {}
        # most recent traced reply, as scalars (same rationale;
        # last_timing assembles its dict lazily from these)
        self._lr_op: str | None = None
        self._lr_rid = 0
        self._lr_total = 0.0
        self._lr_q: float | None = None
        self._lr_h: float | None = None
        #: fault-layer counters, mirrored into the metrics registry
        self.counters = {"reconnects": 0, "retries": 0, "fallbacks": 0}
        reg = obs_metrics.get_registry()
        self._m_reconnects = reg.counter(
            "pythia_client_reconnects_total",
            help="Connections re-established to the oracle daemon",
        )
        self._m_retries = reg.counter(
            "pythia_client_retries_total",
            help="Request attempts that failed and were retried",
        )
        self._m_fallbacks = reg.counter(
            "pythia_client_fallbacks_total",
            help="Transitions into degraded (daemon-less) mode",
        )
        self._flight = FlightRecorder(
            64, session=f"client.{os.path.basename(self.trace_path)}"
        )
        #: preallocated send buffer: requests are small (tens of bytes
        #: steady-state), so one reused 4 KiB scratch removes the
        #: header+body concat allocation from every round trip; larger
        #: frames (batch resyncs) fall back to the allocating path
        self._send_buf = bytearray(4096)
        #: worker id the daemon advertised at open_session (multi-worker
        #: deployments; None for a single-process daemon)
        self._worker: int | None = None
        self._sock: "socket.socket | None" = None
        try:
            self._sock = self._connect(socket, timeout)
        except OSError as exc:
            # daemon not up yet: stay disconnected, the first request
            # runs the full retry/backoff/fallback machinery
            _log.debug("connect_deferred", error=str(exc))

    @staticmethod
    def _connect(address, timeout) -> socket.socket:
        if isinstance(address, tuple):
            sock = socket.create_connection(address, timeout=timeout)
            # a request is one small frame followed by a blocking read
            # of the reply — exactly the shape Nagle penalizes.  Without
            # this, wire time dominates handler time by ~5x on TCP.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(os.fspath(address))
        return sock

    # ------------------------------------------------------------------
    # fault-tolerant request plumbing
    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True once the client has given up on the daemon."""
        return self._degraded

    def _ring(self, thread: int) -> deque:
        ring = self._rings.get(thread)
        if ring is None:
            ring = self._rings[thread] = deque(maxlen=self.resync_window)
        return ring

    def _invalidate_connection(self) -> None:
        """Drop the socket and every session living on it.

        Called on any transport error: after a timeout or protocol
        violation the byte stream position is unknown, so the socket
        must never be reused — and the daemon closes our sessions when
        the connection dies, so the session ids are dead too.
        """
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._sessions.clear()
        self._snums.clear()
        self._sid_bound = False  # a fresh connection starts unbound
        # negotiation is per connection (a restarted daemon may have
        # been up- or downgraded) — but a pinned "json" state stays
        if self._protocol != "json":
            self._hello_done = False

    def _timing_hist(self, op: str, component: str):
        """The (op, component) latency digest, created on first use."""
        hist = self._timing.get((op, component))
        if hist is None:
            hist = obs_metrics.get_registry().histogram(
                "pythia_client_request_seconds",
                {"op": op, "component": component},
                buckets=LATENCY_BUCKETS_S,
                help="Client-observed request latency split into "
                     "wire/queue/handler/total components",
            )
            self._timing[(op, component)] = hist
        return hist

    def _emit_span(
        self, rec, op: str, t0: float, total_s: float, queue_s, handler_s
    ) -> None:
        """Emit one ``client.<op>`` span (only with a recorder active)."""
        attrs = {
            "op": op, "sid": self.session_id, "rid": self._rid,
            "total_us": round(total_s * 1e6, 1),
        }
        if queue_s is not None:
            wire_s = total_s - queue_s - handler_s
            attrs.update(
                wire_us=round(wire_s * 1e6, 1) if wire_s > 0.0 else 0.0,
                queue_us=round(queue_s * 1e6, 1),
                handler_us=round(handler_s * 1e6, 1),
            )
        rec.emit(f"client.{op}", t0, total_s, **attrs)

    def _flush_timing(self) -> None:
        """Fold pending raw samples into the (op, component) digests.

        Called under ``self._lock`` (hot path when a batch fills, and
        every reader before looking at ``self._timing``).  The wire
        component — the residual ``total - queue - handler`` (send +
        receive + scheduling) — is derived here, once per batch.
        """
        for op, pend in self._timing_pending.items():
            totals, srv_totals, queues, handlers = pend
            if not totals:
                continue
            self._timing_hist(op, "total").observe_batch(totals)
            if srv_totals:
                wires: list[float] = []
                for total_s, queue_s, handler_s in zip(
                    srv_totals, queues, handlers
                ):
                    wire_s = total_s - queue_s - handler_s
                    wires.append(wire_s if wire_s > 0.0 else 0.0)
                self._timing_hist(op, "wire").observe_batch(wires)
                self._timing_hist(op, "queue").observe_batch(queues)
                self._timing_hist(op, "handler").observe_batch(handlers)
            del totals[:], srv_totals[:], queues[:], handlers[:]

    @property
    def last_timing(self) -> dict | None:
        """Decomposition of the most recent traced reply, in µs.

        ``None`` before any traced request (or with ``context=False``).
        Built lazily from the raw scalars so the per-request cost stays
        off the hot path.
        """
        op = self._lr_op
        if op is None:
            return None
        total_s = self._lr_total
        queue_s = self._lr_q
        handler_s = self._lr_h
        if queue_s is None:
            wire_us = queue_us = handler_us = None
        else:
            wire_s = total_s - queue_s - handler_s
            wire_us = round(wire_s * 1e6, 1) if wire_s > 0.0 else 0.0
            queue_us = round(queue_s * 1e6, 1)
            handler_us = round(handler_s * 1e6, 1)
        return {
            "op": op,
            "sid": self.session_id,
            "rid": self._lr_rid,
            "total_us": round(total_s * 1e6, 1),
            "wire_us": wire_us,
            "queue_us": queue_us,
            "handler_us": handler_us,
        }

    def _roundtrip(self, request: dict) -> dict:
        """One framed exchange on the live socket.

        Stamps the request with tracing context (fresh rid per
        transmitted attempt — a retry must never reuse one) and records
        the reply's latency decomposition.  Raises
        :class:`_RetryableFailure` (after invalidating the connection)
        for transport errors and for the daemon's retryable
        ``shutting_down`` answer; raises the mapped facade exception
        for every other error response.
        """
        assert self._sock is not None
        traced = self._ctx
        extra = None
        bin_frame = None
        if self._proto_state == "binary" and (not traced or self._sid_bound):
            # a binary frame carries no ctx: while unbound, a traced
            # client keeps stamping JSON so the daemon binds (and the
            # supervisor routes) its identity first
            bin_frame = self._bin_encode_request(request)
        if traced:
            self._rid += 1
            if not self._sid_bound:
                extra = self._ctx_prefix + str(self._rid) + "}"
            # else: nothing to stamp — the daemon counts this request's
            # rid itself on the bound connection (the stream delivers in
            # order, so both counters stay in lockstep)
        t0 = perf_counter()
        try:
            if bin_frame is not None:
                self._sock.sendall(bin_frame)
                reply = read_frame_any(self._sock, max_frame=self.max_frame)
                if reply is None:
                    raise ProtocolError("daemon closed the connection")
                response = (
                    reply[1] if reply[0] == "json"
                    else self._bin_decode_reply(reply)
                )
            else:
                write_frame(self._sock, request, max_frame=self.max_frame,
                            extra=extra, scratch=self._send_buf)
                response = read_frame(self._sock, max_frame=self.max_frame)
                if response is None:
                    raise ProtocolError("daemon closed the connection")
        except (OSError, ProtocolError) as exc:
            self._invalidate_connection()
            raise _RetryableFailure(exc) from exc
        if traced:
            # per-request accounting, inlined and container-free: parse
            # srv into two floats, append to parallel per-op lists, and
            # remember the last reply as scalar attributes.  Wire
            # residuals, histogram folds and the last_timing dict are
            # all deferred to the readers (via _flush_timing) — and no
            # tuple or dict is allocated per reply, which is measurably
            # cheaper across a ~50µs round trip.
            total_s = perf_counter() - t0
            srv = response.get("srv")
            op = request["op"]
            pend = self._timing_pending.get(op)
            if pend is None:
                pend = self._timing_pending[op] = ([], [], [], [])
            pend[0].append(total_s)
            queue_s = handler_s = None
            if srv is not None:
                # the daemon echoed timing: our identity is bound to
                # this connection, no stamp is needed from here on
                self._sid_bound = True
                if type(srv) is list and len(srv) == 2:
                    try:
                        queue_s = srv[0] / 1e6
                        handler_s = srv[1] / 1e6
                    except TypeError:  # malformed pair: total-only
                        queue_s = handler_s = None
                    else:
                        pend[1].append(total_s)
                        pend[2].append(queue_s)
                        pend[3].append(handler_s)
            self._lr_op = op
            self._lr_rid = self._rid
            self._lr_total = total_s
            self._lr_q = queue_s
            self._lr_h = handler_s
            if len(pend[0]) >= 512:
                self._flush_timing()
            rec = obs_spans._recorder  # inlined get_recorder(): hot path
            if rec is not None:
                self._emit_span(rec, op, t0, total_s, queue_s, handler_s)
        if response.get("ok"):
            return response
        code = response.get("code", "error")
        message = response.get("error", "unknown error")
        if code in RETRYABLE_CODES:
            # the daemon is draining: this connection has no future
            self._invalidate_connection()
            raise _RetryableFailure(f"[{code}] {message}")
        if code == "no_such_session":
            # our session evaporated while the connection survived
            # (shouldn't happen, but a restarted daemon behind a proxy
            # looks exactly like this): reopen and resync, then retry
            self._snums.pop(request.get("session"), None)
            self._sessions = {
                t: s for t, s in self._sessions.items()
                if s != request.get("session")
            }
            raise _RetryableFailure(f"[{code}] {message}")
        # map daemon error codes back onto the facade's exceptions
        if code == "no_such_thread":
            raise KeyError(message)
        if code == "trace_not_found":
            raise FileNotFoundError(message)
        if code == "trace_format":
            raise TraceFormatError(message)
        raise OracleServiceError(code, message)

    # -- protocol v2: negotiation, binary encode/decode ------------------

    def _do_hello(self) -> None:
        """Negotiate protocol v2 on a fresh connection (one round trip).

        An old daemon answers ``unknown_op`` — the client pins itself
        to JSON and never asks again; a v2 daemon advertises ``binary``
        and hot requests switch framing.  Transport errors propagate as
        :class:`_RetryableFailure` into the normal retry machinery.
        """
        if self._hello_done:
            return
        if self._proto_state == "json":
            self._hello_done = True
            return
        try:
            response = self._roundtrip({"op": "hello", "proto": 2})
        except OracleServiceError as exc:
            if exc.code != "unknown_op":
                raise
            if self._protocol == "binary":
                raise OracleServiceError(
                    "protocol", "daemon does not speak the binary protocol"
                ) from exc
            self._proto_state = "json"  # old daemon: pinned for good
            self._hello_done = True
            return
        self._proto_state = "binary" if response.get("binary") else "json"
        if self._protocol == "binary" and self._proto_state != "binary":
            raise OracleServiceError(
                "protocol", "daemon does not speak the binary protocol"
            )
        self._hello_done = True

    def _bin_encode_request(self, request: dict) -> bytes | None:
        """The binary frame for ``request``, or None when it has no
        binary spelling (batches, unknown snum, missing registry,
        out-of-range fields) — the caller then sends JSON as before."""
        opcode = _BIN_OPCODES.get(request.get("op"))
        if opcode is None or "events" in request:
            return None
        snum = self._snums.get(request.get("session"))
        if snum is None or not 0 <= snum <= 0xFFFFFFFF:
            return None
        distance = request.get("distance", 1)
        if not isinstance(distance, int) or not 1 <= distance <= 0xFFFF:
            return None
        flags = 0
        if request.get("with_time"):
            flags |= F_WITH_TIME
        if request.get("require_match"):
            flags |= F_REQUIRE_MATCH
        terminal = 0
        if opcode != OP_PREDICT:
            registry = self._registry
            name = request.get("name")
            if registry is None or not isinstance(name, str):
                return None
            # event-id interning: the exact lookup the daemon's observe
            # handler would run, against the registry it handed us at
            # open_session — so predictions stay byte-identical.  A miss
            # sets F_UNKNOWN_EVENT and the daemon runs observe_unknown.
            try:
                term = registry.lookup(
                    Event(name, decode_payload(request.get("payload")))
                )
            except ValueError:
                return None
            if term is None:
                flags |= F_UNKNOWN_EVENT
            elif 0 <= term <= 0xFFFFFFFF:
                terminal = term
            else:
                return None
        return encode_bin_frame(
            opcode, flags, BIN_REQ.pack(snum, terminal, distance)
        )

    @staticmethod
    def _bin_decode_reply(reply: tuple) -> dict:
        """A binary reply frame -> the JSON-shaped response dict.

        ``_pred_decoded`` marks an already-materialized
        :class:`Prediction` so the facade skips ``decode_prediction``;
        ``srv`` is rebuilt from the :data:`F_HAS_SRV` prefix so the
        timing decomposition path is framing-blind.
        """
        _kind, opcode, flags, body = reply
        offset = 0
        srv = None
        if flags & F_HAS_SRV:
            q_us, h_us = SRV_PAIR.unpack_from(body, 0)
            srv = [q_us, h_us]
            offset = SRV_PAIR.size
        if opcode == OP_REPLY_ERROR:
            code, message = decode_bin_error(body, offset)
            out: dict = {"ok": False, "code": code, "error": message}
        elif opcode == OP_REPLY_MATCHED:
            out = {"ok": True, "matched": bool(flags & F_MATCHED)}
        elif opcode == OP_REPLY_PREDICT:
            out = {
                "ok": True,
                "matched": bool(flags & F_MATCHED),
                "prediction": decode_bin_prediction(flags, body, offset),
                "_pred_decoded": True,
            }
        else:
            raise ProtocolError(f"unexpected binary reply opcode 0x{opcode:02x}")
        if srv is not None:
            out["srv"] = srv
        return out

    @staticmethod
    def _pred(response: dict) -> Prediction | None:
        """The reply's prediction, whichever framing delivered it."""
        pred = response.get("prediction")
        if response.get("_pred_decoded"):
            return pred
        return decode_prediction(pred)

    def _open_session(self, thread: int) -> str:
        """Open a daemon session for ``thread`` and replay its ring."""
        response = self._roundtrip({
            "op": "open_session",
            "trace": self.trace_path,
            "thread": thread,
            "max_candidates": self._max_candidates,
            "with_registry": self._registry is None,
        })
        sid = response["session"]
        snum = response.get("snum")
        if isinstance(snum, int) and not isinstance(snum, bool):
            self._snums[sid] = snum
        self._worker = response.get("worker")
        if self._registry is None and "registry" in response:
            self._registry = EventRegistry.from_obj(response["registry"])
        ring = self._rings.get(thread)
        if ring:
            self._roundtrip({
                "op": "observe_batch",
                "session": sid,
                "events": [[n, encode_payload(p)] for n, p in ring],
            })
            self._flight.note("resync", thread=thread, replayed=len(ring))
        self._sessions[thread] = sid
        return sid

    def _request(self, op: str, *, thread: int | None = None, **fields) -> dict:
        """Send one request, retrying through reconnects.

        ``thread`` selects (and lazily opens, ring-replaying) a daemon
        session whose id is attached as the ``session`` field.  Raises
        :class:`_UseFallback` once the retry budget is exhausted (or
        the last error, with ``fallback="raise"``).
        """
        request = {"op": op, **fields}
        with self._lock:
            if self._degraded:
                raise _UseFallback()
            policy = self.retry
            attempts = 0
            started = monotonic()
            while True:
                try:
                    if self._sock is None:
                        self._reconnect(attempts)
                    if not self._hello_done:
                        self._do_hello()
                    if thread is not None:
                        sid = self._sessions.get(thread)
                        if sid is None:
                            sid = self._open_session(thread)
                        request["session"] = sid
                    return self._roundtrip(request)
                except _RetryableFailure as exc:
                    attempts += 1
                    self.counters["retries"] += 1
                    self._m_retries.inc()
                    budget_left = policy is not None and (
                        attempts <= policy.max_retries
                        and (
                            policy.deadline is None
                            or monotonic() - started < policy.deadline
                        )
                    )
                    if not budget_left:
                        self._enter_degraded(exc.cause or exc)
                        raise _UseFallback() from exc
                    _log.debug(
                        "request_retry", op=op, attempt=attempts, error=str(exc)
                    )
                    sleep(policy.backoff(attempts, self._rng))

    def _reconnect(self, attempts: int) -> None:
        """One connect attempt; transport errors become retryable."""
        try:
            self._sock = self._connect(self.address, self._timeout)
        except OSError as exc:
            raise _RetryableFailure(exc) from exc
        if attempts:
            self.counters["reconnects"] += 1
            self._m_reconnects.inc()
            self._flight.note("reconnect", attempts=attempts)
            _log.info("reconnected", address=str(self.address), attempts=attempts)

    def _enter_degraded(self, cause: BaseException | None) -> None:
        """Exhausted retry budget: switch to the fallback, permanently."""
        self._invalidate_connection()
        if self.fallback == "raise":
            if isinstance(cause, BaseException) and not isinstance(
                cause, _RetryableFailure
            ):
                raise cause
            raise OracleServiceError(
                "unavailable", f"oracle daemon unreachable: {cause}"
            )
        self.counters["fallbacks"] += 1
        self._m_fallbacks.inc()
        self._degraded = True
        mode = self.fallback
        if mode == "local":
            try:
                from repro.core.oracle import Pythia

                oracle = Pythia(self.trace_path, mode="predict")
                # seed with the rings so the local tracker attaches
                # mid-stream exactly where the daemon session stood
                for thread, ring in self._rings.items():
                    for name, payload in ring:
                        oracle.event(name, payload, thread=thread)
                self._fallback_oracle = oracle
            except (OSError, ValueError) as exc:  # includes TraceFormatError
                _log.warning("local_fallback_failed", error=str(exc))
                mode = "lost"
        if self._fallback_oracle is None:
            self._fallback_oracle = _LostOracle()
        self._flight.note("fallback", mode=mode, cause=str(cause or ""))
        self._flight.auto_dump()
        _log.warning(
            "degraded_mode", mode=mode, trace=self.trace_path,
            cause=str(cause or ""),
        )

    def _session(self, thread: int) -> str:
        """Ensure a live daemon session for ``thread``; returns its id.

        Test/diagnostic helper: runs the same reconnect-and-resync
        machinery as any request, then reports the resulting id.
        """
        self._request("stats", thread=thread)
        return self._sessions[thread]

    def _observed(self, thread: int, events: list[tuple[str, Hashable]]) -> None:
        """Remember successfully observed events for post-reconnect resync."""
        ring = self._ring(thread)
        ring.extend(events)

    # ------------------------------------------------------------------
    # the Pythia facade surface
    # ------------------------------------------------------------------

    @property
    def recording(self) -> bool:
        """Always False: the client never records (record stays local)."""
        return False

    @property
    def predicting(self) -> bool:
        """Always True: a client is a predict-mode oracle."""
        return True

    @property
    def registry(self) -> EventRegistry:
        """The daemon's event registry for this trace (fetched once)."""
        if self._registry is not None:
            return self._registry
        try:
            response = self._request("registry", trace=self.trace_path)
            self._registry = EventRegistry.from_obj(response["registry"])
        except _UseFallback:
            oracle = self._fallback_oracle
            if isinstance(oracle, _LostOracle):
                raise OracleServiceError(
                    "unavailable",
                    "registry unavailable: daemon unreachable and trace "
                    "unreadable locally",
                ) from None
            self._registry = oracle.registry
        return self._registry

    def event(
        self,
        name: str,
        payload: Hashable = None,
        *,
        timestamp: float | None = None,
        thread: int = 0,
    ) -> bool:
        """Submit one event; True when it matched the oracle's expectation."""
        if self._finished:
            raise RuntimeError("oracle already finished")
        del timestamp  # predict mode never records timestamps
        try:
            matched = self._request(
                "observe", thread=thread, name=name, payload=encode_payload(payload)
            )["matched"]
        except _UseFallback:
            matched = self._fallback_oracle.event(name, payload, thread=thread)
        self._observed(thread, [(name, payload)])
        return matched

    def event_batch(
        self, events: list[tuple[str, Hashable]], *, thread: int = 0
    ) -> list[bool]:
        """Submit many events in one round-trip (amortizes the socket)."""
        if self._finished:
            raise RuntimeError("oracle already finished")
        try:
            matched = self._request(
                "observe_batch",
                thread=thread,
                events=[[name, encode_payload(payload)] for name, payload in events],
            )["matched"]
        except _UseFallback:
            oracle = self._fallback_oracle
            matched = [oracle.event(n, p, thread=thread) for n, p in events]
        self._observed(thread, list(events))
        return matched

    def event_and_predict(
        self,
        name: str,
        payload: Hashable = None,
        *,
        distance: int = 1,
        thread: int = 0,
        with_time: bool = False,
        timestamp: float | None = None,
        require_match: bool = False,
    ) -> tuple[bool, Prediction | None]:
        """Fused :meth:`event` + :meth:`predict` in one round trip.

        Mirrors ``Pythia.event_and_predict``; the runtime-system loop
        (submit an event, ask about the future) pays one socket round
        trip instead of two.  With ``require_match`` the daemon skips
        the predict half after a mismatch and returns ``None`` for it.
        """
        if self._finished:
            raise RuntimeError("oracle already finished")
        del timestamp  # predict mode never records timestamps
        try:
            response = self._request(
                "observe_predict",
                thread=thread,
                name=name,
                payload=encode_payload(payload),
                distance=distance,
                with_time=with_time,
                require_match=require_match,
            )
            result = response["matched"], self._pred(response)
        except _UseFallback:
            result = self._fallback_oracle.event_and_predict(
                name, payload, distance=distance, thread=thread,
                with_time=with_time, require_match=require_match,
            )
        self._observed(thread, [(name, payload)])
        return result

    def event_batch_and_predict(
        self,
        events: list[tuple[str, Hashable]],
        *,
        distance: int = 1,
        thread: int = 0,
        with_time: bool = False,
        require_match: bool = False,
    ) -> tuple[list[bool], Prediction | None]:
        """Submit many events and predict once, in one round trip."""
        if self._finished:
            raise RuntimeError("oracle already finished")
        if not events:
            raise ValueError("'events' must be a non-empty list")
        try:
            response = self._request(
                "observe_predict",
                thread=thread,
                events=[[name, encode_payload(payload)] for name, payload in events],
                distance=distance,
                with_time=with_time,
                require_match=require_match,
            )
            result = response["matched"], self._pred(response)
        except _UseFallback:
            oracle = self._fallback_oracle
            matched = [oracle.event(n, p, thread=thread) for n, p in events[:-1]]
            last, pred = oracle.event_and_predict(
                events[-1][0], events[-1][1], distance=distance, thread=thread,
                with_time=with_time, require_match=require_match,
            )
            result = matched + [last], pred
        self._observed(thread, list(events))
        return result

    def pipeline(self, *, thread: int = 0, window: int = 64) -> "OraclePipeline":
        """Pipelined fused observe+predict over ``thread``'s session.

        Returns a context manager::

            with client.pipeline() as pipe:
                for name, payload in events:
                    pipe.submit(name, payload)
            results = pipe.results   # [(matched, prediction) | error, ...]

        ``submit`` buffers requests and ships them in windows of
        ``window`` frames — one ``sendall`` instead of one round trip
        each — then reads the replies back in stream order (the same
        ordering guarantee the implicit-rid ctx scheme already relies
        on).  Replies correlate by position; a daemon-side error (e.g.
        the retryable ``shutting_down`` during a drain) becomes an
        :class:`OracleServiceError` entry at its position instead of a
        tuple.  The resync ring advances only on confirmed replies, so
        a reconnect after a mid-pipeline failure resynchronises to
        exactly the daemon's tracker state.

        The client's lock is held for the duration of the ``with``
        block: do not call other methods of this client from inside it
        (other threads simply wait).  In degraded mode submissions are
        served inline from the fallback oracle.
        """
        if self._finished:
            raise RuntimeError("oracle already finished")
        return OraclePipeline(self, thread, window)

    def predict(
        self, distance: int = 1, *, thread: int = 0, with_time: bool = False
    ) -> Prediction | None:
        """Predict the event ``distance`` steps ahead."""
        try:
            response = self._request(
                "predict", thread=thread, distance=distance, with_time=with_time
            )
        except _UseFallback:
            return self._fallback_oracle.predict(
                distance, thread=thread, with_time=with_time
            )
        return self._pred(response)

    def predict_duration(self, distance: int = 1, *, thread: int = 0) -> float | None:
        """Predict the delay until the event ``distance`` steps ahead."""
        try:
            return self._request(
                "predict_duration", thread=thread, distance=distance
            )["eta"]
        except _UseFallback:
            return self._fallback_oracle.predict_duration(distance, thread=thread)

    def explain(
        self,
        distance: int = 1,
        *,
        thread: int = 0,
        top_k: int = 3,
        with_time: bool = False,
    ) -> Explanation | None:
        """Provenance of :meth:`predict`, mirroring ``Pythia.explain``.

        The daemon runs the same tracker, so the returned
        :class:`~repro.core.explain.Explanation` agrees with an
        in-process oracle fed the same events — terminals, probabilities
        and source chains alike.  ``None`` when the session is lost.
        """
        try:
            obj = self._request(
                "explain",
                thread=thread,
                distance=distance,
                top_k=top_k,
                with_time=with_time,
            )["explanation"]
        except _UseFallback:
            return self._fallback_oracle.explain(
                distance, thread=thread, top_k=top_k, with_time=with_time
            )
        return Explanation.from_obj(obj) if obj is not None else None

    def flight_journal(self, thread: int = 0) -> list[dict]:
        """This thread's daemon-side flight journal (mirrors the facade).

        In degraded mode the client's own journal — which recorded the
        reconnects and the fallback — is returned instead.
        """
        try:
            entries = self._request(
                "flight_dump", thread=thread, format="jsonl"
            )["entries"]
        except _UseFallback:
            return self._flight.entries()
        return entries or []

    def flight_dump(self, *, thread: int = 0, format: str = "jsonl") -> dict:
        """The raw ``flight_dump`` response: journal + drift report."""
        try:
            return self._request("flight_dump", thread=thread, format=format)
        except _UseFallback:
            return {
                "ok": True,
                "session": "degraded",
                "drift": {},
                "entries": self._flight.entries(),
            }

    def describe(self, prediction: Prediction | None) -> str:
        """Human-readable form of a prediction (mirrors the facade)."""
        if prediction is None:
            return "<no prediction: oracle is lost>"
        if prediction.terminal is None:
            return f"<end of execution, p={prediction.probability:.2f}>"
        name = self.registry.name(prediction.terminal)
        eta = f", eta={prediction.eta:.6f}" if prediction.eta is not None else ""
        return f"<{name}, p={prediction.probability:.2f}{eta}>"

    def stats(self, thread: int | None = None) -> dict:
        """Tracking counters and accuracy report, mirroring the facade.

        ``thread=None`` aggregates every session this client opened;
        a thread id returns that session's view.
        """
        if self._degraded:
            return self._fallback_oracle.stats(thread)
        try:
            if thread is not None:
                return self._request("stats", thread=thread)["session_stats"]
            threads = sorted(set(self._sessions) | set(self._rings)) or [0]
            reports = [
                self._request("stats", thread=t)["session_stats"]
                for t in threads
            ]
            return aggregate_stats(reports)
        except _UseFallback:
            return self._fallback_oracle.stats(thread)

    def server_stats(self) -> dict:
        """Daemon-wide counters (sessions, cache, latency aggregates)."""
        try:
            return self._request("stats")
        except _UseFallback:
            raise OracleServiceError(
                "unavailable", "daemon unreachable: client is in degraded mode"
            ) from None

    def fault_stats(self) -> dict:
        """The fault layer's own counters and state (for monitoring)."""
        return {**self.counters, "degraded": self._degraded,
                "fallback": self.fallback}

    def profile_dump(
        self, *, seconds: float = 0.0, format: str = "collapsed", hz: float = 0.0
    ) -> dict:
        """Pull collapsed stacks (or a flamegraph SVG) from the daemon.

        ``seconds > 0`` collects a fresh window — the reply blocks for
        the window, so the request timeout is stretched to cover it.
        """
        request: dict = {"seconds": seconds, "format": format}
        if hz:
            request["hz"] = hz
        old_timeout = self._timeout
        stretch = old_timeout is not None and seconds > 0
        try:
            if stretch:
                self._timeout = max(old_timeout, seconds + 10.0)
                if self._sock is not None:
                    self._sock.settimeout(self._timeout)
            return self._request("profile_dump", **request)
        except _UseFallback:
            raise OracleServiceError(
                "unavailable", "daemon unreachable: client is in degraded mode"
            ) from None
        finally:
            if stretch:
                self._timeout = old_timeout
                if self._sock is not None:
                    try:
                        self._sock.settimeout(old_timeout)
                    except OSError:
                        pass

    def history(
        self, *, window: float | None = None, keys: list[str] | None = None
    ) -> dict:
        """The daemon's metrics-history view (series + per-second rates)."""
        request: dict = {}
        if window is not None:
            request["window"] = window
        if keys is not None:
            request["keys"] = keys
        try:
            return self._request("history", **request)
        except _UseFallback:
            raise OracleServiceError(
                "unavailable", "daemon unreachable: client is in degraded mode"
            ) from None

    def sessions(self) -> dict:
        """The daemon's per-client-session telemetry table."""
        try:
            return self._request("sessions")
        except _UseFallback:
            raise OracleServiceError(
                "unavailable", "daemon unreachable: client is in degraded mode"
            ) from None

    @property
    def worker(self) -> int | None:
        """Worker id serving this client's sessions (multi-worker only).

        Updated at every (re)open; ``None`` until a session exists or
        when the daemon is a single process.
        """
        return self._worker

    def trace_context(self) -> dict:
        """This client's tracing identity: session id and last rid."""
        return {"sid": self.session_id, "rid": self._rid,
                "enabled": self._ctx, "worker": self._worker}

    def timing_histograms(self) -> dict[tuple[str, str], object]:
        """The raw (op, component) latency histograms (for merging)."""
        with self._lock:
            self._flush_timing()
            return dict(self._timing)

    def timing_report(self) -> dict:
        """Latency decomposition per op: count/mean/p50/p99/max in µs.

        Shape: ``{op: {component: {count, mean_us, p50_us, p99_us,
        max_us}}}`` with components ``total`` and — when the daemon
        returns reply timing — ``wire`` / ``queue`` / ``handler``.
        Empty under ``PYTHIA_METRICS=0`` (the digests live in the
        metrics registry) or with ``context=False``.
        """
        with self._lock:
            self._flush_timing()
            hists = sorted(self._timing.items())
        out: dict[str, dict[str, dict]] = {}
        for (op, component), hist in hists:
            snap = hist.snapshot()
            mean = snap["sum"] / snap["count"] if snap["count"] else 0.0
            out.setdefault(op, {})[component] = {
                "count": snap["count"],
                "mean_us": round(mean * 1e6, 1),
                "p50_us": round(snap["p50"] * 1e6, 1),
                "p99_us": round(snap["p99"] * 1e6, 1),
                "max_us": round(snap["max"] * 1e6, 1),
            }
        return out

    def finish(self) -> None:
        """Close every session and the connection; returns None.

        Mirrors ``Pythia.finish`` in predict mode (which returns None);
        safe to call once.  Never retries — a dying client must not
        stall its host on a dead daemon.
        """
        if self._finished:
            raise RuntimeError("oracle already finished")
        self._finished = True
        with self._lock:
            self._flush_timing()  # registry digests catch up before exit
            if self._sock is not None:
                try:
                    for sid in self._sessions.values():
                        self._roundtrip({"op": "close_session", "session": sid})
                except (_RetryableFailure, OracleServiceError, KeyError):
                    pass  # daemon gone: sessions die with the connection anyway
            self._sessions.clear()
            self._invalidate_connection()
            if self._fallback_oracle is not None:
                self._fallback_oracle.finish()
        return None

    close = finish

    def __enter__(self) -> "PythiaClient":
        return self

    def __exit__(self, *exc) -> None:
        if not self._finished:
            self.finish()


class OraclePipeline:
    """Window-pipelined ``observe_predict`` stream (see
    :meth:`PythiaClient.pipeline`).

    ``submit`` order is result order.  :attr:`results` holds, per
    submission, either ``(matched, prediction)`` or an
    :class:`OracleServiceError` (daemon-side refusal — the request was
    delivered and answered, the connection stays usable).  A transport
    failure mid-window raises instead: the replies already read stay in
    :attr:`results`, unanswered submissions are gone, and the client's
    resync ring holds exactly the confirmed prefix.
    """

    #: flush the send buffer early once it holds this many bytes, even
    #: below the window count (keeps frames moving for fat payloads)
    FLUSH_BYTES = 16384

    def __init__(self, client: PythiaClient, thread: int, window: int) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self._client = client
        self._thread = thread
        self.window = int(window)
        self._buf = bytearray()
        self._inflight: list[tuple[str, Hashable]] = []
        self._submitted = 0
        #: per-submission outcomes, in submit order
        self.results: list = []
        #: ``perf_counter()`` at each reply decode (bench instrumentation)
        self.times: list[float] = []
        self._entered = False

    def __enter__(self) -> "OraclePipeline":
        client = self._client
        for _ in range(3):
            if not client._degraded:
                try:
                    # runs hello/open_session/ring-replay through the
                    # normal retry machinery, before we take the lock
                    client._session(self._thread)
                except _UseFallback:
                    pass
            client._lock.acquire()
            if client._degraded or client._sessions.get(self._thread) is not None:
                self._entered = True
                return self
            client._lock.release()  # session died in the gap; reopen
        raise OracleServiceError(
            "unavailable", "could not establish a session to pipeline on"
        )

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if exc_type is None:
                self._cycle()
        finally:
            if self._entered:
                self._entered = False
                self._client._lock.release()

    def submit(
        self,
        name: str,
        payload: Hashable = None,
        *,
        distance: int = 1,
        with_time: bool = False,
        require_match: bool = False,
    ) -> int:
        """Queue one fused observe+predict; returns its result index."""
        assert self._entered, "submit() outside the pipeline's with-block"
        client = self._client
        index = self._submitted
        self._submitted += 1
        if client._degraded:
            self.results.append(client._fallback_oracle.event_and_predict(
                name, payload, distance=distance, thread=self._thread,
                with_time=with_time, require_match=require_match,
            ))
            self.times.append(perf_counter())
            client._ring(self._thread).append((name, payload))
            return index
        request = {
            "op": "observe_predict",
            "session": client._sessions.get(self._thread),
            "name": name,
            "payload": encode_payload(payload),
            "distance": distance,
            "with_time": with_time,
            "require_match": require_match,
        }
        traced = client._ctx
        frame = None
        if client._proto_state == "binary" and (not traced or client._sid_bound):
            frame = client._bin_encode_request(request)
        extra = None
        if traced:
            client._rid += 1
            if not client._sid_bound:
                extra = client._ctx_prefix + str(client._rid) + "}"
        if frame is None:
            frame = encode_json_frame(
                request, max_frame=client.max_frame, extra=extra
            )
        self._buf += frame
        self._inflight.append((name, payload))
        if len(self._inflight) >= self.window or len(self._buf) >= self.FLUSH_BYTES:
            self._cycle()
        return index

    def drain(self) -> list:
        """Flush and read every outstanding reply; returns the results."""
        assert self._entered, "drain() outside the pipeline's with-block"
        self._cycle()
        return list(self.results)

    def _cycle(self) -> None:
        """Ship the buffered window, then read its replies in order."""
        client = self._client
        if not self._inflight:
            return
        sock = client._sock
        if sock is None:
            self._inflight.clear()
            self._buf.clear()
            raise OracleServiceError(
                "unavailable", "connection lost mid-pipeline"
            )
        confirmed: list[tuple[str, Hashable]] = []
        try:
            sock.sendall(self._buf)
            self._buf.clear()
            for item in self._inflight:
                reply = read_frame_any(sock, max_frame=client.max_frame)
                if reply is None:
                    raise ProtocolError("daemon closed the connection")
                response = (
                    reply[1] if reply[0] == "json"
                    else client._bin_decode_reply(reply)
                )
                self.times.append(perf_counter())
                if response.get("srv") is not None:
                    client._sid_bound = True
                if response.get("ok"):
                    self.results.append(
                        (response["matched"], client._pred(response))
                    )
                    # the reply confirms the daemon observed this event
                    confirmed.append(item)
                else:
                    # a refused op (bad_request, shutting_down) was NOT
                    # observed — it must not enter the resync ring
                    self.results.append(OracleServiceError(
                        response.get("code", "error"),
                        response.get("error", "unknown error"),
                    ))
        except (OSError, ProtocolError) as exc:
            client._invalidate_connection()
            # the ring advances by the confirmed prefix only, so a
            # reconnect replays exactly what the daemon observed
            client._ring(self._thread).extend(confirmed)
            self._inflight.clear()
            self._buf.clear()
            raise OracleServiceError(
                "unavailable", f"pipeline transport error: {exc}"
            ) from exc
        client._ring(self._thread).extend(confirmed)
        self._inflight.clear()
