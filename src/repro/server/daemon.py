"""The oracle daemon: many clients, one trace store, one process.

:class:`OracleServer` listens on a Unix socket (TCP optionally) and
speaks the length-prefixed JSON protocol of :mod:`repro.server.protocol`.
Each connection is served by its own thread; each *session* owns one
:class:`~repro.core.predict.PythiaPredict` tracker over a bundle shared
through the :class:`~repro.server.store.TraceStore`, so concurrently
running applications predict from one long-lived process instead of
each reloading the grammar.

Request ops
-----------
``open_session``   ``{trace, thread=0, max_candidates=64, with_registry=false}``
``observe``        ``{session, name, payload=null}`` -> ``{matched}``
``observe_batch``  ``{session, events: [[name, payload], ...]}`` -> ``{matched: [...]}``
``observe_predict`` ``{session, name, payload=null | events, distance=1,
                   with_time=false, require_match=false}``
                   -> ``{matched, prediction}`` — fused observe + predict
``predict``        ``{session, distance=1, with_time=false}`` -> ``{prediction}``
``predict_duration`` ``{session, distance=1}`` -> ``{eta}``
``explain``        ``{session, distance=1, top_k=3, with_time=false,
                   names=false}`` -> ``{explanation}`` — prediction
                   provenance (:mod:`repro.core.explain`)
``flight_dump``    ``{session, format="jsonl"|"chrome"}`` -> the
                   session's flight-recorder journal + drift report
``close_session``  ``{session}``
``stats``          ``{session?}`` — daemon counters, or one tracker's
``metrics``        Prometheus text exposition of the process registry
                   (``pythia-trace metrics`` prints it)

Every session carries a flight recorder (``flight`` entries, default
256, 0 disables) and a drift monitor (``drift=false`` disables) so a
misbehaving client's history is inspectable post-hoc.

Error isolation: a bad request gets an ``{ok: false, code, error}``
response; a broken frame closes only that connection; nothing a client
sends can take the daemon down.

Graceful drain: SIGTERM (under :meth:`OracleServer.serve_forever`) or
:meth:`OracleServer.drain` stops accepting connections, finishes
requests already being served within the drain deadline and answers
anything arriving later with the retryable ``shutting_down`` code —
``close_session``, ``ping``, ``stats`` and ``metrics`` stay answered so
clients shut down cleanly and monitors can watch the drain.
"""

from __future__ import annotations

import itertools
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.core.events import Event
from repro.core.predict import PythiaPredict
from repro.core.trace_file import TraceFormatError
from repro.obs import metrics as obs_metrics
from repro.obs.drift import DriftMonitor
from repro.obs.flight import FlightRecorder
from repro.obs.log import get_logger
from repro.obs.metrics import LATENCY_BUCKETS_S, Histogram, render_prometheus
from repro.server.protocol import (
    DEFAULT_MAX_FRAME,
    ConnectionClosed,
    ProtocolError,
    decode_payload,
    encode_prediction,
    read_frame,
    write_frame,
)
from repro.server.store import TraceBundle, TraceStore

__all__ = ["OracleServer", "RequestError"]

_log = get_logger("server")

#: metric families pre-registered at daemon start so `pythia-trace
#: metrics` exposes them (at zero) before any instrumented code ran
_METRIC_CATALOGUE: tuple[tuple[str, str], ...] = (
    ("pythia_record_events_total", "Events ingested by PYTHIA-RECORD"),
    ("pythia_record_rules_created_total", "Grammar rules created while recording"),
    ("pythia_record_exponent_merges_total",
     "Consecutive-repetition exponent merges while recording"),
    ("pythia_predict_observe_total", "Events observed by PYTHIA-PREDICT trackers"),
    ("pythia_predict_matched_total", "Observed events that matched an expectation"),
    ("pythia_predict_unexpected_total", "Observed events that mismatched (restart)"),
    ("pythia_predict_unknown_total", "Observed events absent from the reference run"),
    ("pythia_predict_predictions_total", "Future-event predictions served"),
    ("pythia_predict_pruned_total", "Candidate chains dropped by pruning"),
    ("pythia_predict_hits_total", "Predictions whose target event matched"),
    ("pythia_predict_misses_total", "Predictions whose target event mismatched"),
    ("pythia_predict_lost_total", "Tracker transitions into the lost state"),
    ("pythia_predict_resyncs_total", "Tracker re-acquisitions after being lost"),
    ("pythia_successor_cache_hits_total", "Successor-machine memo hits"),
    ("pythia_successor_cache_misses_total", "Successor-machine memo misses"),
    ("pythia_successor_cache_evictions_total", "Successor-machine memo evictions"),
    ("pythia_successor_det_hits_total", "Deterministic-transition fast-path hits"),
)


class RequestError(Exception):
    """A request the daemon refuses; becomes an error response."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


@dataclass(slots=True)
class _Session:
    """One client-visible tracking session."""

    session_id: str
    bundle: TraceBundle
    thread: int
    tracker: PythiaPredict
    owner: int  # connection id, for cleanup when the connection dies
    lock: threading.Lock = field(default_factory=threading.Lock)


def _latency_view(hist: Histogram) -> dict[str, float]:
    """One op's latency for the ``stats`` op.

    ``count`` / ``total_ms`` / ``mean_us`` / ``max_us`` reproduce the
    pre-observability ``_LatencyAgg`` shape and are kept as a deprecated
    alias for one release; the percentile keys are the replacement.
    """
    snap = hist.snapshot()
    mean = snap["sum"] / snap["count"] if snap["count"] else 0.0
    return {
        "count": snap["count"],
        "total_ms": round(snap["sum"] * 1e3, 3),
        "mean_us": round(mean * 1e6, 3),
        "max_us": round(snap["max"] * 1e6, 3),
        "p50_us": round(snap["p50"] * 1e6, 3),
        "p95_us": round(snap["p95"] * 1e6, 3),
        "p99_us": round(snap["p99"] * 1e6, 3),
    }


class OracleServer:
    """A multi-client PYTHIA-PREDICT daemon.

    Parameters
    ----------
    socket_path:
        Unix socket to listen on (created on :meth:`start`, unlinked on
        :meth:`stop`).  Mutually exclusive with ``tcp_address``.
    tcp_address:
        Optional ``(host, port)`` to listen on TCP instead; port 0 picks
        a free port (read the bound one from :attr:`address`).
    store:
        Shared :class:`TraceStore`; a private one is created by default.
    max_frame:
        Per-frame byte limit enforced on reads and writes.
    """

    def __init__(
        self,
        socket_path: str | os.PathLike | None = None,
        *,
        tcp_address: tuple[str, int] | None = None,
        store: TraceStore | None = None,
        max_frame: int = DEFAULT_MAX_FRAME,
        max_candidates_limit: int = 4096,
    ) -> None:
        if (socket_path is None) == (tcp_address is None):
            raise ValueError("exactly one of socket_path / tcp_address required")
        self.socket_path = os.fspath(socket_path) if socket_path is not None else None
        self.tcp_address = tcp_address
        self.store = store if store is not None else TraceStore()
        self.max_frame = max_frame
        self.max_candidates_limit = max_candidates_limit
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: set[threading.Thread] = set()
        self._conns: dict[int, socket.socket] = {}
        self._running = threading.Event()
        self._draining = threading.Event()
        self._inflight = 0
        self._lock = threading.Lock()
        self._sessions: dict[str, _Session] = {}
        self._session_ids = itertools.count(1)
        self._conn_ids = itertools.count(1)
        self.counters = {
            "connections_accepted": 0,
            "connections_dropped": 0,  # closed due to a protocol violation
            "sessions_opened": 0,
            "sessions_closed": 0,
            "events_observed": 0,
            "predictions_served": 0,
            "requests_total": 0,
            "requests_failed": 0,
            "requests_rejected_draining": 0,
        }
        #: per-op request latency, shared with the metrics registry
        self._latency: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> str | tuple[str, int]:
        """Where clients connect (socket path, or bound (host, port))."""
        if self.socket_path is not None:
            return self.socket_path
        assert self._listener is not None, "server not started"
        return self._listener.getsockname()[:2]

    def start(self) -> "OracleServer":
        """Bind, listen and spawn the accept loop; returns self."""
        if self._listener is not None:
            raise RuntimeError("server already started")
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except FileNotFoundError:
                pass
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(self.socket_path)
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind(self.tcp_address)
        listener.listen(128)
        self._listener = listener
        self._running.set()
        self._draining.clear()
        registry = obs_metrics.get_registry()
        for name, help_text in _METRIC_CATALOGUE:
            registry.counter(name, help=help_text)
        registry.register_collector(self._collect_metrics)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="pythia-accept", daemon=True
        )
        self._accept_thread.start()
        _log.info("server_started", address=str(self.address))
        return self

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has begun refusing new work."""
        return self._draining.is_set()

    def drain(self, deadline: float = 5.0) -> None:
        """Graceful shutdown, phase one: stop taking new work.

        Stops accepting connections, lets requests already being served
        run to completion (waiting up to ``deadline`` seconds for the
        daemon to go idle) and answers any request arriving meanwhile
        with the retryable ``shutting_down`` error code, so a
        fault-tolerant client reconnects elsewhere instead of failing.
        Returns once idle or at the deadline; call :meth:`stop`
        afterwards to close connections and release the socket.
        """
        if self._listener is None:
            return
        with self._lock:
            already = self._draining.is_set()
            self._draining.set()
        if already:
            return
        _log.info("server_draining", deadline=deadline)
        try:
            self._listener.close()
        except OSError:
            pass
        t0 = time.monotonic()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=deadline)
        while time.monotonic() - t0 < deadline:
            with self._lock:
                if self._inflight == 0:
                    break
            time.sleep(0.005)
        with self._lock:
            leftover = self._inflight
        _log.info("server_drained", inflight_left=leftover)

    def stop(self) -> None:
        """Stop accepting, close every connection, unlink the socket."""
        if self._listener is None:
            return
        self._running.clear()
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        with self._lock:
            conns = list(self._conns.values())
        for conn in conns:
            # shutdown unblocks a connection thread parked in recv();
            # close alone would leave it there until the client went away
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for t in list(self._conn_threads):
            t.join(timeout=5)
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except FileNotFoundError:
                pass
        obs_metrics.get_registry().unregister_collector(self._collect_metrics)
        self._listener = None
        self._accept_thread = None
        _log.info("server_stopped", requests=self.counters["requests_total"])

    def __enter__(self) -> "OracleServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def serve_forever(self, *, drain_deadline: float = 5.0) -> None:
        """Block until interrupted (for the CLI).

        SIGTERM triggers the graceful path: :meth:`drain` (finish
        in-flight requests within ``drain_deadline`` seconds, answer
        late ones with ``shutting_down``) and then :meth:`stop`.
        KeyboardInterrupt skips the drain phase — Ctrl-C means *now*.
        """
        if self._listener is None:
            self.start()
        stop_requested = threading.Event()
        old_handler = None
        in_main = threading.current_thread() is threading.main_thread()
        if in_main:
            old_handler = signal.signal(
                signal.SIGTERM, lambda *_sig: stop_requested.set()
            )
        try:
            while self._running.is_set() and not stop_requested.is_set():
                time.sleep(0.05)
        except KeyboardInterrupt:
            pass
        finally:
            if in_main and old_handler is not None:
                signal.signal(signal.SIGTERM, old_handler)
            if stop_requested.is_set():
                self.drain(drain_deadline)
            self.stop()

    # ------------------------------------------------------------------
    # accept / connection loops
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            conn_id = next(self._conn_ids)
            with self._lock:
                self.counters["connections_accepted"] += 1
                self._conns[conn_id] = conn
            t = threading.Thread(
                target=self._serve_connection,
                args=(conn, conn_id),
                name=f"pythia-conn-{conn_id}",
                daemon=True,
            )
            self._conn_threads.add(t)
            t.start()

    def _serve_connection(self, conn: socket.socket, conn_id: int) -> None:
        """One client, fully isolated: its errors never leave this frame."""
        try:
            while self._running.is_set():
                try:
                    request = read_frame(conn, max_frame=self.max_frame)
                except ProtocolError as exc:
                    # bad framing is unrecoverable on a byte stream:
                    # answer if possible, then drop only this connection
                    with self._lock:
                        self.counters["connections_dropped"] += 1
                    if not isinstance(exc, ConnectionClosed):
                        self._try_send(
                            conn, {"ok": False, "code": "protocol", "error": str(exc)}
                        )
                    return
                if request is None:
                    return  # clean EOF
                with self._lock:
                    rejected = (
                        self._draining.is_set()
                        and request.get("op") not in self._DRAIN_OPS
                    )
                    if rejected:
                        self.counters["requests_rejected_draining"] += 1
                    else:
                        self._inflight += 1
                if rejected:
                    # late request during drain: refuse retryably, keep
                    # the connection so the client can close sessions
                    self._try_send(
                        conn,
                        {
                            "ok": False,
                            "code": "shutting_down",
                            "error": "daemon is draining; reconnect and retry",
                        },
                    )
                    continue
                try:
                    response = self._dispatch(request, conn_id)
                    try:
                        write_frame(conn, response, max_frame=self.max_frame)
                    except OSError:
                        return
                finally:
                    with self._lock:
                        self._inflight -= 1
        except Exception:
            # last-ditch isolation: an unexpected bug serving this client
            # must not unwind into the daemon
            with self._lock:
                self.counters["connections_dropped"] += 1
        finally:
            try:
                conn.close()
            except OSError:
                pass
            self._close_owned_sessions(conn_id)
            with self._lock:
                self._conns.pop(conn_id, None)
            self._conn_threads.discard(threading.current_thread())

    @staticmethod
    def _try_send(conn: socket.socket, obj: dict) -> None:
        try:
            write_frame(conn, obj)
        except OSError:
            pass

    def _close_owned_sessions(self, conn_id: int) -> None:
        with self._lock:
            dead = [s for s in self._sessions.values() if s.owner == conn_id]
            for s in dead:
                del self._sessions[s.session_id]
                self.counters["sessions_closed"] += 1

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, request: dict, conn_id: int) -> dict:
        op = request.get("op")
        handler = self._HANDLERS.get(op)
        t0 = time.perf_counter()
        try:
            if handler is None:
                raise RequestError("unknown_op", f"unknown request op {op!r}")
            result = handler(self, request, conn_id)
            result["ok"] = True
            return result
        except RequestError as exc:
            with self._lock:
                self.counters["requests_failed"] += 1
            return {"ok": False, "code": exc.code, "error": str(exc)}
        except (FileNotFoundError, TraceFormatError, KeyError, ValueError, TypeError) as exc:
            with self._lock:
                self.counters["requests_failed"] += 1
            code = {
                FileNotFoundError: "trace_not_found",
                TraceFormatError: "trace_format",
                KeyError: "no_such_thread",
            }.get(type(exc), "bad_request")
            # KeyError reprs its message; unwrap just that one
            message = str(exc.args[0]) if isinstance(exc, KeyError) and exc.args else str(exc)
            return {"ok": False, "code": code, "error": message}
        except Exception as exc:  # defensive: never leak an exception
            with self._lock:
                self.counters["requests_failed"] += 1
            return {"ok": False, "code": "internal", "error": f"{type(exc).__name__}: {exc}"}
        finally:
            dt = time.perf_counter() - t0
            # bucket unknown ops together: op names are client-controlled
            # and must not grow the latency table without bound
            key = op if isinstance(op, str) and op in self._HANDLERS else "<unknown>"
            with self._lock:
                self.counters["requests_total"] += 1
                hist = self._latency.get(key)
            if hist is None:
                hist = obs_metrics.get_registry().histogram(
                    "pythia_server_request_seconds",
                    {"op": key},
                    buckets=LATENCY_BUCKETS_S,
                    help="Request handling latency per op",
                )
                with self._lock:
                    self._latency.setdefault(key, hist)
            hist.observe(dt)

    def _session(self, request: dict) -> _Session:
        sid = request.get("session")
        with self._lock:
            session = self._sessions.get(sid)
        if session is None:
            raise RequestError("no_such_session", f"unknown session {sid!r}")
        return session

    # -- handlers --------------------------------------------------------

    def _op_open_session(self, request: dict, conn_id: int) -> dict:
        trace = request.get("trace")
        if not isinstance(trace, str):
            raise RequestError("bad_request", "open_session needs a 'trace' path")
        thread = request.get("thread", 0)
        if not isinstance(thread, int):
            raise RequestError("bad_request", "'thread' must be an integer")
        max_candidates = request.get("max_candidates", 64)
        if not isinstance(max_candidates, int) or not (
            1 <= max_candidates <= self.max_candidates_limit
        ):
            raise RequestError(
                "bad_request",
                f"'max_candidates' must be in [1, {self.max_candidates_limit}]",
            )
        flight_capacity = request.get("flight", 256)
        if not isinstance(flight_capacity, int) or not (
            0 <= flight_capacity <= 65536
        ):
            raise RequestError("bad_request", "'flight' must be in [0, 65536]")
        bundle = self.store.get(trace)
        tracker = bundle.tracker(thread, max_candidates=max_candidates)
        with self._lock:
            sid = f"s{next(self._session_ids)}"
            self._sessions[sid] = _Session(sid, bundle, thread, tracker, conn_id)
            self.counters["sessions_opened"] += 1
        if flight_capacity:
            tracker.attach_flight(
                FlightRecorder(
                    flight_capacity,
                    session=f"{sid}.{os.path.basename(bundle.path)}.t{thread}",
                )
            )
        if request.get("drift", True):
            tracker.attach_drift(DriftMonitor())
        _log.debug("session_opened", session=sid, trace=bundle.path, thread=thread)
        out = {
            "session": sid,
            "trace": bundle.path,
            "thread": thread,
            "threads": bundle.threads(),
            "meta": bundle.trace.meta,
            "event_count": bundle.trace.event_count,
        }
        if request.get("with_registry"):
            out["registry"] = bundle.registry.to_obj()
        return out

    def _op_close_session(self, request: dict, conn_id: int) -> dict:
        session = self._session(request)
        with self._lock:
            self._sessions.pop(session.session_id, None)
            self.counters["sessions_closed"] += 1
        return {"session": session.session_id}

    def _observe_one(self, session: _Session, name, payload) -> bool:
        """Mirror of ``Pythia.event`` in predict mode (same semantics)."""
        if not isinstance(name, str):
            raise RequestError("bad_request", "'name' must be a string")
        terminal = session.bundle.registry.lookup(Event(name, decode_payload(payload)))
        tracker = session.tracker
        if terminal is None:
            return tracker.observe_unknown()
        return tracker.observe(terminal)

    def _op_observe(self, request: dict, conn_id: int) -> dict:
        session = self._session(request)
        with session.lock:
            matched = self._observe_one(session, request.get("name"), request.get("payload"))
        with self._lock:
            self.counters["events_observed"] += 1
        return {"matched": matched}

    def _op_observe_batch(self, request: dict, conn_id: int) -> dict:
        session = self._session(request)
        events = request.get("events")
        if not isinstance(events, list):
            raise RequestError("bad_request", "'events' must be a list of [name, payload]")
        matched: list[bool] = []
        with session.lock:
            for item in events:
                if not isinstance(item, (list, tuple)) or not 1 <= len(item) <= 2:
                    raise RequestError(
                        "bad_request", "each event must be [name] or [name, payload]"
                    )
                name = item[0]
                payload = item[1] if len(item) == 2 else None
                matched.append(self._observe_one(session, name, payload))
        with self._lock:
            self.counters["events_observed"] += len(matched)
        return {"matched": matched}

    def _op_observe_predict(self, request: dict, conn_id: int) -> dict:
        """Fused observe + predict: one round trip for the runtime loop.

        Observes ``name``/``payload`` (or, batched, every ``events``
        item) and then predicts once — equivalent to an ``observe`` (or
        ``observe_batch``) request followed by ``predict``, in one frame.
        With ``require_match`` the predict half is skipped when the last
        event mismatched and ``prediction`` is ``null``.
        """
        session = self._session(request)
        distance = request.get("distance", 1)
        if not isinstance(distance, int) or distance < 1:
            raise RequestError("bad_request", "'distance' must be a positive integer")
        with_time = bool(request.get("with_time", False))
        require_match = bool(request.get("require_match", False))
        events = request.get("events")
        batched = events is not None
        if batched:
            if not isinstance(events, list) or not events:
                raise RequestError(
                    "bad_request", "'events' must be a non-empty list of [name, payload]"
                )
        else:
            events = [[request.get("name"), request.get("payload")]]
        matched: list[bool] = []
        with session.lock:
            for item in events:
                if not isinstance(item, (list, tuple)) or not 1 <= len(item) <= 2:
                    raise RequestError(
                        "bad_request", "each event must be [name] or [name, payload]"
                    )
                name = item[0]
                payload = item[1] if len(item) == 2 else None
                matched.append(self._observe_one(session, name, payload))
            predicted = not (require_match and not matched[-1])
            pred = (
                session.tracker.predict(distance, with_time=with_time)
                if predicted
                else None
            )
        with self._lock:
            self.counters["events_observed"] += len(matched)
            if predicted:
                self.counters["predictions_served"] += 1
        return {
            "matched": matched if batched else matched[0],
            "prediction": encode_prediction(pred),
        }

    def _op_predict(self, request: dict, conn_id: int) -> dict:
        session = self._session(request)
        distance = request.get("distance", 1)
        if not isinstance(distance, int) or distance < 1:
            raise RequestError("bad_request", "'distance' must be a positive integer")
        with_time = bool(request.get("with_time", False))
        with session.lock:
            pred = session.tracker.predict(distance, with_time=with_time)
        with self._lock:
            self.counters["predictions_served"] += 1
        return {"prediction": encode_prediction(pred)}

    def _op_predict_duration(self, request: dict, conn_id: int) -> dict:
        session = self._session(request)
        distance = request.get("distance", 1)
        if not isinstance(distance, int) or distance < 1:
            raise RequestError("bad_request", "'distance' must be a positive integer")
        with session.lock:
            eta = session.tracker.predict_duration(distance)
        with self._lock:
            self.counters["predictions_served"] += 1
        return {"eta": eta}

    def _op_explain(self, request: dict, conn_id: int) -> dict:
        """Prediction provenance for one session (``Pythia.explain``).

        ``names=true`` resolves terminal ids to event names server-side,
        saving the client a registry fetch (the CLI uses it).
        """
        session = self._session(request)
        distance = request.get("distance", 1)
        if not isinstance(distance, int) or distance < 1:
            raise RequestError("bad_request", "'distance' must be a positive integer")
        top_k = request.get("top_k", 3)
        if not isinstance(top_k, int) or not 1 <= top_k <= 64:
            raise RequestError("bad_request", "'top_k' must be in [1, 64]")
        with_time = bool(request.get("with_time", False))
        with session.lock:
            explanation = session.tracker.explain(
                distance, top_k=top_k, with_time=with_time
            )
        if explanation is None:
            return {"explanation": None}
        name_of = session.bundle.registry.name if request.get("names") else None
        return {"explanation": explanation.to_obj(name_of)}

    def _op_flight_dump(self, request: dict, conn_id: int) -> dict:
        """One session's flight-recorder journal (+ drift report)."""
        session = self._session(request)
        fmt = request.get("format", "jsonl")
        if fmt not in ("jsonl", "chrome"):
            raise RequestError("bad_request", "'format' must be 'jsonl' or 'chrome'")
        with session.lock:
            flight = session.tracker.flight
            drift = session.tracker.drift
            out: dict = {
                "session": session.session_id,
                "drift": drift.report() if drift is not None else {},
            }
            if flight is None:
                out["entries" if fmt == "jsonl" else "trace"] = None
            elif fmt == "chrome":
                out["trace"] = flight.to_chrome_trace()
            else:
                out["entries"] = flight.entries()
        return out

    def _op_registry(self, request: dict, conn_id: int) -> dict:
        trace = request.get("trace")
        if isinstance(trace, str):
            bundle = self.store.get(trace)
        else:
            bundle = self._session(request).bundle
        return {"registry": bundle.registry.to_obj()}

    def _op_stats(self, request: dict, conn_id: int) -> dict:
        if request.get("session") is not None:
            session = self._session(request)
            with session.lock:
                return {"session_stats": session.tracker.stats()}
        with self._lock:
            return {
                "counters": dict(self.counters),
                "sessions_active": len(self._sessions),
                "session_ids": sorted(self._sessions),
                "store": self.store.snapshot(),
                "latency": {op: _latency_view(h) for op, h in self._latency.items()},
            }

    def _op_metrics(self, request: dict, conn_id: int) -> dict:
        return {"text": render_prometheus(obs_metrics.get_registry())}

    def _collect_metrics(self, registry: obs_metrics.MetricsRegistry) -> None:
        """Scrape-time collector: daemon counters, store and live trackers."""
        with self._lock:
            counters = dict(self.counters)
            sessions = list(self._sessions.values())
            store = self.store.snapshot()
        for name, value in counters.items():
            registry.counter(
                f"pythia_server_{name}", help="Daemon lifetime counter"
            )._set_total(value)
        registry.gauge(
            "pythia_server_sessions_active", help="Currently open sessions"
        ).set(len(sessions))
        registry.gauge(
            "pythia_server_draining", help="1 while the daemon refuses new work"
        ).set(1 if self._draining.is_set() else 0)
        for key in ("hits", "misses"):
            if key in store:
                registry.counter(
                    f"pythia_server_trace_store_{key}_total",
                    help="Trace store lookup outcome",
                )._set_total(store[key])
        for session in sessions:
            with session.lock:
                session.tracker.flush_metrics()

    def _op_ping(self, request: dict, conn_id: int) -> dict:
        return {"pong": True}

    #: ops still answered while draining: clients closing down cleanly
    #: and monitors watching the drain happen must not be locked out
    _DRAIN_OPS = frozenset({"close_session", "ping", "stats", "metrics"})

    _HANDLERS = {
        "open_session": _op_open_session,
        "close_session": _op_close_session,
        "observe": _op_observe,
        "observe_batch": _op_observe_batch,
        "observe_predict": _op_observe_predict,
        "predict": _op_predict,
        "predict_duration": _op_predict_duration,
        "explain": _op_explain,
        "flight_dump": _op_flight_dump,
        "registry": _op_registry,
        "stats": _op_stats,
        "metrics": _op_metrics,
        "ping": _op_ping,
    }
