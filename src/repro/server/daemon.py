"""The oracle daemon: many clients, one trace store, one process.

:class:`OracleServer` listens on a Unix socket (TCP optionally) and
speaks the length-prefixed JSON protocol of :mod:`repro.server.protocol`.
Each connection is served by its own thread; each *session* owns one
:class:`~repro.core.predict.PythiaPredict` tracker over a bundle shared
through the :class:`~repro.server.store.TraceStore`, so concurrently
running applications predict from one long-lived process instead of
each reloading the grammar.

Request ops
-----------
``open_session``   ``{trace, thread=0, max_candidates=64, with_registry=false}``
``observe``        ``{session, name, payload=null}`` -> ``{matched}``
``observe_batch``  ``{session, events: [[name, payload], ...]}`` -> ``{matched: [...]}``
``observe_predict`` ``{session, name, payload=null | events, distance=1,
                   with_time=false, require_match=false}``
                   -> ``{matched, prediction}`` — fused observe + predict
``predict``        ``{session, distance=1, with_time=false}`` -> ``{prediction}``
``predict_duration`` ``{session, distance=1}`` -> ``{eta}``
``explain``        ``{session, distance=1, top_k=3, with_time=false,
                   names=false}`` -> ``{explanation}`` — prediction
                   provenance (:mod:`repro.core.explain`)
``flight_dump``    ``{session, format="jsonl"|"chrome"}`` -> the
                   session's flight-recorder journal + drift report
``close_session``  ``{session}``
``stats``          ``{session?}`` — daemon counters, or one tracker's
``sessions``       the per-client-session telemetry table
                   (:class:`~repro.obs.sessions.SessionStats`), joined
                   with each live tracker's hit rate and drift state
                   (``pythia-trace sessions`` prints it)
``metrics``        Prometheus text exposition of the process registry
                   (``pythia-trace metrics`` prints it)

Request tracing
---------------
Any request may carry an optional ``ctx`` field —
``{"sid": <client session id>, "rid": <monotonic request id>}`` — as
stamped by :class:`~repro.server.client.PythiaClient`.  A valid ``ctx``
also *binds* the identity to the connection: later requests on the
same connection need no stamp at all (zero extra bytes on a path that
runs per event) — they inherit the bound sid, and because the stream
delivers in order, the daemon assigns them consecutive rids that
mirror the client's own counter.  A traced request gets a ``srv``
pair in its reply —
``[queue_us, handler_us]``, positional for the same
stays-terse-on-the-hot-path reason prediction distributions travel as
``[terminal, weight]`` pairs — where ``queue_us`` is the time between
the frame's arrival and its handler starting and ``handler_us`` the
handler's own time, so the client can decompose its observed
round-trip latency into wire / queue / handler (replies come back in
request order on a connection, so the client needs no rid echo to
correlate them).  The context also tags
the daemon's spans (``server.<op>`` with ``sid``/``rid`` attrs), the
per-session latency digests in the
:class:`~repro.obs.sessions.SessionStats` table, and the session's
flight-recorder journal (the client sid is folded into the recorder's
session name at ``open_session``).  Requests without ``ctx`` behave
exactly as before — old clients keep working, and old daemons ignore
``ctx`` — it is just an unknown request field.

Every session carries a flight recorder (``flight`` entries, default
256, 0 disables) and a drift monitor (``drift=false`` disables) so a
misbehaving client's history is inspectable post-hoc.

Error isolation: a bad request gets an ``{ok: false, code, error}``
response; a broken frame closes only that connection; nothing a client
sends can take the daemon down.

Graceful drain: SIGTERM (under :meth:`OracleServer.serve_forever`) or
:meth:`OracleServer.drain` stops accepting connections, finishes
requests already being served within the drain deadline and answers
anything arriving later with the retryable ``shutting_down`` code —
``close_session``, ``ping``, ``stats`` and ``metrics`` stay answered so
clients shut down cleanly and monitors can watch the drain.
"""

from __future__ import annotations

import itertools
import os
import signal
import socket
import struct
import threading
import time
from dataclasses import dataclass, field

from repro.core.events import Event
from repro.core.predict import PythiaPredict
from repro.core.trace_file import TraceFormatError
from repro.obs import history as obs_history
from repro.obs import metrics as obs_metrics
from repro.obs import profiler as obs_profiler
from repro.obs import spans as obs_spans
from repro.obs.accuracy import aggregate_stats
from repro.obs.drift import DriftMonitor
from repro.obs.flight import FlightRecorder
from repro.obs.log import get_logger
from repro.obs.metrics import LATENCY_BUCKETS_S, Histogram, render_prometheus
from repro.obs.process import register_process_metrics
from repro.obs.sessions import DEFAULT_SESSION_CAPACITY, SessionEntry, SessionStats
from repro.server.protocol import (
    BIN_OPS,
    BIN_REQ,
    DEFAULT_MAX_FRAME,
    F_HAS_SRV,
    F_MATCHED,
    F_REQUIRE_MATCH,
    F_UNKNOWN_EVENT,
    F_WITH_TIME,
    OP_JSON,
    OP_OBSERVE,
    OP_OBSERVE_PREDICT,
    OP_PREDICT,
    OP_REPLY_ERROR,
    OP_REPLY_MATCHED,
    OP_REPLY_PREDICT,
    SRV_PAIR,
    ConnectionClosed,
    ProtocolError,
    _parse_json_body,
    decode_payload,
    encode_bin_error,
    encode_bin_frame,
    encode_bin_prediction,
    encode_json_body,
    encode_prediction,
    read_frame_any,
    write_frame,
)
from repro.server.store import TraceBundle, TraceStore

__all__ = ["OracleServer", "RequestError"]

_log = get_logger("server")

#: metric families pre-registered at daemon start so `pythia-trace
#: metrics` exposes them (at zero) before any instrumented code ran
_METRIC_CATALOGUE: tuple[tuple[str, str], ...] = (
    ("pythia_record_events_total", "Events ingested by PYTHIA-RECORD"),
    ("pythia_record_rules_created_total", "Grammar rules created while recording"),
    ("pythia_record_exponent_merges_total",
     "Consecutive-repetition exponent merges while recording"),
    ("pythia_predict_observe_total", "Events observed by PYTHIA-PREDICT trackers"),
    ("pythia_predict_matched_total", "Observed events that matched an expectation"),
    ("pythia_predict_unexpected_total", "Observed events that mismatched (restart)"),
    ("pythia_predict_unknown_total", "Observed events absent from the reference run"),
    ("pythia_predict_predictions_total", "Future-event predictions served"),
    ("pythia_predict_pruned_total", "Candidate chains dropped by pruning"),
    ("pythia_predict_hits_total", "Predictions whose target event matched"),
    ("pythia_predict_misses_total", "Predictions whose target event mismatched"),
    ("pythia_predict_lost_total", "Tracker transitions into the lost state"),
    ("pythia_predict_resyncs_total", "Tracker re-acquisitions after being lost"),
    ("pythia_successor_cache_hits_total", "Successor-machine memo hits"),
    ("pythia_successor_cache_misses_total", "Successor-machine memo misses"),
    ("pythia_successor_cache_evictions_total", "Successor-machine memo evictions"),
    ("pythia_successor_det_hits_total", "Deterministic-transition fast-path hits"),
)


class RequestError(Exception):
    """A request the daemon refuses; becomes an error response."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


@dataclass(slots=True)
class _Session:
    """One client-visible tracking session."""

    session_id: str
    bundle: TraceBundle
    thread: int
    tracker: PythiaPredict
    owner: int  # connection id, for cleanup when the connection dies
    #: numeric spelling of ``session_id`` (``sN`` -> ``N``): what a
    #: binary hot request carries instead of the string
    num: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: the client-side session id from the opening request's ``ctx``,
    #: joining this daemon session to the SessionStats table row
    ctx_sid: str | None = None


def _latency_view(hist: Histogram) -> dict[str, float]:
    """One op's latency for the ``stats`` op.

    ``count`` / ``total_ms`` / ``mean_us`` / ``max_us`` reproduce the
    pre-observability ``_LatencyAgg`` shape and are kept as a deprecated
    alias for one release; the percentile keys are the replacement.
    """
    snap = hist.snapshot()
    mean = snap["sum"] / snap["count"] if snap["count"] else 0.0
    return {
        "count": snap["count"],
        "total_ms": round(snap["sum"] * 1e3, 3),
        "mean_us": round(mean * 1e6, 3),
        "max_us": round(snap["max"] * 1e6, 3),
        "p50_us": round(snap["p50"] * 1e6, 3),
        "p95_us": round(snap["p95"] * 1e6, 3),
        "p99_us": round(snap["p99"] * 1e6, 3),
    }


class OracleServer:
    """A multi-client PYTHIA-PREDICT daemon.

    Parameters
    ----------
    socket_path:
        Unix socket to listen on (created on :meth:`start`, unlinked on
        :meth:`stop`).  Mutually exclusive with ``tcp_address``.
    tcp_address:
        Optional ``(host, port)`` to listen on TCP instead; port 0 picks
        a free port (read the bound one from :attr:`address`).
    store:
        Shared :class:`TraceStore`; a private one is created by default.
    max_frame:
        Per-frame byte limit enforced on reads and writes.
    worker_id:
        Identity of this process inside a multi-worker deployment
        (:mod:`repro.server.supervisor`); advertised in ``ping`` /
        ``open_session`` / ``stats`` replies so clients and tests can
        see which worker serves them.  Setting it also allows a
        *listener-less* server (both ``socket_path`` and
        ``tcp_address`` ``None``) that only serves connections handed
        to it via :meth:`adopt`.
    reuse_port:
        Bind the TCP listener with ``SO_REUSEPORT`` so several worker
        processes can share one port and let the kernel balance
        accepts (the supervisor's ``routing="kernel"`` mode).
    io_mode:
        ``"eventloop"`` (default) serves data connections from one
        ``selectors``-based loop (:mod:`repro.server.eventloop`);
        ``"threads"`` keeps the original thread-per-connection model.
        ``PYTHIA_SERVER_IO`` sets the default; both modes speak both
        framings and behave identically.
    """

    def __init__(
        self,
        socket_path: str | os.PathLike | None = None,
        *,
        tcp_address: tuple[str, int] | None = None,
        store: TraceStore | None = None,
        max_frame: int = DEFAULT_MAX_FRAME,
        max_candidates_limit: int = 4096,
        session_stats_capacity: int = DEFAULT_SESSION_CAPACITY,
        worker_id: int | None = None,
        reuse_port: bool = False,
        io_mode: str | None = None,
    ) -> None:
        if socket_path is not None and tcp_address is not None:
            raise ValueError("socket_path and tcp_address are mutually exclusive")
        if socket_path is None and tcp_address is None and worker_id is None:
            raise ValueError("exactly one of socket_path / tcp_address required")
        if reuse_port and tcp_address is None:
            raise ValueError("reuse_port requires a tcp_address")
        if io_mode is None:
            io_mode = os.environ.get("PYTHIA_SERVER_IO", "eventloop")
        if io_mode not in ("eventloop", "threads"):
            raise ValueError("io_mode must be 'eventloop' or 'threads'")
        self.socket_path = os.fspath(socket_path) if socket_path is not None else None
        self.tcp_address = tcp_address
        self.worker_id = worker_id
        self.reuse_port = reuse_port
        self.io_mode = io_mode
        self._loop = None  # ConnectionLoop while io_mode == "eventloop"
        self.store = store if store is not None else TraceStore()
        self.max_frame = max_frame
        self.max_candidates_limit = max_candidates_limit
        self._started = False
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conn_threads: set[threading.Thread] = set()
        self._conns: dict[int, socket.socket] = {}
        self._running = threading.Event()
        self._draining = threading.Event()
        self._inflight = 0
        self._lock = threading.Lock()
        self._sessions: dict[str, _Session] = {}
        self._sessions_by_num: dict[int, _Session] = {}
        self._session_ids = itertools.count(1)
        self._conn_ids = itertools.count(1)
        self.counters = {
            "connections_accepted": 0,
            "connections_dropped": 0,  # closed due to a protocol violation
            "sessions_opened": 0,
            "sessions_closed": 0,
            "events_observed": 0,
            "predictions_served": 0,
            "requests_total": 0,
            "requests_failed": 0,
            "requests_rejected_draining": 0,
        }
        #: per-(op, proto) request latency, shared with the metrics
        #: registry as ``pythia_server_request_seconds{op=...,proto=...}``
        self._latency: dict[tuple[str, str], Histogram] = {}
        self._queue_latency: Histogram | None = None
        #: bounded per-client-session telemetry (the ``sessions`` op);
        #: evicting an LRU entry also drops its metric series, so the
        #: labeled pythia_session_* cardinality tracks the table
        self.session_stats = SessionStats(session_stats_capacity)
        self.session_stats.on_evict(self._drop_session_metrics)
        #: bounded ring of periodic registry snapshots (the ``history``
        #: op and ``/history.json``); built from the environment at
        #: :meth:`start`, None while disabled via ``PYTHIA_HISTORY=0``
        self.history: obs_history.MetricsHistory | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> str | tuple[str, int] | None:
        """Where clients connect (socket path, or bound (host, port)).

        ``None`` for a listener-less worker (connections arrive via
        :meth:`adopt` only).
        """
        if self.socket_path is not None:
            return self.socket_path
        if self._listener is not None:
            return self._listener.getsockname()[:2]
        return None

    def start(self) -> "OracleServer":
        """Bind, listen and spawn the accept loop; returns self."""
        if self._started:
            raise RuntimeError("server already started")
        listener: socket.socket | None = None
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except FileNotFoundError:
                pass
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(self.socket_path)
        elif self.tcp_address is not None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if self.reuse_port:
                if not hasattr(socket, "SO_REUSEPORT"):
                    raise RuntimeError(
                        "SO_REUSEPORT is not available on this platform"
                    )
                listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            listener.bind(self.tcp_address)
        if listener is not None:
            listener.listen(128)
        self._listener = listener
        self._started = True
        self._running.set()
        self._draining.clear()
        registry = obs_metrics.get_registry()
        for name, help_text in _METRIC_CATALOGUE:
            registry.counter(name, help=help_text)
        registry.register_collector(self._collect_metrics)
        register_process_metrics(registry)
        self.history = obs_history.history_from_env()
        if self.history is not None:
            self.history.start()
        if self.io_mode == "eventloop":
            from repro.server.eventloop import ConnectionLoop

            self._loop = ConnectionLoop(self).start()
        if listener is not None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="pythia-accept", daemon=True
            )
            self._accept_thread.start()
        _log.info("server_started", address=str(self.address),
                  worker=self.worker_id)
        return self

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has begun refusing new work."""
        return self._draining.is_set()

    def drain(self, deadline: float = 5.0) -> None:
        """Graceful shutdown, phase one: stop taking new work.

        Stops accepting connections, lets requests already being served
        run to completion (waiting up to ``deadline`` seconds for the
        daemon to go idle) and answers any request arriving meanwhile
        with the retryable ``shutting_down`` error code, so a
        fault-tolerant client reconnects elsewhere instead of failing.
        Returns once idle or at the deadline; call :meth:`stop`
        afterwards to close connections and release the socket.
        """
        if not self._started:
            return
        with self._lock:
            already = self._draining.is_set()
            self._draining.set()
        if already:
            return
        _log.info("server_draining", deadline=deadline)
        if self._listener is not None:
            # shutdown wakes a thread blocked in accept() — close alone
            # leaves it in the syscall holding the listener alive, so
            # new connects would still land in the backlog
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        t0 = time.monotonic()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=deadline)
        while time.monotonic() - t0 < deadline:
            with self._lock:
                if self._inflight == 0:
                    break
            time.sleep(0.005)
        with self._lock:
            leftover = self._inflight
        _log.info("server_drained", inflight_left=leftover)

    def stop(self) -> None:
        """Stop accepting, close every connection, unlink the socket."""
        if not self._started:
            return
        self._running.clear()
        if self._listener is not None:
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        if self._loop is not None:
            # the loop owns its sockets: it unregisters, closes and
            # reaps them itself before the generic sweep below
            self._loop.stop()
            self._loop = None
        with self._lock:
            conns = list(self._conns.values())
        for conn in conns:
            # shutdown unblocks a connection thread parked in recv();
            # close alone would leave it there until the client went away
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for t in list(self._conn_threads):
            t.join(timeout=5)
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except FileNotFoundError:
                pass
        obs_metrics.get_registry().unregister_collector(self._collect_metrics)
        if self.history is not None:
            self.history.stop()
            dump_dir = os.environ.get(obs_history.HISTORY_DIR_ENV)
            if dump_dir and len(self.history):
                tag = f"w{self.worker_id}" if self.worker_id is not None else "daemon"
                path = os.path.join(dump_dir, f"history-{tag}-{os.getpid()}.jsonl")
                try:
                    os.makedirs(dump_dir, exist_ok=True)
                    self.history.dump(path)
                except OSError:
                    pass  # post-mortem aid only; never blocks shutdown
            self.history = None
        self._listener = None
        self._accept_thread = None
        self._started = False
        _log.info("server_stopped", requests=self.counters["requests_total"])

    def __enter__(self) -> "OracleServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def serve_forever(self, *, drain_deadline: float = 5.0) -> None:
        """Block until interrupted (for the CLI).

        SIGTERM triggers the graceful path: :meth:`drain` (finish
        in-flight requests within ``drain_deadline`` seconds, answer
        late ones with ``shutting_down``) and then :meth:`stop`.
        KeyboardInterrupt skips the drain phase — Ctrl-C means *now*.
        """
        if not self._started:
            self.start()
        stop_requested = threading.Event()
        old_handler = None
        in_main = threading.current_thread() is threading.main_thread()
        if in_main:
            old_handler = signal.signal(
                signal.SIGTERM, lambda *_sig: stop_requested.set()
            )
        try:
            while self._running.is_set() and not stop_requested.is_set():
                time.sleep(0.05)
        except KeyboardInterrupt:
            pass
        finally:
            if in_main and old_handler is not None:
                signal.signal(signal.SIGTERM, old_handler)
            if stop_requested.is_set():
                self.drain(drain_deadline)
            self.stop()

    # ------------------------------------------------------------------
    # accept / connection loops
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            self._spawn_connection(conn)

    def _spawn_connection(self, conn: socket.socket) -> int:
        """Register ``conn`` and serve it on its own thread."""
        if conn.family in (socket.AF_INET, getattr(socket, "AF_INET6", -1)):
            # small request frame, blocking reply read: the exact shape
            # Nagle penalizes (see PythiaClient._connect)
            try:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
        conn_id = next(self._conn_ids)
        with self._lock:
            self.counters["connections_accepted"] += 1
            self._conns[conn_id] = conn
        if self._loop is not None:
            self._loop.add(conn, conn_id)
            return conn_id
        t = threading.Thread(
            target=self._serve_connection,
            args=(conn, conn_id),
            name=f"pythia-conn-{conn_id}",
            daemon=True,
        )
        self._conn_threads.add(t)
        t.start()
        return conn_id

    def adopt(self, conn: socket.socket) -> int:
        """Serve a connection accepted by another process.

        The supervisor accepts on the shared listener, peeks the first
        frame to pick a worker, and passes the connection's fd here via
        ``SCM_RIGHTS``; from this point the socket behaves exactly like
        one this server accepted itself.  Returns the connection id.
        """
        if not self._started or not self._running.is_set():
            raise RuntimeError("server is not running")
        conn.settimeout(None)  # accepted sockets are blocking
        return self._spawn_connection(conn)

    def _serve_connection(self, conn: socket.socket, conn_id: int) -> None:
        """One client, fully isolated: its errors never leave this frame."""
        # tracing binding: ``[sid, last_rid]``, set by the last full
        # ``ctx`` seen on this connection.  Once bound, bare requests
        # (no ctx at all) are traced implicitly with consecutive rids.
        conn_ctx: list = [None, 0]
        try:
            while self._running.is_set():
                try:
                    frame = read_frame_any(conn, max_frame=self.max_frame)
                except ProtocolError as exc:
                    # bad framing is unrecoverable on a byte stream:
                    # one final error frame if possible, then drop only
                    # this connection — never keep reading garbage
                    with self._lock:
                        self.counters["connections_dropped"] += 1
                    if not isinstance(exc, ConnectionClosed):
                        self._try_send(
                            conn, {"ok": False, "code": "protocol", "error": str(exc)}
                        )
                    return
                if frame is None:
                    return  # clean EOF
                recv_ts = time.perf_counter()
                request: dict | None = None
                wrap = False  # reply inside an OP_JSON binary frame
                if frame[0] == "json":
                    request = frame[1]
                else:
                    _kind, opcode, bin_flags, bin_body = frame
                    if opcode == OP_JSON:
                        try:
                            request = _parse_json_body(bin_body)
                        except ProtocolError as exc:
                            with self._lock:
                                self.counters["connections_dropped"] += 1
                            self._try_send(
                                conn,
                                {"ok": False, "code": "protocol", "error": str(exc)},
                            )
                            return
                        wrap = True
                with self._lock:
                    rejected = self._draining.is_set() and (
                        request is None
                        or request.get("op") not in self._DRAIN_OPS
                    )
                    if rejected:
                        self.counters["requests_rejected_draining"] += 1
                    else:
                        self._inflight += 1
                if rejected:
                    # late request during drain: refuse retryably (in
                    # the request's own framing), keep the connection
                    # so the client can close sessions
                    reply = {
                        "ok": False,
                        "code": "shutting_down",
                        "error": "daemon is draining; reconnect and retry",
                    }
                    if request is None:
                        self._try_send_raw(
                            conn, encode_bin_error(reply["code"], reply["error"])
                        )
                    elif wrap:
                        self._try_send_raw(
                            conn,
                            encode_bin_frame(OP_JSON, 0, encode_json_body(reply)),
                        )
                    else:
                        self._try_send(conn, reply)
                    continue
                try:
                    if request is None:
                        _kind, opcode, bin_flags, bin_body = frame
                        reply_bytes = self._dispatch_binary(
                            opcode, bin_flags, bin_body, conn_id, recv_ts, conn_ctx
                        )
                        try:
                            conn.sendall(reply_bytes)
                        except OSError:
                            return
                    else:
                        response, extra = self._dispatch(
                            request, conn_id, recv_ts, conn_ctx
                        )
                        try:
                            if wrap:
                                conn.sendall(encode_bin_frame(
                                    OP_JSON, 0,
                                    encode_json_body(response, extra=extra),
                                    max_frame=self.max_frame,
                                ))
                            else:
                                write_frame(
                                    conn, response,
                                    max_frame=self.max_frame, extra=extra,
                                )
                        except OSError:
                            return
                finally:
                    with self._lock:
                        self._inflight -= 1
        except Exception:
            # last-ditch isolation: an unexpected bug serving this client
            # must not unwind into the daemon
            with self._lock:
                self.counters["connections_dropped"] += 1
        finally:
            try:
                conn.close()
            except OSError:
                pass
            self._close_owned_sessions(conn_id)
            with self._lock:
                self._conns.pop(conn_id, None)
            self._conn_threads.discard(threading.current_thread())

    @staticmethod
    def _try_send(conn: socket.socket, obj: dict) -> None:
        try:
            write_frame(conn, obj)
        except OSError:
            pass

    @staticmethod
    def _try_send_raw(conn: socket.socket, data: bytes) -> None:
        try:
            conn.sendall(data)
        except OSError:
            pass

    def _close_owned_sessions(self, conn_id: int) -> None:
        with self._lock:
            dead = [s for s in self._sessions.values() if s.owner == conn_id]
            for s in dead:
                del self._sessions[s.session_id]
                self._sessions_by_num.pop(s.num, None)
                self.counters["sessions_closed"] += 1

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------

    @staticmethod
    def _request_ctx(request: dict) -> tuple[str | None, int | None]:
        """Validated ``(sid, rid)`` from a request's optional ``ctx``.

        Lenient on purpose: a malformed ``ctx`` (wrong types, absurd
        sid length) is treated as absent, never as an error — tracing
        must not be able to fail a request.
        """
        ctx = request.get("ctx")
        if not isinstance(ctx, dict):
            return None, None
        sid = ctx.get("sid")
        rid = ctx.get("rid")
        if not isinstance(sid, str) or not 0 < len(sid) <= 128:
            sid = None
        if isinstance(rid, bool) or not isinstance(rid, int) or rid < 0:
            rid = None
        return sid, rid

    def _dispatch(
        self,
        request: dict,
        conn_id: int,
        recv_ts: float | None = None,
        conn_ctx: list | None = None,
    ) -> tuple[dict, str | None]:
        """Handle one request; returns ``(response, extra)``.

        ``extra`` is the reply's pre-serialized ``srv`` timing fragment
        (or ``None`` for untraced requests) — spliced into the frame by
        the serve loop so the per-reply timing never pays the JSON
        encoder.  ``conn_ctx`` is the connection's ``[sid, last_rid]``
        binding: a full ``ctx`` stores its identity there, and bare
        requests on a bound connection inherit the sid with the next
        consecutive rid (the stream delivers in order, so counting
        arrivals reproduces the client's own rid counter exactly).
        """
        op = request.get("op")
        handler = self._HANDLERS.get(op)
        if "ctx" in request:
            sid, rid = self._request_ctx(request)
            if sid is not None and conn_ctx is not None:
                conn_ctx[0] = sid
                conn_ctx[1] = rid if rid is not None else 0
        elif conn_ctx is not None and conn_ctx[0] is not None:
            sid = conn_ctx[0]
            rid = conn_ctx[1] = conn_ctx[1] + 1
            if op == "open_session":
                # the handler folds the sid into flight naming and
                # session metadata; give it the resolved identity
                request["ctx"] = {"sid": sid, "rid": rid}
        else:
            sid = rid = None
        t0 = time.perf_counter()
        # queue time: frame fully received -> handler start (the drain
        # check and daemon-lock waits live in this interval)
        queue_s = max(0.0, t0 - recv_ts) if recv_ts is not None else 0.0
        try:
            if handler is None:
                raise RequestError("unknown_op", f"unknown request op {op!r}")
            # free while no profiler runs; attributes samples to the op
            with obs_profiler.tag_op(op):
                response = handler(self, request, conn_id)
            response["ok"] = True
        except RequestError as exc:
            with self._lock:
                self.counters["requests_failed"] += 1
            response = {"ok": False, "code": exc.code, "error": str(exc)}
        except (FileNotFoundError, TraceFormatError, KeyError, ValueError, TypeError) as exc:
            with self._lock:
                self.counters["requests_failed"] += 1
            code = {
                FileNotFoundError: "trace_not_found",
                TraceFormatError: "trace_format",
                KeyError: "no_such_thread",
            }.get(type(exc), "bad_request")
            # KeyError reprs its message; unwrap just that one
            message = str(exc.args[0]) if isinstance(exc, KeyError) and exc.args else str(exc)
            response = {"ok": False, "code": code, "error": message}
        except Exception as exc:  # defensive: never leak an exception
            with self._lock:
                self.counters["requests_failed"] += 1
            response = {"ok": False, "code": "internal", "error": f"{type(exc).__name__}: {exc}"}
        handler_s = time.perf_counter() - t0
        # bucket unknown ops together: op names are client-controlled
        # and must not grow the latency table without bound
        key = op if isinstance(op, str) and op in self._HANDLERS else "<unknown>"
        self._observe_latency(key, "json", handler_s)
        if recv_ts is not None:
            qhist = self._queue_latency
            if qhist is None:
                qhist = obs_metrics.get_registry().histogram(
                    "pythia_server_queue_seconds",
                    buckets=LATENCY_BUCKETS_S,
                    help="Frame arrival to handler start (dispatch queue time)",
                )
                self._queue_latency = qhist
            qhist.observe(queue_s)
        extra = None
        if sid is not None:
            # reply timing: lets the client decompose its observed
            # round-trip into wire / queue / handler components.  A
            # positional pair of integer µs (whole-µs resolution is
            # plenty at socket-RTT scale) in a pre-serialized fragment —
            # this rides every traced reply, so it pays neither the
            # dict encoder nor the bytes of spelled-out keys.  The rid
            # is not echoed: the connection answers in order, so the
            # client correlates replies itself; a malformed rid shows
            # up in the session table (last_rid stops moving), not on
            # the wire.
            extra = ',"srv":[%d,%d]' % (
                int(queue_s * 1e6),
                int(handler_s * 1e6),
            )
            # session accounting is deferred: append the raw sample to
            # the table's shared buffer (one lock-free list append — the
            # shared list keeps cross-connection arrival order, so rid
            # continuity folds exactly) and fold in batches
            pending = self.session_stats.pending
            pending.append((sid, key, rid, queue_s, handler_s, not response["ok"]))
            if len(pending) >= 64:
                self.session_stats.fold()
        rec = obs_spans._recorder  # inlined get_recorder(): per-request path
        if rec is not None:
            attrs: dict = {"op": key, "queue_us": int(queue_s * 1e6),
                           "handler_us": int(handler_s * 1e6)}
            if sid is not None:
                attrs["sid"] = sid
            if rid is not None:
                attrs["rid"] = rid
            rec.emit(f"server.{key}", t0, handler_s, **attrs)
        return response, extra

    def _observe_latency(self, op_key: str, proto: str, handler_s: float) -> None:
        """Record handler latency under ``{op=..., proto=...}``.

        ``requests_total`` rides along: every dispatch, either framing,
        lands here exactly once.
        """
        with self._lock:
            self.counters["requests_total"] += 1
            hist = self._latency.get((op_key, proto))
        if hist is None:
            hist = obs_metrics.get_registry().histogram(
                "pythia_server_request_seconds",
                {"op": op_key, "proto": proto},
                buckets=LATENCY_BUCKETS_S,
                help="Request handling latency per op and framing",
            )
            with self._lock:
                self._latency.setdefault((op_key, proto), hist)
        hist.observe(handler_s)

    def _observe_queue(self, queue_s: float) -> None:
        qhist = self._queue_latency
        if qhist is None:
            qhist = obs_metrics.get_registry().histogram(
                "pythia_server_queue_seconds",
                buckets=LATENCY_BUCKETS_S,
                help="Frame arrival to handler start (dispatch queue time)",
            )
            self._queue_latency = qhist
        qhist.observe(queue_s)

    # ------------------------------------------------------------------
    # binary dispatch (protocol v2 hot ops)
    # ------------------------------------------------------------------

    def _dispatch_binary(
        self,
        opcode: int,
        flags: int,
        body: bytes,
        conn_id: int,
        recv_ts: float | None = None,
        conn_ctx: list | None = None,
    ) -> bytes:
        """Handle one binary hot request; returns the reply frame bytes.

        The binary spelling of ``observe`` / ``observe_predict`` /
        ``predict``: the client already resolved ``(name, payload)`` to
        a terminal id against the registry it fetched at
        ``open_session`` (or set :data:`F_UNKNOWN_EVENT` when the
        lookup missed), so the handler is the same tracker call the
        JSON path makes — predictions are byte-identical.  Accounting
        mirrors :meth:`_dispatch` exactly: counters, per-(op, proto)
        latency, queue time, implicit-rid session telemetry, spans, and
        the traced-reply timing pair (:data:`F_HAS_SRV` + a
        ``(queue_us, handler_us)`` body prefix, the binary ``srv``).
        """
        op = BIN_OPS.get(opcode)
        if conn_ctx is not None and conn_ctx[0] is not None:
            # binary frames never carry ctx: on a bound connection they
            # are "bare" requests and inherit the next consecutive rid
            sid = conn_ctx[0]
            rid = conn_ctx[1] = conn_ctx[1] + 1
        else:
            sid = rid = None
        t0 = time.perf_counter()
        queue_s = max(0.0, t0 - recv_ts) if recv_ts is not None else 0.0
        failed = False
        try:
            if op is None:
                raise RequestError(
                    "unknown_op", f"unknown binary opcode 0x{opcode:02x}"
                )
            try:
                snum, terminal, distance = BIN_REQ.unpack(body)
            except struct.error as exc:
                raise RequestError(
                    "bad_request", f"binary request body must be >IIH: {exc}"
                ) from exc
            with self._lock:
                session = self._sessions_by_num.get(snum)
            if session is None:
                raise RequestError(
                    "no_such_session", f"unknown session s{snum}"
                )
            with obs_profiler.tag_op(op):
                if opcode == OP_PREDICT:
                    if distance < 1:
                        raise RequestError(
                            "bad_request", "'distance' must be a positive integer"
                        )
                    with session.lock:
                        pred = session.tracker.predict(
                            distance, with_time=bool(flags & F_WITH_TIME)
                        )
                    with self._lock:
                        self.counters["predictions_served"] += 1
                    pred_flags, pred_body = encode_bin_prediction(pred)
                    reply = (OP_REPLY_PREDICT, pred_flags, pred_body)
                else:
                    # observe / observe_predict share the observe half
                    unknown = bool(flags & F_UNKNOWN_EVENT)
                    if not unknown and not (
                        0 <= terminal < len(session.bundle.registry)
                    ):
                        raise RequestError(
                            "bad_request", f"terminal {terminal} not in registry"
                        )
                    if opcode == OP_OBSERVE:
                        with session.lock:
                            matched = (
                                session.tracker.observe_unknown()
                                if unknown
                                else session.tracker.observe(terminal)
                            )
                        with self._lock:
                            self.counters["events_observed"] += 1
                        reply = (
                            OP_REPLY_MATCHED,
                            F_MATCHED if matched else 0,
                            b"",
                        )
                    else:  # OP_OBSERVE_PREDICT
                        if distance < 1:
                            raise RequestError(
                                "bad_request",
                                "'distance' must be a positive integer",
                            )
                        require_match = bool(flags & F_REQUIRE_MATCH)
                        with session.lock:
                            matched = (
                                session.tracker.observe_unknown()
                                if unknown
                                else session.tracker.observe(terminal)
                            )
                            predicted = not (require_match and not matched)
                            pred = (
                                session.tracker.predict(
                                    distance,
                                    with_time=bool(flags & F_WITH_TIME),
                                )
                                if predicted
                                else None
                            )
                        with self._lock:
                            self.counters["events_observed"] += 1
                            if predicted:
                                self.counters["predictions_served"] += 1
                        pred_flags, pred_body = encode_bin_prediction(pred)
                        if matched:
                            pred_flags |= F_MATCHED
                        reply = (OP_REPLY_PREDICT, pred_flags, pred_body)
        except RequestError as exc:
            failed = True
            with self._lock:
                self.counters["requests_failed"] += 1
            reply = None
            err = (exc.code, str(exc))
        except Exception as exc:  # defensive: never leak an exception
            failed = True
            with self._lock:
                self.counters["requests_failed"] += 1
            reply = None
            err = ("internal", f"{type(exc).__name__}: {exc}")
        handler_s = time.perf_counter() - t0
        key = op if op is not None else "<unknown>"
        self._observe_latency(key, "binary", handler_s)
        if recv_ts is not None:
            self._observe_queue(queue_s)
        srv_prefix = b""
        if sid is not None:
            srv_prefix = SRV_PAIR.pack(
                min(int(queue_s * 1e6), 0xFFFFFFFF),
                min(int(handler_s * 1e6), 0xFFFFFFFF),
            )
            pending = self.session_stats.pending
            pending.append((sid, key, rid, queue_s, handler_s, failed))
            if len(pending) >= 64:
                self.session_stats.fold()
        rec = obs_spans._recorder  # inlined get_recorder(): per-request path
        if rec is not None:
            attrs: dict = {"op": key, "proto": "binary",
                           "queue_us": int(queue_s * 1e6),
                           "handler_us": int(handler_s * 1e6)}
            if sid is not None:
                attrs["sid"] = sid
            if rid is not None:
                attrs["rid"] = rid
            rec.emit(f"server.{key}", t0, handler_s, **attrs)
        if reply is None:
            # error frames carry the timing prefix too; F_HAS_SRV tells
            # the decoder where the JSON error body starts
            reply = (
                OP_REPLY_ERROR, 0,
                encode_json_body({"code": err[0], "error": err[1]}),
            )
        opcode_out, flags_out, body_out = reply
        if srv_prefix:
            flags_out |= F_HAS_SRV
            body_out = srv_prefix + body_out
        return encode_bin_frame(opcode_out, flags_out, body_out)

    def _session(self, request: dict) -> _Session:
        sid = request.get("session")
        with self._lock:
            session = self._sessions.get(sid)
        if session is None:
            raise RequestError("no_such_session", f"unknown session {sid!r}")
        return session

    # -- handlers --------------------------------------------------------

    def _op_open_session(self, request: dict, conn_id: int) -> dict:
        trace = request.get("trace")
        if not isinstance(trace, str):
            raise RequestError("bad_request", "open_session needs a 'trace' path")
        thread = request.get("thread", 0)
        if not isinstance(thread, int):
            raise RequestError("bad_request", "'thread' must be an integer")
        max_candidates = request.get("max_candidates", 64)
        if not isinstance(max_candidates, int) or not (
            1 <= max_candidates <= self.max_candidates_limit
        ):
            raise RequestError(
                "bad_request",
                f"'max_candidates' must be in [1, {self.max_candidates_limit}]",
            )
        flight_capacity = request.get("flight", 256)
        if not isinstance(flight_capacity, int) or not (
            0 <= flight_capacity <= 65536
        ):
            raise RequestError("bad_request", "'flight' must be in [0, 65536]")
        bundle = self.store.get(trace)
        tracker = bundle.tracker(thread, max_candidates=max_candidates)
        ctx_sid, _ctx_rid = self._request_ctx(request)
        with self._lock:
            num = next(self._session_ids)
            sid = f"s{num}"
            session = _Session(
                sid, bundle, thread, tracker, conn_id, num=num, ctx_sid=ctx_sid
            )
            self._sessions[sid] = session
            self._sessions_by_num[num] = session
            self.counters["sessions_opened"] += 1
        if flight_capacity:
            # fold the client's session id into the recorder name so
            # every flight entry carries the cross-process correlation id
            flight_name = f"{sid}.{os.path.basename(bundle.path)}.t{thread}"
            if ctx_sid is not None:
                flight_name = f"{ctx_sid}.{flight_name}"
            tracker.attach_flight(
                FlightRecorder(flight_capacity, session=flight_name)
            )
        if request.get("drift", True):
            tracker.attach_drift(DriftMonitor())
        _log.debug("session_opened", session=sid, trace=bundle.path, thread=thread)
        out = {
            "session": sid,
            # numeric spelling for binary hot requests (protocol v2);
            # old clients ignore the extra key
            "snum": num,
            "trace": bundle.path,
            "thread": thread,
            "threads": bundle.threads(),
            "meta": bundle.trace.meta,
            "event_count": bundle.trace.event_count,
        }
        if self.worker_id is not None:
            out["worker"] = self.worker_id
        if request.get("with_registry"):
            out["registry"] = bundle.registry.to_obj()
        return out

    def _op_close_session(self, request: dict, conn_id: int) -> dict:
        session = self._session(request)
        with self._lock:
            self._sessions.pop(session.session_id, None)
            self._sessions_by_num.pop(session.num, None)
            self.counters["sessions_closed"] += 1
        return {"session": session.session_id}

    def _observe_one(self, session: _Session, name, payload) -> bool:
        """Mirror of ``Pythia.event`` in predict mode (same semantics)."""
        if not isinstance(name, str):
            raise RequestError("bad_request", "'name' must be a string")
        terminal = session.bundle.registry.lookup(Event(name, decode_payload(payload)))
        tracker = session.tracker
        if terminal is None:
            return tracker.observe_unknown()
        return tracker.observe(terminal)

    def _op_observe(self, request: dict, conn_id: int) -> dict:
        session = self._session(request)
        with session.lock:
            matched = self._observe_one(session, request.get("name"), request.get("payload"))
        with self._lock:
            self.counters["events_observed"] += 1
        return {"matched": matched}

    def _op_observe_batch(self, request: dict, conn_id: int) -> dict:
        session = self._session(request)
        events = request.get("events")
        if not isinstance(events, list):
            raise RequestError("bad_request", "'events' must be a list of [name, payload]")
        matched: list[bool] = []
        with session.lock:
            for item in events:
                if not isinstance(item, (list, tuple)) or not 1 <= len(item) <= 2:
                    raise RequestError(
                        "bad_request", "each event must be [name] or [name, payload]"
                    )
                name = item[0]
                payload = item[1] if len(item) == 2 else None
                matched.append(self._observe_one(session, name, payload))
        with self._lock:
            self.counters["events_observed"] += len(matched)
        return {"matched": matched}

    def _op_observe_predict(self, request: dict, conn_id: int) -> dict:
        """Fused observe + predict: one round trip for the runtime loop.

        Observes ``name``/``payload`` (or, batched, every ``events``
        item) and then predicts once — equivalent to an ``observe`` (or
        ``observe_batch``) request followed by ``predict``, in one frame.
        With ``require_match`` the predict half is skipped when the last
        event mismatched and ``prediction`` is ``null``.
        """
        session = self._session(request)
        distance = request.get("distance", 1)
        if not isinstance(distance, int) or distance < 1:
            raise RequestError("bad_request", "'distance' must be a positive integer")
        with_time = bool(request.get("with_time", False))
        require_match = bool(request.get("require_match", False))
        events = request.get("events")
        batched = events is not None
        if batched:
            if not isinstance(events, list) or not events:
                raise RequestError(
                    "bad_request", "'events' must be a non-empty list of [name, payload]"
                )
        else:
            events = [[request.get("name"), request.get("payload")]]
        matched: list[bool] = []
        with session.lock:
            for item in events:
                if not isinstance(item, (list, tuple)) or not 1 <= len(item) <= 2:
                    raise RequestError(
                        "bad_request", "each event must be [name] or [name, payload]"
                    )
                name = item[0]
                payload = item[1] if len(item) == 2 else None
                matched.append(self._observe_one(session, name, payload))
            predicted = not (require_match and not matched[-1])
            pred = (
                session.tracker.predict(distance, with_time=with_time)
                if predicted
                else None
            )
        with self._lock:
            self.counters["events_observed"] += len(matched)
            if predicted:
                self.counters["predictions_served"] += 1
        return {
            "matched": matched if batched else matched[0],
            "prediction": encode_prediction(pred),
        }

    def _op_predict(self, request: dict, conn_id: int) -> dict:
        session = self._session(request)
        distance = request.get("distance", 1)
        if not isinstance(distance, int) or distance < 1:
            raise RequestError("bad_request", "'distance' must be a positive integer")
        with_time = bool(request.get("with_time", False))
        with session.lock:
            pred = session.tracker.predict(distance, with_time=with_time)
        with self._lock:
            self.counters["predictions_served"] += 1
        return {"prediction": encode_prediction(pred)}

    def _op_predict_duration(self, request: dict, conn_id: int) -> dict:
        session = self._session(request)
        distance = request.get("distance", 1)
        if not isinstance(distance, int) or distance < 1:
            raise RequestError("bad_request", "'distance' must be a positive integer")
        with session.lock:
            eta = session.tracker.predict_duration(distance)
        with self._lock:
            self.counters["predictions_served"] += 1
        return {"eta": eta}

    def _op_explain(self, request: dict, conn_id: int) -> dict:
        """Prediction provenance for one session (``Pythia.explain``).

        ``names=true`` resolves terminal ids to event names server-side,
        saving the client a registry fetch (the CLI uses it).
        """
        session = self._session(request)
        distance = request.get("distance", 1)
        if not isinstance(distance, int) or distance < 1:
            raise RequestError("bad_request", "'distance' must be a positive integer")
        top_k = request.get("top_k", 3)
        if not isinstance(top_k, int) or not 1 <= top_k <= 64:
            raise RequestError("bad_request", "'top_k' must be in [1, 64]")
        with_time = bool(request.get("with_time", False))
        with session.lock:
            explanation = session.tracker.explain(
                distance, top_k=top_k, with_time=with_time
            )
        if explanation is None:
            return {"explanation": None}
        name_of = session.bundle.registry.name if request.get("names") else None
        return {"explanation": explanation.to_obj(name_of)}

    def _op_flight_dump(self, request: dict, conn_id: int) -> dict:
        """One session's flight-recorder journal (+ drift report)."""
        session = self._session(request)
        fmt = request.get("format", "jsonl")
        if fmt not in ("jsonl", "chrome"):
            raise RequestError("bad_request", "'format' must be 'jsonl' or 'chrome'")
        with session.lock:
            flight = session.tracker.flight
            drift = session.tracker.drift
            out: dict = {
                "session": session.session_id,
                "drift": drift.report() if drift is not None else {},
            }
            if flight is None:
                out["entries" if fmt == "jsonl" else "trace"] = None
            elif fmt == "chrome":
                out["trace"] = flight.to_chrome_trace()
            else:
                out["entries"] = flight.entries()
        return out

    def _op_registry(self, request: dict, conn_id: int) -> dict:
        trace = request.get("trace")
        if isinstance(trace, str):
            bundle = self.store.get(trace)
        else:
            bundle = self._session(request).bundle
        return {"registry": bundle.registry.to_obj()}

    def _op_stats(self, request: dict, conn_id: int) -> dict:
        if request.get("session") is not None:
            session = self._session(request)
            with session.lock:
                return {"session_stats": session.tracker.stats()}
        with self._lock:
            # the stats view stays keyed by op (its pre-v2 shape):
            # per-proto histograms of one op merge into a detached
            # aggregate — metrics keep the proto split, stats callers
            # keep their keys
            merged: dict[str, Histogram] = {}
            for (op_key, _proto), h in self._latency.items():
                agg = merged.get(op_key)
                if agg is None:
                    merged[op_key] = agg = Histogram(
                        "pythia_server_request_seconds_view",
                        buckets=LATENCY_BUCKETS_S,
                    )
                agg.merge(h)
            out = {
                "counters": dict(self.counters),
                "sessions_active": len(self._sessions),
                "session_ids": sorted(self._sessions),
                "store": self.store.snapshot(),
                "latency": {op: _latency_view(h) for op, h in merged.items()},
            }
        if self.worker_id is not None:
            out["worker"] = self.worker_id
        return out

    def _op_sessions(self, request: dict, conn_id: int) -> dict:
        """The per-client-session telemetry table, joined with live trackers.

        Rows come from the bounded :class:`SessionStats` LRU; for rows
        whose client sid currently owns live daemon sessions, the
        tracker-side view (hit rate, drift state, candidates) is merged
        in.  ``pythia-trace sessions`` and ``pythia-trace top`` read
        this.
        """
        table = self.session_stats.snapshot()
        with self._lock:
            live = list(self._sessions.values())
        by_sid: dict[str, list[_Session]] = {}
        for session in live:
            if session.ctx_sid is not None:
                by_sid.setdefault(session.ctx_sid, []).append(session)
        for row in table["sessions"]:
            owned = by_sid.get(row["sid"], [])
            row["live_sessions"] = sorted(s.session_id for s in owned)
            if not owned:
                continue
            reports = []
            drift_states = []
            for session in owned:
                with session.lock:
                    reports.append(session.tracker.stats())
                    drift = session.tracker.drift
                    if drift is not None:
                        drift_states.append(drift.state)
            agg = aggregate_stats(reports)
            row["hit_rate"] = round(agg.get("hit_rate", 0.0), 4)
            row["observed"] = agg.get("observed", 0)
            row["candidates"] = agg.get("candidates", 0)
            # worst state wins: any diverged tracker flags the session
            for state in ("diverged", "drifting", "ok"):
                if state in drift_states:
                    row["drift_state"] = state
                    break
        return table

    #: labeled per-session families published by the collector; removed
    #: on LRU eviction so exposition cardinality stays bounded
    _SESSION_METRIC_FAMILIES: tuple[tuple[str, str, str], ...] = (
        ("pythia_session_requests_total", "counter",
         "Requests dispatched for a client session id"),
        ("pythia_session_errors_total", "counter",
         "Error responses sent to a client session id"),
        ("pythia_session_rid_regressions_total", "counter",
         "Requests whose request id failed to advance (duplicate/replay)"),
        ("pythia_session_last_rid", "gauge",
         "Highest request id seen from a client session id"),
        ("pythia_session_age_seconds", "gauge",
         "Seconds since a client session id was last seen"),
        ("pythia_session_hit_rate", "gauge",
         "Aggregate tracker hit rate of a client session id's live sessions"),
    )

    def _drop_session_metrics(self, entry: SessionEntry) -> None:
        """SessionStats eviction hook: drop the evicted sid's series."""
        registry = obs_metrics.get_registry()
        for name, _kind, _help in self._SESSION_METRIC_FAMILIES:
            registry.remove(name, {"session": entry.sid})

    def _op_metrics(self, request: dict, conn_id: int) -> dict:
        return {"text": render_prometheus(obs_metrics.get_registry())}

    def _op_profile_dump(self, request: dict, conn_id: int) -> dict:
        """Collapsed stacks / flamegraph SVG from the sampling profiler.

        ``seconds > 0`` collects a fresh window (snapshot-diffed against
        the running profiler, or on a temporary one while profiling is
        off); ``seconds == 0`` returns the running profiler's cumulative
        view.  Capped at 60 s — the window holds a request thread.
        """
        fmt = request.get("format", "collapsed")
        if fmt not in ("collapsed", "svg"):
            raise RequestError("bad_request", "'format' must be 'collapsed' or 'svg'")
        seconds = request.get("seconds", 0)
        if isinstance(seconds, bool) or not isinstance(seconds, (int, float)) \
                or not 0 <= seconds <= 60:
            raise RequestError("bad_request", "'seconds' must be a number in [0, 60]")
        hz = request.get("hz", 0)
        if isinstance(hz, bool) or not isinstance(hz, (int, float)) or hz < 0:
            raise RequestError("bad_request", "'hz' must be a number >= 0")
        prof = obs_profiler.get_profiler()
        if seconds > 0:
            stacks, report = obs_profiler.profile_window(
                float(seconds), float(hz) or obs_profiler.DEFAULT_HZ
            )
        elif prof is not None:
            stacks, report = prof.snapshot(), prof.report()
        else:
            raise RequestError(
                "profiler_off",
                "no profiler running (PYTHIA_PROFILE_HZ=0); pass seconds > 0 "
                "to collect a temporary window",
            )
        title = "pythia oracle daemon"
        if self.worker_id is not None:
            title += f" (worker {self.worker_id})"
        out: dict = {"format": fmt, "report": report}
        if fmt == "svg":
            out["profile"] = obs_profiler.render_flamegraph(stacks, title=title)
        else:
            out["profile"] = obs_profiler.render_collapsed(stacks)
        return out

    def _op_history(self, request: dict, conn_id: int) -> dict:
        """Metrics history view: series + per-second rates over a window."""
        hist = self.history
        if hist is None:
            raise RequestError(
                "history_off", "metrics history is disabled (PYTHIA_HISTORY=0)"
            )
        window = request.get("window")
        if window is not None and (
            isinstance(window, bool) or not isinstance(window, (int, float))
            or window <= 0
        ):
            raise RequestError("bad_request", "'window' must be a number > 0")
        keys = request.get("keys")
        if keys is not None and not (
            isinstance(keys, list) and all(isinstance(k, str) for k in keys)
        ):
            raise RequestError("bad_request", "'keys' must be a list of strings")
        return {"history": hist.view(keys, window)}

    # ------------------------------------------------------------------
    # HTTP observability provider (the obs.httpd duck interface)
    # ------------------------------------------------------------------

    def metrics_text(self) -> str:
        """The ``/metrics`` page (same exposition as the ``metrics`` op)."""
        return render_prometheus(obs_metrics.get_registry())

    def readiness(self) -> tuple[bool, str]:
        """``/ready``: False (503) while draining or stopped."""
        if self._draining.is_set():
            return False, "draining"
        if not self._running.is_set():
            return False, "stopped"
        return True, "ready"

    def sessions_view(self) -> dict:
        return self._op_sessions({}, 0)

    def stats_view(self) -> dict:
        return self._op_stats({}, 0)

    def profile_view(self, seconds: float, fmt: str, hz: float = 0.0) -> dict:
        return self._op_profile_dump(
            {"seconds": seconds, "format": fmt, "hz": hz}, 0
        )

    def history_view(self, window_s: float | None, keys: list[str] | None) -> dict:
        if self.history is None:
            return {"error": "history_off"}
        return self.history.view(keys, window_s)

    def _collect_metrics(self, registry: obs_metrics.MetricsRegistry) -> None:
        """Scrape-time collector: daemon counters, store and live trackers."""
        with self._lock:
            counters = dict(self.counters)
            sessions = list(self._sessions.values())
            store = self.store.snapshot()
        for name, value in counters.items():
            registry.counter(
                f"pythia_server_{name}", help="Daemon lifetime counter"
            )._set_total(value)
        registry.gauge(
            "pythia_server_sessions_active", help="Currently open sessions"
        ).set(len(sessions))
        registry.gauge(
            "pythia_server_draining", help="1 while the daemon refuses new work"
        ).set(1 if self._draining.is_set() else 0)
        for key in ("hits", "misses"):
            if key in store:
                registry.counter(
                    f"pythia_server_trace_store_{key}_total",
                    help="Trace store lookup outcome",
                )._set_total(store[key])
        for session in sessions:
            with session.lock:
                session.tracker.flush_metrics()
        # labeled per-client-session series; bounded by the LRU table
        # (eviction removes a sid's series via _drop_session_metrics)
        by_sid: dict[str, list[_Session]] = {}
        for session in sessions:
            if session.ctx_sid is not None:
                by_sid.setdefault(session.ctx_sid, []).append(session)
        helps = {name: help_text for name, _k, help_text in self._SESSION_METRIC_FAMILIES}
        now = time.time()
        for entry in self.session_stats.entries():
            labels = {"session": entry.sid}
            registry.counter(
                "pythia_session_requests_total", labels,
                help=helps["pythia_session_requests_total"],
            )._set_total(entry.requests)
            registry.counter(
                "pythia_session_errors_total", labels,
                help=helps["pythia_session_errors_total"],
            )._set_total(entry.errors)
            registry.counter(
                "pythia_session_rid_regressions_total", labels,
                help=helps["pythia_session_rid_regressions_total"],
            )._set_total(entry.rid_regressions)
            registry.gauge(
                "pythia_session_last_rid", labels,
                help=helps["pythia_session_last_rid"],
            ).set(entry.last_rid)
            registry.gauge(
                "pythia_session_age_seconds", labels,
                help=helps["pythia_session_age_seconds"],
            ).set(max(0.0, now - entry.last_seen))
            owned = by_sid.get(entry.sid)
            if owned:
                reports = []
                for session in owned:
                    with session.lock:
                        reports.append(session.tracker.stats())
                registry.gauge(
                    "pythia_session_hit_rate", labels,
                    help=helps["pythia_session_hit_rate"],
                ).set(round(aggregate_stats(reports).get("hit_rate", 0.0), 6))

    def _op_ping(self, request: dict, conn_id: int) -> dict:
        out: dict = {"pong": True}
        if self.worker_id is not None:
            out["worker"] = self.worker_id
            out["pid"] = os.getpid()
        return out

    def _op_hello(self, request: dict, conn_id: int) -> dict:
        """Protocol negotiation (v2).

        A client sends ``{"op": "hello", "proto": 2}`` once per
        connection; this daemon advertises the binary framing and
        pipelining.  An old daemon answers ``unknown_op`` instead, and
        the client stays on JSON for good — the whole fallback matrix
        hangs off this one exchange.
        """
        return {"hello": True, "binary": True, "pipeline": True, "version": 2}

    #: ops still answered while draining: clients closing down cleanly
    #: and monitors watching the drain happen must not be locked out
    _DRAIN_OPS = frozenset({"close_session", "ping", "stats", "sessions", "metrics",
                            "history", "profile_dump"})

    _HANDLERS = {
        "open_session": _op_open_session,
        "close_session": _op_close_session,
        "observe": _op_observe,
        "observe_batch": _op_observe_batch,
        "observe_predict": _op_observe_predict,
        "predict": _op_predict,
        "predict_duration": _op_predict_duration,
        "explain": _op_explain,
        "flight_dump": _op_flight_dump,
        "registry": _op_registry,
        "stats": _op_stats,
        "sessions": _op_sessions,
        "metrics": _op_metrics,
        "profile_dump": _op_profile_dump,
        "history": _op_history,
        "ping": _op_ping,
        "hello": _op_hello,
    }
