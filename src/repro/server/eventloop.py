"""``selectors``-based connection serving for the oracle daemon.

Thread-per-connection was fine while a handful of applications talked
to the daemon, but protocol v2's pipelining changes the shape of the
load: one client may keep dozens of requests in flight, and a runtime
host can hold hundreds of mostly-idle connections open.  A parked
thread per connection costs a stack and a scheduler slot for nothing;
an event loop costs one registered fd.

:class:`ConnectionLoop` serves every *data* connection of an
:class:`~repro.server.daemon.OracleServer` from a single selector
thread:

- sockets are non-blocking; raw chunks feed a per-connection
  :class:`~repro.server.protocol.FrameParser`, which yields complete
  frames of either framing (JSON or binary) in arrival order;
- fast ops dispatch inline on the loop thread — the tracker work behind
  ``observe_predict`` is microseconds, far below the cost of a thread
  handoff;
- ops that may block for real time (``open_session`` compiles a trace,
  ``profile_dump`` can sample a window for seconds) are offloaded to a
  sidecar thread.  While one is in flight the connection's parser is
  paused (its ``busy`` flag), so replies stay in request order — the
  ordering the implicit-rid tracing scheme and pipelined clients both
  rely on;
- replies are buffered and flushed as the socket allows; the loop
  registers for writability only while a buffer is non-empty
  (backpressure without threads);
- a framing violation gets one final error frame and then the
  connection is closed: after a bad length announcement the byte
  stream has no resync point, and the parser stays poisoned so the
  loop can never read garbage as frames.

Accounting — counters, ``_inflight`` for drain, drain-time rejection
with the retryable ``shutting_down`` code, per-(op, proto) latency
histograms, session telemetry — goes through the server's own
``_dispatch`` / ``_dispatch_binary``, so both io modes are
behaviorally identical; ``PYTHIA_SERVER_IO=threads`` brings the old
mode back.
"""

from __future__ import annotations

import queue
import selectors
import socket
import threading
import time
from collections import deque

from repro.obs.log import get_logger
from repro.server.protocol import (
    OP_JSON,
    ConnectionClosed,
    FrameParser,
    ProtocolError,
    encode_bin_error,
    encode_bin_frame,
    encode_json_body,
    encode_json_frame,
    _parse_json_body,
)

__all__ = ["ConnectionLoop", "SLOW_OPS"]

_log = get_logger("server.loop")

#: ops whose handlers may block for wall-clock time (trace compile,
#: profiler windows); they run on the sidecar thread so the loop keeps
#: serving every other connection meanwhile
SLOW_OPS = frozenset({"open_session", "profile_dump"})

_DRAIN_REPLY = {
    "ok": False,
    "code": "shutting_down",
    "error": "daemon is draining; reconnect and retry",
}

_RECV_CHUNK = 1 << 16


class _Conn:
    """Per-connection loop state."""

    __slots__ = (
        "sock", "conn_id", "parser", "out", "ctx",
        "busy", "eof", "closing", "closed", "want_write",
    )

    def __init__(self, sock: socket.socket, conn_id: int, max_frame: int) -> None:
        self.sock = sock
        self.conn_id = conn_id
        self.parser = FrameParser(max_frame)
        self.out = bytearray()
        #: tracing binding ``[sid, last_rid]`` — same shape the threaded
        #: serve loop passes to ``_dispatch``
        self.ctx: list = [None, 0]
        self.busy = False  # a slow op is in flight on the sidecar
        self.eof = False  # peer EOF seen; close once idle and flushed
        self.closing = False  # close as soon as ``out`` drains
        self.closed = False
        self.want_write = False


class ConnectionLoop:
    """One selector thread serving all of a server's data connections."""

    def __init__(self, server) -> None:
        self._server = server
        self._sel = selectors.DefaultSelector()
        self._conns: dict[int, _Conn] = {}
        self._pending_add: deque[tuple[socket.socket, int]] = deque()
        self._completions: deque[tuple[_Conn, bytes, bool]] = deque()
        self._slow_q: queue.SimpleQueue = queue.SimpleQueue()
        self._running = False
        self._thread: threading.Thread | None = None
        self._slow_thread: threading.Thread | None = None
        self._wake_r: socket.socket | None = None
        self._wake_w: socket.socket | None = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "ConnectionLoop":
        if self._running:
            return self
        self._running = True
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._sel.register(self._wake_r, selectors.EVENT_READ, None)
        self._slow_thread = threading.Thread(
            target=self._slow_run, name="pythia-loop-slow", daemon=True
        )
        self._slow_thread.start()
        self._thread = threading.Thread(
            target=self._run, name="pythia-loop", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        self._wake()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._slow_q.put(None)
        if self._slow_thread is not None:
            self._slow_thread.join(timeout=5)
        # the loop thread is gone; reap anything it still held
        for conn in list(self._conns.values()):
            self._close(conn)
        self._conns.clear()
        try:
            self._sel.close()
        except OSError:
            pass
        for sock in (self._wake_r, self._wake_w):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        self._thread = None
        self._slow_thread = None

    def add(self, conn: socket.socket, conn_id: int) -> None:
        """Hand a freshly accepted (or adopted) connection to the loop."""
        conn.setblocking(False)
        self._pending_add.append((conn, conn_id))
        self._wake()

    # -- loop body ------------------------------------------------------

    def _wake(self) -> None:
        w = self._wake_w
        if w is None:
            return
        try:
            w.send(b"\0")
        except OSError:
            pass

    def _run(self) -> None:
        while self._running:
            try:
                events = self._sel.select(timeout=0.5)
            except OSError:
                break
            self._admit_pending()
            self._drain_completions()
            for key, mask in events:
                conn = key.data
                if conn is None:
                    self._drain_wakeup()
                    continue
                if conn.closed:
                    continue
                if mask & selectors.EVENT_READ:
                    self._on_readable(conn)
                if mask & selectors.EVENT_WRITE and not conn.closed:
                    self._flush(conn)

    def _drain_wakeup(self) -> None:
        assert self._wake_r is not None
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, InterruptedError):
            pass
        except OSError:
            pass

    def _admit_pending(self) -> None:
        while self._pending_add:
            sock, conn_id = self._pending_add.popleft()
            if not self._running:
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            conn = _Conn(sock, conn_id, self._server.max_frame)
            self._conns[conn_id] = conn
            self._sel.register(sock, selectors.EVENT_READ, conn)

    def _drain_completions(self) -> None:
        server = self._server
        while self._completions:
            conn, reply, ok = self._completions.popleft()
            conn.busy = False
            if conn.closed:
                # the connection died while its slow op ran; a session
                # the op just opened would otherwise leak with a dead
                # owner, so sweep again
                server._close_owned_sessions(conn.conn_id)
                continue
            if not ok:
                with server._lock:
                    server.counters["connections_dropped"] += 1
                conn.closing = True
                self._flush(conn)
                continue
            conn.out += reply
            self._pump(conn)

    # -- per-connection events ------------------------------------------

    def _on_readable(self, conn: _Conn) -> None:
        try:
            data = conn.sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close(conn)
            return
        if not data:
            conn.eof = True
            self._pump(conn)
            return
        conn.parser.feed(data)
        self._pump(conn)

    def _pump(self, conn: _Conn) -> None:
        """Dispatch every complete frame buffered for ``conn``."""
        while not (conn.closed or conn.closing or conn.busy):
            try:
                frame = conn.parser.next_frame()
            except ProtocolError as exc:
                self._protocol_error(conn, exc)
                return
            if frame is None:
                break
            self._handle_frame(conn, frame)
        if conn.closed:
            return
        if conn.out:
            self._flush(conn)
        if conn.eof and not (conn.busy or conn.closed or conn.closing):
            if conn.out:
                conn.closing = True
            else:
                self._close(conn)

    def _protocol_error(self, conn: _Conn, exc: ProtocolError) -> None:
        """Bad framing: one final error frame, then close (no resync)."""
        server = self._server
        with server._lock:
            server.counters["connections_dropped"] += 1
        if not isinstance(exc, ConnectionClosed):
            conn.out += encode_json_frame(
                {"ok": False, "code": "protocol", "error": str(exc)}
            )
        conn.closing = True
        self._flush(conn)

    def _handle_frame(self, conn: _Conn, frame: tuple) -> None:
        server = self._server
        recv_ts = time.perf_counter()
        wrap = False
        if frame[0] == "json":
            request = frame[1]
        else:
            _kind, opcode, _flags, body = frame
            if opcode == OP_JSON:
                try:
                    request = _parse_json_body(body)
                except ProtocolError as exc:
                    self._protocol_error(conn, exc)
                    return
                wrap = True
            else:
                request = None
        op = request.get("op") if request is not None else None
        with server._lock:
            rejected = server._draining.is_set() and (
                request is None or op not in server._DRAIN_OPS
            )
            if rejected:
                server.counters["requests_rejected_draining"] += 1
            else:
                server._inflight += 1
        if rejected:
            # late request during drain: refuse retryably in the
            # request's own framing, keep the connection alive
            if request is None:
                conn.out += encode_bin_error(
                    _DRAIN_REPLY["code"], _DRAIN_REPLY["error"]
                )
            elif wrap:
                conn.out += encode_bin_frame(
                    OP_JSON, 0, encode_json_body(_DRAIN_REPLY)
                )
            else:
                conn.out += encode_json_frame(_DRAIN_REPLY)
            return
        if request is not None and op in SLOW_OPS:
            conn.busy = True
            self._slow_q.put((conn, request, wrap, recv_ts))
            return  # _inflight is released by the sidecar
        try:
            reply = self._execute(conn, request, frame, wrap, recv_ts)
        except Exception:
            # mirrors the threaded loop's last-ditch isolation (e.g. a
            # reply that outgrew max_frame): drop only this connection
            with server._lock:
                server.counters["connections_dropped"] += 1
            conn.closing = True
            reply = b""
        finally:
            with server._lock:
                server._inflight -= 1
        conn.out += reply

    def _execute(
        self, conn: _Conn, request: dict | None, frame: tuple | None,
        wrap: bool, recv_ts: float,
    ) -> bytes:
        """One request -> its reply frame bytes (either framing)."""
        server = self._server
        if request is not None:
            response, extra = server._dispatch(
                request, conn.conn_id, recv_ts, conn.ctx
            )
            if wrap:
                return encode_bin_frame(
                    OP_JSON, 0, encode_json_body(response, extra=extra),
                    max_frame=server.max_frame,
                )
            return encode_json_frame(
                response, max_frame=server.max_frame, extra=extra
            )
        assert frame is not None
        _kind, opcode, flags, body = frame
        return server._dispatch_binary(
            opcode, flags, body, conn.conn_id, recv_ts, conn.ctx
        )

    # -- sidecar for slow ops -------------------------------------------

    def _slow_run(self) -> None:
        server = self._server
        while True:
            item = self._slow_q.get()
            if item is None:
                return
            conn, request, wrap, recv_ts = item
            try:
                reply = self._execute(conn, request, None, wrap, recv_ts)
                ok = True
            except Exception:
                reply, ok = b"", False
            finally:
                with server._lock:
                    server._inflight -= 1
            self._completions.append((conn, reply, ok))
            self._wake()

    # -- writes / teardown ----------------------------------------------

    def _flush(self, conn: _Conn) -> None:
        if conn.closed:
            return
        sock = conn.sock
        while conn.out:
            try:
                n = sock.send(conn.out)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._close(conn)
                return
            if n <= 0:
                break
            del conn.out[:n]
        if conn.out:
            if not conn.want_write:
                conn.want_write = True
                self._sel.modify(
                    sock, selectors.EVENT_READ | selectors.EVENT_WRITE, conn
                )
        else:
            if conn.want_write:
                conn.want_write = False
                self._sel.modify(sock, selectors.EVENT_READ, conn)
            if conn.closing:
                self._close(conn)

    def _close(self, conn: _Conn) -> None:
        if conn.closed:
            return
        conn.closed = True
        try:
            self._sel.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        self._conns.pop(conn.conn_id, None)
        server = self._server
        server._close_owned_sessions(conn.conn_id)
        with server._lock:
            server._conns.pop(conn.conn_id, None)
