"""Multi-worker serving tier: one supervisor, N worker processes.

The single-process :class:`~repro.server.daemon.OracleServer` is
GIL-bound: adding sessions past one core's worth degrades aggregate
throughput (the committed ``BENCH_server.json`` baseline).
:class:`OracleSupervisor` runs N :mod:`repro.server.worker` processes —
each a full ``OracleServer`` with its own GIL — and routes every client
connection to one of them, so throughput scales with cores while each
session's state (tracker, rid continuity, latency digests) stays on
exactly one worker.

Routing (``routing="hash"``, the default, and the fallback everywhere
``SO_REUSEPORT`` cannot balance — Unix sockets, or platforms without
it):

- the supervisor owns the one listening socket (Unix or TCP), so its
  address outlives any worker crash;
- per accepted connection, a router thread ``MSG_PEEK``\\ s the first
  frame *without consuming it*, reads the client's session id from the
  ``ctx`` stamp, and picks a worker by consistent hash;
- the connection's fd is passed to that worker over ``SCM_RIGHTS``
  (:func:`socket.send_fds`); the worker adopts it and reads the byte
  stream from its pristine start.

Consistent hashing gives **sticky routing**: a client that reconnects
(same session id) lands on the same worker, so its
:class:`~repro.obs.sessions.SessionStats` row keeps accumulating and
rid continuity survives.  When a worker dies, only its sessions move —
the ring walks to the next live worker (rebalancing), and because the
replacement worker is spawned under the same worker id, they move back
once it is up (sticky *re*\\ binding).  Clients ride through via their
PR-5 reconnect/resync layer; the supervisor's listener never goes away,
so a reconnect succeeds immediately.

``routing="kernel"`` (TCP only) additionally gives every worker its own
``SO_REUSEPORT`` listener on the shared port and lets the kernel
balance accepts — zero fd-passing hops, but no session stickiness and
admin ops land on whichever worker the kernel picks; use it when raw
accept rate matters more than per-worker telemetry.

A connection whose first frame is an *admin* op (``metrics`` /
``sessions`` / ``stats`` / ``ping`` / ``workers``) with no session
context is served by the supervisor itself, which fans the request out
to every live worker over per-worker RPC channels and merges the
answers — ``metrics`` becomes one Prometheus exposition with a
``worker`` label on every sample (:func:`repro.obs.metrics.
merge_expositions`) plus the supervisor's own ``pythia_worker_*``
gauges; ``sessions`` is the union table with a ``worker`` column;
``stats`` sums counters across workers.  ``pythia-trace sessions`` and
``pythia-trace top`` work unchanged against a supervisor.

The monitor thread restarts crashed workers (same worker id) and
tracks restarts per worker; grammar loads stay one-per-host because
every worker's store maps the same compiled artifact
(:mod:`repro.core.mmap_grammar`).
"""

from __future__ import annotations

import bisect
import hashlib
import json
import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time

from repro.obs import profiler as obs_profiler
from repro.obs.log import get_logger
from repro.obs.metrics import (
    MetricsRegistry,
    merge_expositions,
    render_prometheus,
)
from repro.obs.process import register_process_metrics
from repro.server.daemon import OracleServer
from repro.server.protocol import (
    BIN_MAGIC,
    DEFAULT_MAX_FRAME,
    OP_JSON,
    ProtocolError,
    _BIN_HEADER,
    read_frame,
    write_frame,
)

__all__ = ["HashRing", "OracleSupervisor"]

_log = get_logger("supervisor")

_HEADER = struct.Struct(">I")

#: ops the supervisor answers itself (when the first frame carries no
#: session context); everything else is routed to a worker
SUPERVISOR_OPS = frozenset({"metrics", "sessions", "stats", "ping", "workers",
                            "profile_dump", "history"})

#: how much of an oversized first frame to peek before giving up on
#: reading its session id (such connections round-robin instead)
_PEEK_CAP = 64 * 1024


class HashRing:
    """Consistent hashing of session ids onto worker ids.

    Each worker contributes ``replicas`` virtual points on a 64-bit
    ring; a key routes to the first point clockwise from its own hash.
    Properties the serving tier relies on: the same key always routes
    to the same live worker (stickiness), and when a worker is excluded
    (crashed) only the keys it owned move — every other session stays
    put, and the moved ones come back when it returns (rebinding).
    """

    def __init__(self, worker_ids, *, replicas: int = 64) -> None:
        points: list[tuple[int, int]] = []
        for wid in worker_ids:
            for r in range(replicas):
                points.append((self._hash(f"{wid}:{r}"), wid))
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]

    @staticmethod
    def _hash(key: str) -> int:
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def route(self, key: str, alive=None) -> int | None:
        """The worker id owning ``key`` among ``alive`` (None = all)."""
        if not self._points:
            return None
        i = bisect.bisect_right(self._hashes, self._hash(key))
        n = len(self._points)
        for step in range(n):
            wid = self._points[(i + step) % n][1]
            if alive is None or wid in alive:
                return wid
        return None


class _Worker:
    """Supervisor-side record of one worker process."""

    __slots__ = ("wid", "proc", "conn_chan", "rpc_chan", "rpc_lock",
                 "restarts", "routed", "started_at")

    def __init__(self, wid: int) -> None:
        self.wid = wid
        self.proc: subprocess.Popen | None = None
        self.conn_chan: socket.socket | None = None
        self.rpc_chan: socket.socket | None = None
        self.rpc_lock = threading.Lock()
        self.restarts = 0
        self.routed = 0
        self.started_at = 0.0

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def close_channels(self) -> None:
        for chan in (self.conn_chan, self.rpc_chan):
            if chan is not None:
                try:
                    chan.close()
                except OSError:
                    pass
        self.conn_chan = None
        self.rpc_chan = None


class OracleSupervisor:
    """Spawn, route to, monitor and restart N oracle workers.

    Parameters
    ----------
    socket_path / tcp_address:
        The public address, exactly as :class:`OracleServer` takes
        them.  The supervisor owns it; workers receive connections by
        fd passing (or bind ``SO_REUSEPORT`` siblings under
        ``routing="kernel"``, TCP only).
    workers:
        Worker process count (default: ``os.cpu_count()``).
    routing:
        ``"hash"`` (sticky consistent-hash fd passing, the default) or
        ``"kernel"`` (``SO_REUSEPORT``; TCP only).
    use_mmap:
        Give workers mmap-artifact trace stores (one grammar compile
        and one page-cache copy per host).  Default True.
    cache_size:
        Per-worker :class:`~repro.server.store.TraceStore` capacity.
    drain_deadline:
        Seconds each worker gets to finish in-flight requests at
        shutdown.
    """

    def __init__(
        self,
        socket_path: str | os.PathLike | None = None,
        *,
        tcp_address: tuple[str, int] | None = None,
        workers: int | None = None,
        routing: str = "hash",
        use_mmap: bool = True,
        cache_size: int = 8,
        drain_deadline: float = 5.0,
        max_frame: int = DEFAULT_MAX_FRAME,
        peek_deadline: float = 2.0,
    ) -> None:
        if (socket_path is None) == (tcp_address is None):
            raise ValueError("exactly one of socket_path / tcp_address required")
        if routing not in ("hash", "kernel"):
            raise ValueError(f"unknown routing mode {routing!r}")
        if routing == "kernel" and tcp_address is None:
            raise ValueError("routing='kernel' needs tcp_address (SO_REUSEPORT "
                             "balances TCP listeners, not unix sockets)")
        if routing == "kernel" and not hasattr(socket, "SO_REUSEPORT"):
            raise ValueError("routing='kernel' needs SO_REUSEPORT support")
        n = workers if workers is not None else (os.cpu_count() or 1)
        if n < 1:
            raise ValueError("workers must be >= 1")
        self.socket_path = os.fspath(socket_path) if socket_path is not None else None
        self.tcp_address = tcp_address
        self.worker_count = n
        self.routing = routing
        self.use_mmap = use_mmap
        self.cache_size = cache_size
        self.drain_deadline = drain_deadline
        self.max_frame = max_frame
        self.peek_deadline = peek_deadline
        self.ring = HashRing(range(n))
        self._workers: dict[int, _Worker] = {wid: _Worker(wid) for wid in range(n)}
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._monitor_thread: threading.Thread | None = None
        self._router_threads: set[threading.Thread] = set()
        self._pending: set[socket.socket] = set()  # conns being routed
        self._running = threading.Event()
        self._draining = threading.Event()
        self._lock = threading.Lock()
        self._rr = 0  # round-robin cursor for sid-less connections
        #: private registry for supervisor-side gauges: the supervisor
        #: may share a process (tests) whose global registry belongs to
        #: other components
        self._registry = MetricsRegistry()
        register_process_metrics(self._registry)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> str | tuple[str, int]:
        """Where clients connect (socket path, or bound (host, port))."""
        if self.socket_path is not None:
            return self.socket_path
        assert self._listener is not None, "supervisor not started"
        return self._listener.getsockname()[:2]

    def start(self, *, ready_timeout: float = 30.0) -> "OracleSupervisor":
        """Bind, spawn the workers, wait for them, start routing."""
        if self._listener is not None:
            raise RuntimeError("supervisor already started")
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except FileNotFoundError:
                pass
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(self.socket_path)
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if self.routing == "kernel":
                listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            listener.bind(self.tcp_address)
        listener.listen(256)
        self._listener = listener
        self._running.set()
        self._draining.clear()
        for wid in self._workers:
            self._spawn_worker(wid)
        # one blocking ping per worker: catches import/startup failures
        # here, with a readable error, instead of at first routed request
        deadline = time.monotonic() + ready_timeout
        for w in self._workers.values():
            timeout = max(0.1, deadline - time.monotonic())
            try:
                self._worker_rpc(w, {"op": "ping"}, timeout=timeout)
            except (OSError, ProtocolError) as exc:
                self.stop()
                raise RuntimeError(
                    f"worker {w.wid} failed to start: {exc}"
                ) from exc
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="pythia-sup-accept", daemon=True
        )
        self._accept_thread.start()
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="pythia-sup-monitor", daemon=True
        )
        self._monitor_thread.start()
        _log.info("supervisor_started", address=str(self.address),
                  workers=self.worker_count, routing=self.routing)
        return self

    def drain(self, deadline: float | None = None) -> None:
        """Stop accepting; ask every worker to drain and exit."""
        if self._listener is None or self._draining.is_set():
            return
        self._draining.set()
        deadline = deadline if deadline is not None else self.drain_deadline
        _log.info("supervisor_draining", deadline=deadline)
        # shutdown wakes the accept thread; close alone would leave it
        # blocked in the syscall, keeping the listener (and its backlog)
        # alive for new connects
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        for w in list(self._workers.values()):
            if not w.alive:
                continue
            try:
                self._worker_rpc(w, {"op": "drain"}, timeout=1.0)
            except (OSError, ProtocolError):
                pass
        t0 = time.monotonic()
        for w in self._workers.values():
            if w.proc is None:
                continue
            left = max(0.0, deadline + 1.0 - (time.monotonic() - t0))
            try:
                w.proc.wait(timeout=left)
            except subprocess.TimeoutExpired:
                pass

    def stop(self) -> None:
        """Tear everything down: listener, routers, workers."""
        if self._listener is None:
            return
        self._running.clear()
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            pending = list(self._pending)
        for conn in pending:  # unblock router threads parked in peek
            try:
                conn.close()
            except OSError:
                pass
        for t in (self._accept_thread, self._monitor_thread):
            if t is not None:
                t.join(timeout=5)
        for t in list(self._router_threads):
            t.join(timeout=5)
        for w in self._workers.values():
            if w.alive:
                w.proc.terminate()  # SIGTERM: workers drain themselves
        deadline = time.monotonic() + self.drain_deadline + 2.0
        for w in self._workers.values():
            if w.proc is None:
                continue
            try:
                w.proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                w.proc.kill()
                w.proc.wait(timeout=5)
            w.close_channels()
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except FileNotFoundError:
                pass
        self._listener = None
        self._accept_thread = None
        self._monitor_thread = None
        _log.info("supervisor_stopped")

    def __enter__(self) -> "OracleSupervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def serve_forever(self, *, drain_deadline: float | None = None) -> None:
        """Block until SIGTERM (graceful drain) or Ctrl-C (immediate)."""
        if self._listener is None:
            self.start()
        stop_requested = threading.Event()
        old_handler = None
        in_main = threading.current_thread() is threading.main_thread()
        if in_main:
            old_handler = signal.signal(
                signal.SIGTERM, lambda *_sig: stop_requested.set()
            )
        try:
            while self._running.is_set() and not stop_requested.is_set():
                time.sleep(0.05)
        except KeyboardInterrupt:
            pass
        finally:
            if in_main and old_handler is not None:
                signal.signal(signal.SIGTERM, old_handler)
            if stop_requested.is_set():
                self.drain(drain_deadline)
            self.stop()

    # ------------------------------------------------------------------
    # worker processes
    # ------------------------------------------------------------------

    def _spawn_worker(self, wid: int) -> None:
        """Start (or restart) the worker process for slot ``wid``."""
        import repro

        w = self._workers[wid]
        w.close_channels()
        conn_sup, conn_wk = socket.socketpair()
        rpc_sup, rpc_wk = socket.socketpair()
        cmd = [
            sys.executable, "-m", "repro.server.worker",
            "--worker-id", str(wid),
            "--conn-fd", str(conn_wk.fileno()),
            "--rpc-fd", str(rpc_wk.fileno()),
            "--cache-size", str(self.cache_size),
            "--drain-deadline", str(self.drain_deadline),
        ]
        if not self.use_mmap:
            cmd.append("--no-mmap")
        if self.routing == "kernel":
            host, port = self.address
            cmd += ["--tcp-listen", f"{host}:{port}"]
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_dir + os.pathsep + existing if existing else src_dir
        )
        w.proc = subprocess.Popen(
            cmd, env=env, pass_fds=(conn_wk.fileno(), rpc_wk.fileno())
        )
        conn_wk.close()
        rpc_wk.close()
        w.conn_chan = conn_sup
        w.rpc_chan = rpc_sup
        w.started_at = time.monotonic()
        _log.info("worker_spawned", worker=wid, pid=w.proc.pid)

    def _monitor_loop(self) -> None:
        """Restart crashed workers under their original worker id."""
        while self._running.is_set():
            if not self._draining.is_set():
                for w in list(self._workers.values()):
                    if w.proc is not None and w.proc.poll() is not None:
                        _log.warning(
                            "worker_died", worker=w.wid, pid=w.proc.pid,
                            returncode=w.proc.returncode,
                        )
                        w.restarts += 1
                        self._spawn_worker(w.wid)
            time.sleep(0.05)

    def _alive_ids(self) -> set[int]:
        return {wid for wid, w in self._workers.items() if w.alive}

    def _worker_rpc(self, w: _Worker, request: dict, *, timeout: float = 5.0) -> dict:
        """One framed request/reply on a worker's control channel."""
        with w.rpc_lock:
            chan = w.rpc_chan
            if chan is None:
                raise OSError("worker control channel is closed")
            chan.settimeout(timeout)
            write_frame(chan, request)
            response = read_frame(chan)
        if response is None:
            raise OSError("worker closed its control channel")
        return response

    def _fan_out(self, request: dict, *, timeout: float = 5.0) -> dict[int, dict]:
        """The request against every live worker; dead/failed skipped."""
        out: dict[int, dict] = {}
        for wid in sorted(self._alive_ids()):
            w = self._workers[wid]
            try:
                response = self._worker_rpc(w, request, timeout=timeout)
            except (OSError, ProtocolError) as exc:
                _log.warning("worker_rpc_failed", worker=wid, error=str(exc))
                continue
            if response.get("ok"):
                out[wid] = response
        return out

    def _fan_out_parallel(
        self, request: dict, *, timeout: float = 5.0
    ) -> dict[int, dict]:
        """Like :meth:`_fan_out`, but concurrently.

        Windowed ``profile`` requests block each worker for the window;
        running them serially would turn a 5-second profile of 4
        workers into 20 wall seconds.
        """
        out: dict[int, dict] = {}
        lock = threading.Lock()

        def one(wid: int) -> None:
            w = self._workers[wid]
            try:
                response = self._worker_rpc(w, request, timeout=timeout)
            except (OSError, ProtocolError) as exc:
                _log.warning("worker_rpc_failed", worker=wid, error=str(exc))
                return
            if response.get("ok"):
                with lock:
                    out[wid] = response

        threads = [
            threading.Thread(target=one, args=(wid,), daemon=True)
            for wid in sorted(self._alive_ids())
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=timeout + 1.0)
        return out

    # ------------------------------------------------------------------
    # connection routing
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while self._running.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break  # listener closed
            with self._lock:
                self._pending.add(conn)
            t = threading.Thread(
                target=self._route_connection, args=(conn,),
                name="pythia-sup-router", daemon=True,
            )
            self._router_threads.add(t)
            t.start()

    def _peek_first_frame(self, conn: socket.socket) -> dict | None:
        """The connection's first frame, without consuming any bytes.

        Blocks indefinitely for the first byte (an idle client costs
        nothing), then gives the rest of the frame ``peek_deadline``
        seconds.  Returns ``None`` when the frame cannot be read (EOF,
        timeout, too large to peek, malformed) — the caller then
        round-robins the connection; the worker will produce the real
        protocol error, exactly as a single-process daemon would.

        Understands both framings: length-prefixed JSON and the v2
        binary framing (first byte ``0xA7``).  A binary ``OP_JSON``
        wrapper is unwrapped and its JSON parsed for ctx; any other
        binary opcode is a bare steady-state frame with no session id
        on the wire, so the connection routes blind.
        """
        conn.settimeout(None)
        buf = conn.recv(_HEADER.size, socket.MSG_PEEK)
        if not buf:
            return None
        binary = buf[0] == BIN_MAGIC
        header_size = _BIN_HEADER.size if binary else _HEADER.size
        deadline = time.monotonic() + self.peek_deadline
        want = header_size
        while True:
            if len(buf) >= want:
                if want == header_size:
                    if binary:
                        _magic, opcode, _flags, length = _BIN_HEADER.unpack(
                            buf[:header_size])
                        if opcode != OP_JSON:
                            return None  # bare binary op: route blind
                    else:
                        (length,) = _HEADER.unpack(buf[:header_size])
                    if length > _PEEK_CAP:
                        return None  # giant first frame: route blind
                    want = header_size + length
                    continue
                body = buf[header_size:want]
                try:
                    obj = json.loads(body.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    return None
                return obj if isinstance(obj, dict) else None
            if time.monotonic() >= deadline:
                return None
            conn.settimeout(max(0.01, deadline - time.monotonic()))
            try:
                more = conn.recv(want, socket.MSG_PEEK)
            except (TimeoutError, OSError):
                return None
            if not more:
                return None
            if len(more) == len(buf):
                time.sleep(0.001)  # peek re-reads from the front
            buf = more

    def _route_connection(self, conn: socket.socket) -> None:
        """Pick a destination for one accepted connection."""
        try:
            try:
                request = self._peek_first_frame(conn)
            except OSError:
                request = None
            if request is None and not self._running.is_set():
                return  # closed under us by stop()
            sid = None
            op = None
            if request is not None:
                op = request.get("op")
                sid, _rid = OracleServer._request_ctx(request)
            if request is not None and sid is None and op in SUPERVISOR_OPS:
                with self._lock:
                    self._pending.discard(conn)
                self._serve_admin(conn)
                return
            self._hand_off(conn, sid)
        except Exception:
            _log.warning("router_failed", error="unexpected routing error")
        finally:
            with self._lock:
                self._pending.discard(conn)
            try:
                conn.close()  # workers own their dup; admin conns are done
            except OSError:
                pass
            self._router_threads.discard(threading.current_thread())

    def _pick_worker(self, sid: str | None) -> int | None:
        alive = self._alive_ids()
        if not alive:
            return None
        if sid is not None:
            return self.ring.route(sid, alive)
        with self._lock:
            self._rr += 1
            cursor = self._rr
        ordered = sorted(alive)
        return ordered[cursor % len(ordered)]

    def _hand_off(self, conn: socket.socket, sid: str | None) -> None:
        """Pass the connection fd to its worker (retrying over crashes)."""
        for _attempt in range(self.worker_count + 1):
            wid = self._pick_worker(sid)
            if wid is None:
                break
            w = self._workers[wid]
            chan = w.conn_chan
            if chan is None:
                continue
            try:
                socket.send_fds(chan, [b"c"], [conn.fileno()])
            except OSError:
                # worker died between liveness check and send: the
                # monitor will respawn it; try the next candidate
                # (ring.route skips it once poll() notices)
                time.sleep(0.02)
                continue
            w.routed += 1
            return
        # no live worker took it: answer retryably so the client's
        # reconnect layer comes back once the monitor has respawned one
        try:
            write_frame(conn, {
                "ok": False, "code": "shutting_down",
                "error": "no worker available; retry",
            })
        except OSError:
            pass

    # ------------------------------------------------------------------
    # supervisor-served admin connections
    # ------------------------------------------------------------------

    def _serve_admin(self, conn: socket.socket) -> None:
        """Serve a monitoring connection entirely in the supervisor."""
        conn.settimeout(None)
        while self._running.is_set():
            try:
                request = read_frame(conn, max_frame=self.max_frame)
            except (ProtocolError, OSError):
                return
            if request is None:
                return
            op = request.get("op")
            try:
                if op == "ping":
                    response = {
                        "ok": True, "pong": True, "role": "supervisor",
                        "pid": os.getpid(),
                        "workers": len(self._alive_ids()),
                    }
                elif op == "workers":
                    response = {"ok": True, **self._op_workers(request)}
                elif op == "metrics":
                    # same reply shape as the daemon's metrics op, so
                    # `pythia-trace metrics` works against either tier
                    response = {"ok": True, "text": self._merged_metrics()}
                elif op == "sessions":
                    response = {"ok": True, **self._merged_sessions()}
                elif op == "stats":
                    response = {"ok": True, **self._merged_stats()}
                elif op == "profile_dump":
                    response = {"ok": True, **self._merged_profile(request)}
                elif op == "history":
                    response = {"ok": True, **self._merged_history(request)}
                else:
                    response = {
                        "ok": False, "code": "bad_request",
                        "error": "this connection is bound to the supervisor; "
                                 "open a new one for session ops",
                    }
            except Exception as exc:  # keep the admin loop alive
                response = {"ok": False, "code": "internal", "error": str(exc)}
            try:
                write_frame(conn, response, max_frame=self.max_frame)
            except OSError:
                return

    def _op_workers(self, request: dict) -> dict:
        """Worker table (+ ``home`` routing answer for an offered sid)."""
        table = {}
        for wid, w in sorted(self._workers.items()):
            table[str(wid)] = {
                "pid": w.proc.pid if w.proc is not None else None,
                "alive": w.alive,
                "restarts": w.restarts,
                "connections_routed": w.routed,
                "uptime_s": round(time.monotonic() - w.started_at, 3)
                if w.started_at else None,
            }
        out = {"workers": table, "routing": self.routing,
               "worker_count": self.worker_count}
        sid = request.get("sid")
        if isinstance(sid, str) and sid:
            out["home"] = self.ring.route(sid, self._alive_ids())
        return out

    def _own_metrics(self) -> str:
        """The supervisor's ``pythia_worker_*`` gauges, as exposition."""
        reg = self._registry
        for wid, w in self._workers.items():
            labels = {"worker": str(wid)}
            reg.gauge(
                "pythia_worker_up", labels,
                help="1 while the worker process is alive",
            ).set(1.0 if w.alive else 0.0)
            reg.gauge(
                "pythia_worker_pid", labels,
                help="PID of the worker process",
            ).set(float(w.proc.pid) if w.proc is not None else 0.0)
            restarts = reg.counter(
                "pythia_worker_restarts_total", labels,
                help="Times the supervisor restarted this worker",
            )
            restarts._set_total(w.restarts)
            routed = reg.counter(
                "pythia_worker_connections_routed_total", labels,
                help="Client connections handed to this worker",
            )
            routed._set_total(w.routed)
        return render_prometheus(reg)

    def _merged_metrics(self) -> str:
        """One Prometheus page: every worker's registry + supervisor gauges.

        The supervisor's own page goes through the merge (``own=``)
        rather than being concatenated, so a family living on both
        sides — every process has ``pythia_process_*`` — keeps exactly
        one ``# HELP`` / ``# TYPE`` announcement.
        """
        answers = self._fan_out({"op": "metrics"})
        pages = {
            wid: resp.get("metrics", "")
            for wid, resp in answers.items()
            if isinstance(resp.get("metrics"), str)
        }
        return merge_expositions(pages, own=self._own_metrics())

    def _merged_sessions(self) -> dict:
        """The union session table; every row tagged with its worker."""
        answers = self._fan_out({"op": "sessions"})
        rows: list[dict] = []
        tracked = evicted = 0
        capacity = 0
        for wid, resp in answers.items():
            for row in resp.get("sessions", []):
                row = dict(row)
                row["worker"] = wid
                rows.append(row)
            tracked += int(resp.get("tracked", 0) or 0)
            evicted += int(resp.get("evicted", 0) or 0)
            capacity += int(resp.get("capacity", 0) or 0)
        rows.sort(key=lambda r: r.get("last_seen", 0), reverse=True)
        return {"sessions": rows, "tracked": tracked, "evicted": evicted,
                "capacity": capacity, "workers": sorted(answers)}

    def _merged_stats(self) -> dict:
        """Cross-worker stats: summed counters + per-worker detail."""
        answers = self._fan_out({"op": "stats"})
        counters: dict[str, int] = {}
        store: dict[str, int] = {}
        artifacts: set[str] = set()
        sessions_active = 0
        per_worker: dict[str, dict] = {}
        for wid, resp in answers.items():
            for key, val in (resp.get("counters") or {}).items():
                counters[key] = counters.get(key, 0) + int(val)
            snap = resp.get("store") or {}
            for key, val in snap.items():
                if key == "artifacts":
                    artifacts.update(val or [])
                elif isinstance(val, (int, float)):
                    store[key] = store.get(key, 0) + int(val)
            sessions_active += int(resp.get("sessions_active", 0) or 0)
            per_worker[str(wid)] = {
                "counters": resp.get("counters"),
                "sessions_active": resp.get("sessions_active"),
                "store": snap,
                "latency": resp.get("latency"),
            }
        if artifacts:
            store["artifacts"] = sorted(artifacts)
        return {
            "role": "supervisor",
            "routing": self.routing,
            "counters": counters,
            "sessions_active": sessions_active,
            "store": store,
            "workers": per_worker,
            "worker_restarts": {
                str(wid): w.restarts for wid, w in sorted(self._workers.items())
            },
        }

    def _merged_profile(self, request: dict) -> dict:
        """Fan a profile window out to every worker; merge the stacks.

        Each worker's stacks come back rooted under ``worker N`` so one
        flamegraph shows the whole tier with per-worker attribution.
        Workers collect concurrently (:meth:`_fan_out_parallel`) — the
        wall time is one window, not N.
        """
        fmt = request.get("format", "collapsed")
        if fmt not in ("collapsed", "svg"):
            return {"ok": False, "code": "bad_request",
                    "error": "'format' must be 'collapsed' or 'svg'"}
        seconds = request.get("seconds", 0)
        if isinstance(seconds, bool) or not isinstance(seconds, (int, float)) \
                or not 0 <= seconds <= 60:
            return {"ok": False, "code": "bad_request",
                    "error": "'seconds' must be a number in [0, 60]"}
        rpc = {"op": "profile", "seconds": seconds, "hz": request.get("hz", 0)}
        answers = self._fan_out_parallel(rpc, timeout=float(seconds) + 10.0)
        stacks: dict[str, int] = {}
        reports: dict[str, dict] = {}
        for wid, resp in sorted(answers.items()):
            text = resp.get("profile")
            if not isinstance(text, str):
                continue
            for stack, count in obs_profiler.parse_collapsed(text).items():
                key = f"worker {wid};{stack}"
                stacks[key] = stacks.get(key, 0) + count
            if isinstance(resp.get("report"), dict):
                reports[str(wid)] = resp["report"]
        title = f"pythia oracle tier ({len(answers)} workers)"
        out: dict = {
            "format": fmt,
            "report": {
                "samples": sum(stacks.values()),
                "workers": reports,
            },
        }
        if fmt == "svg":
            out["profile"] = obs_profiler.render_flamegraph(stacks, title=title)
        else:
            out["profile"] = obs_profiler.render_collapsed(stacks)
        return out

    def _merged_history(self, request: dict) -> dict:
        """Per-worker history views + tier-wide rates (summed per key)."""
        rpc = {"op": "history"}
        for field in ("window", "keys"):
            if request.get(field) is not None:
                rpc[field] = request[field]
        answers = self._fan_out(rpc)
        workers: dict[str, dict] = {}
        rates: dict[str, float] = {}
        interval = None
        for wid, resp in sorted(answers.items()):
            view = resp.get("history")
            if not isinstance(view, dict):
                continue
            workers[str(wid)] = view
            if interval is None:
                interval = view.get("interval")
            for key, rate in (view.get("rates") or {}).items():
                if rate is not None:
                    rates[key] = rates.get(key, 0.0) + rate
        return {"history": {
            "role": "supervisor",
            "interval": interval,
            "rates": rates,
            "workers": workers,
        }}

    # ------------------------------------------------------------------
    # HTTP observability provider (the obs.httpd duck interface)
    # ------------------------------------------------------------------

    def metrics_text(self) -> str:
        """The ``/metrics`` page (same exposition as the ``metrics`` op)."""
        return self._merged_metrics()

    def readiness(self) -> tuple[bool, str]:
        """``/ready``: 503 while draining, stopped, or fully worker-less."""
        if self._draining.is_set():
            return False, "draining"
        if not self._running.is_set():
            return False, "stopped"
        alive = len(self._alive_ids())
        if alive == 0:
            return False, "no live workers"
        return True, f"ready ({alive}/{self.worker_count} workers)"

    def sessions_view(self) -> dict:
        return self._merged_sessions()

    def stats_view(self) -> dict:
        return self._merged_stats()

    def profile_view(self, seconds: float, fmt: str, hz: float = 0.0) -> dict:
        out = self._merged_profile({"seconds": seconds, "format": fmt, "hz": hz})
        if out.get("ok") is False:
            raise ValueError(out.get("error", "profile failed"))
        return out

    def history_view(self, window_s: float | None, keys: list[str] | None) -> dict:
        return self._merged_history({"window": window_s, "keys": keys})["history"]
