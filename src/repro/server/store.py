"""Shared trace store: load every trace file once, serve many sessions.

The in-process :class:`~repro.core.oracle.Pythia` reloads and re-indexes
its trace on every process start; the daemon instead keeps an LRU-bounded
cache of loaded bundles keyed by the file's identity (path + mtime +
size), so N concurrent sessions over the same reference execution share
one :class:`~repro.core.trace_file.Trace` (and therefore one
:class:`~repro.core.frozen.FrozenGrammar` and
:class:`~repro.core.timing.TimingTable` per thread).  Bundles are
immutable once loaded — each session gets its own
:class:`~repro.core.predict.PythiaPredict` tracker on top.

Concurrency: lookups and LRU bookkeeping happen under one lock; the
actual file load happens outside it behind a per-entry event, so two
sessions opening the same cold trace trigger a single load and a slow
load of one trace never blocks hits on another.

With ``use_mmap=True`` the same guarantee extends across *processes*:
instead of parsing the JSON trace, the store maps the compiled artifact
(:mod:`repro.core.mmap_grammar`).  :func:`ensure_artifact` holds an
exclusive file lock around compilation, so when the multi-worker daemon
starts N workers against one cold trace exactly one process parses and
compiles while the rest wait on the lock and map the finished file —
the in-process ``waiters_ok`` accounting extended by the cross-process
``artifact_compiles`` / ``artifact_waits`` / ``artifact_reuses``
counters in :meth:`TraceStore.snapshot`.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.core.events import EventRegistry
from repro.core.mmap_grammar import (
    ArtifactFormatError,
    ensure_artifact,
    load_artifact,
)
from repro.core.predict import PythiaPredict
from repro.core.trace_file import Trace, TraceFormatError, load_trace

__all__ = ["TraceBundle", "TraceStore"]

#: (mtime_ns, size) — identifies one version of a trace file
_Sig = tuple[int, int]


@dataclass(frozen=True, slots=True)
class TraceBundle:
    """One loaded trace, shared read-only between sessions."""

    path: str
    signature: _Sig
    trace: Trace
    #: compiled artifact backing this bundle (mmap loads only)
    artifact: str | None = None

    @property
    def registry(self) -> EventRegistry:
        return self.trace.registry

    def threads(self) -> list[int]:
        return sorted(self.trace.threads)

    def tracker(self, thread: int, *, max_candidates: int = 64) -> PythiaPredict:
        """A fresh per-session tracker over this bundle's grammar.

        Raises :class:`KeyError` when the reference trace has no such
        thread (mirrors the facade).
        """
        tt = self.trace.threads.get(thread)
        if tt is None:
            raise KeyError(f"reference trace has no thread {thread}")
        return PythiaPredict(tt.grammar, tt.timing, max_candidates=max_candidates)


def _per_waiter_copy(exc: Exception) -> Exception:
    """A fresh instance of ``exc`` safe to raise in another thread.

    Falls back to wrapping in :class:`TraceFormatError` for exception
    types whose constructor does not round-trip ``args``.
    """
    try:
        clone = type(exc)(*exc.args)
        if not isinstance(clone, type(exc)):  # exotic __new__ tricks
            raise TypeError
    except Exception:
        return TraceFormatError(f"concurrent trace load failed: {exc}")
    return clone


class _Entry:
    __slots__ = ("signature", "bundle", "error", "ready")

    def __init__(self, signature: _Sig) -> None:
        self.signature = signature
        self.bundle: TraceBundle | None = None
        self.error: Exception | None = None
        self.ready = threading.Event()


class TraceStore:
    """LRU-bounded, thread-safe cache of :class:`TraceBundle`.

    Parameters
    ----------
    capacity:
        Maximum number of cached bundles; least-recently-used bundles
        beyond it are evicted (their sessions keep a reference and stay
        valid — eviction only forgets the cache slot).
    use_mmap:
        Load traces through the compiled mmap artifact
        (:mod:`repro.core.mmap_grammar`) instead of parsing the JSON
        form.  Workers of one host then share a single on-disk compile
        and one page-cache copy of the grammar tables.
    """

    def __init__(self, capacity: int = 8, *, use_mmap: bool = False) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.use_mmap = use_mmap
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        # observability counters (read via snapshot())
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.waiters_ok = 0
        self.waiters_failed = 0
        # cross-process artifact accounting (use_mmap only)
        self.artifact_compiles = 0
        self.artifact_waits = 0
        self.artifact_reuses = 0

    # ------------------------------------------------------------------

    @staticmethod
    def _signature(path: str) -> _Sig:
        st = os.stat(path)
        return (st.st_mtime_ns, st.st_size)

    def get(self, path: str | os.PathLike) -> TraceBundle:
        """Return the bundle for ``path``, loading it at most once.

        A changed file (different mtime/size) invalidates the cached
        bundle and reloads.  Raises whatever :func:`load_trace` raises
        (:class:`FileNotFoundError`, :class:`TraceFormatError`).
        """
        path = os.path.abspath(os.fspath(path))
        sig = self._signature(path)  # raises FileNotFoundError for absent files
        with self._lock:
            entry = self._entries.get(path)
            if entry is not None and entry.signature == sig and entry.error is None:
                self._entries.move_to_end(path)
                if entry.ready.is_set():
                    self.hits += 1
                    assert entry.bundle is not None
                    return entry.bundle
                loader = False
            else:
                if entry is not None:
                    self.invalidations += 1
                    del self._entries[path]
                entry = _Entry(sig)
                self._entries[path] = entry
                self.misses += 1
                loader = True
                while len(self._entries) > self.capacity:
                    victim, _ = self._entries.popitem(last=False)
                    if victim != path:
                        self.evictions += 1
        if loader:
            try:
                bundle = self._load(path, sig)
                entry.bundle = bundle
            except Exception as exc:
                entry.error = exc
                with self._lock:
                    # forget failed loads so a repaired file retries
                    if self._entries.get(path) is entry:
                        del self._entries[path]
                raise
            finally:
                entry.ready.set()
            return bundle
        entry.ready.wait()
        if entry.error is not None:
            with self._lock:
                self.waiters_failed += 1
            # Each waiter raises its own exception instance: re-raising
            # the loader's would let N threads race to mutate one
            # __traceback__/__context__, cross-contaminating tracebacks.
            raise _per_waiter_copy(entry.error) from entry.error
        with self._lock:
            self.hits += 1
            self.waiters_ok += 1
        assert entry.bundle is not None
        return entry.bundle

    def _load(self, path: str, sig: _Sig) -> TraceBundle:
        """One actual trace load (runs outside the store lock)."""
        if not self.use_mmap:
            return TraceBundle(path, sig, load_trace(path))
        artifact, outcome = ensure_artifact(path)
        try:
            trace = load_artifact(artifact, expected_signature=sig)
        except ArtifactFormatError:
            # corrupt or concurrently-replaced artifact: recompile once
            # under the lock and retry; a second failure propagates
            artifact, outcome = ensure_artifact(path, force=True)
            trace = load_artifact(artifact, expected_signature=sig)
        with self._lock:
            if outcome == "compiled":
                self.artifact_compiles += 1
            elif outcome == "waited":
                # cross-process cousin of waiters_ok: we blocked while
                # another process compiled, then mapped its output
                self.artifact_waits += 1
                self.waiters_ok += 1
            else:
                self.artifact_reuses += 1
        return TraceBundle(path, sig, trace, artifact=artifact)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def invalidate(self, path: str | os.PathLike) -> bool:
        """Drop one cached bundle; True if it was cached."""
        path = os.path.abspath(os.fspath(path))
        with self._lock:
            if path in self._entries:
                del self._entries[path]
                self.invalidations += 1
                return True
            return False

    def clear(self) -> None:
        """Drop every cached bundle."""
        with self._lock:
            self._entries.clear()

    def snapshot(self) -> dict:
        """Counters for the ``stats`` endpoint."""
        with self._lock:
            snap: dict = {
                "cached": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "waiters_ok": self.waiters_ok,
                "waiters_failed": self.waiters_failed,
            }
            if self.use_mmap:
                snap["artifact_compiles"] = self.artifact_compiles
                snap["artifact_waits"] = self.artifact_waits
                snap["artifact_reuses"] = self.artifact_reuses
                snap["artifacts"] = sorted(
                    {
                        e.bundle.artifact
                        for e in self._entries.values()
                        if e.bundle is not None and e.bundle.artifact
                    }
                )
            return snap
