"""The PYTHIA-enabled MPI runtime system (§III-B).

The paper intercepts MPI primitives with ``LD_PRELOAD``; here the
simulated :class:`~repro.mpi.comm.SimComm` calls this shim directly.
For each MPI function one event is recorded, whose payload carries the
same distinguishing information as the paper's implementation: the
source/destination rank for point-to-point primitives, the reduction
operation for reductions, the root for rooted collectives.

At every ``MPI_Wait``/``MPI_Waitall``/blocking-collective entry the shim
asks the oracle to predict the event ``distance`` events ahead — "this
mimics the behavior of an MPI runtime system that would use the
synchronization time to perform an optimization" — and scores the
prediction once the target event actually happens (that scoring
machinery regenerates Fig 8).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.events import Event
from repro.core.oracle import Pythia
from repro.mpi.comm import SimComm
from repro.runtime.faults import ErrorInjector

__all__ = ["MPIRuntimeSystem", "PredictionScore"]

#: simulated cost charged per recorded event (s): a grammar append plus
#: the interception trampoline — sub-microsecond in the paper's C library
RECORD_EVENT_COST = 0.25e-6

#: simulated base + per-distance cost of one prediction (Fig 9 shows a
#: linear growth from ~sub-us to tens of us)
PREDICT_BASE_COST = 0.5e-6
PREDICT_DISTANCE_COST = 0.25e-6


@dataclass(slots=True)
class PredictionScore:
    """Aggregated prediction outcomes for one distance."""

    distance: int
    correct: int = 0
    incorrect: int = 0
    missing: int = 0  # the oracle was lost / had no prediction

    @property
    def total(self) -> int:
        """All scoring opportunities."""
        return self.correct + self.incorrect + self.missing

    @property
    def accuracy(self) -> float:
        """Correct fraction among *made* predictions (paper's metric)."""
        made = self.correct + self.incorrect
        return self.correct / made if made else 0.0


@dataclass(slots=True)
class _Pending:
    target_index: int
    distance: int
    predicted: int | None


class MPIRuntimeSystem:
    """Per-rank interception shim feeding PYTHIA.

    Parameters
    ----------
    oracle:
        The shared :class:`~repro.core.oracle.Pythia` (rank = thread id).
    rank / comm:
        The simulated rank this shim serves.
    distances:
        Prediction distances requested at synchronisation points.
    error_injector:
        Optional §III-E fault injection.
    """

    def __init__(
        self,
        oracle: Pythia,
        rank: int,
        comm: SimComm,
        *,
        distances: Sequence[int] = (1,),
        sample_stride: int = 1,
        error_injector: ErrorInjector | None = None,
    ) -> None:
        if sample_stride < 1:
            raise ValueError("sample_stride must be >= 1")
        self.oracle = oracle
        self.rank = rank
        self.comm = comm
        self.distances = tuple(distances)
        self.sample_stride = sample_stride
        self.error_injector = error_injector
        self.events_seen = 0
        self.sync_points = 0
        self.scores = {d: PredictionScore(d) for d in self.distances}
        # one queue per distance: each is monotone in target_index
        self._pending: dict[int, deque[_Pending]] = {d: deque() for d in self.distances}
        self._debt = 0.0

    # -- Interceptor protocol ------------------------------------------------

    def mpi_call(self, fn: str, payload: Any) -> None:
        """Record one event for an MPI call entry."""
        if self.error_injector is not None:
            self.error_injector.maybe_inject(self._submit)
        self._submit(fn, payload)

    def _submit(self, name: str, payload: Any) -> None:
        self._score_arrival(name, payload)
        self.oracle.event(name, payload, timestamp=self.comm.now, thread=self.rank)
        self.events_seen += 1
        self._debt += RECORD_EVENT_COST

    def mpi_sync(self, fn: str) -> None:
        """Ask for predictions at a synchronisation point (predict mode).

        ``sample_stride`` thins the prediction points: the paper's C
        implementation predicts at every synchronisation; this Python
        reproduction samples every N-th one to keep experiment wall time
        reasonable without changing the measured accuracy.
        """
        if not self.oracle.predicting or not self.distances:
            return
        self.sync_points += 1
        if (self.sync_points - 1) % self.sample_stride:
            return
        for d in self.distances:
            pred = self.oracle.predict(d, thread=self.rank)
            terminal = pred.terminal if pred is not None else None
            self._pending[d].append(
                _Pending(target_index=self.events_seen + d, distance=d, predicted=terminal)
            )
            self._debt += PREDICT_BASE_COST + PREDICT_DISTANCE_COST * d

    def take_overhead(self) -> float:
        """Oracle time to charge to the simulated clock."""
        debt, self._debt = self._debt, 0.0
        return debt

    # -- scoring ---------------------------------------------------------------

    def _score_arrival(self, name: str, payload: Any) -> None:
        index = self.events_seen + 1  # index this event will occupy
        actual: int | None = None
        looked_up = False
        for d, queue in self._pending.items():
            while queue and queue[0].target_index <= index:
                pending = queue.popleft()
                if pending.target_index < index:
                    continue  # stale (should not happen)
                if not looked_up:
                    actual = self.oracle.registry.lookup(Event(name, payload))
                    looked_up = True
                score = self.scores[d]
                if pending.predicted is None:
                    score.missing += 1
                elif actual is not None and pending.predicted == actual:
                    score.correct += 1
                else:
                    score.incorrect += 1

    # -- reporting ---------------------------------------------------------------

    def accuracy(self, distance: int) -> float:
        """Prediction accuracy measured at one distance."""
        return self.scores[distance].accuracy

    def summary(self) -> dict[int, PredictionScore]:
        """All per-distance scores."""
        return dict(self.scores)
