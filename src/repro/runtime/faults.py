"""Fault injection: unexpected events (§III-E) and transport chaos.

The paper evaluates PYTHIA's resilience by modifying the runtime to
"randomly submit unexpected events with a given error rate".  The
injected events never occurred in the reference execution, so the
tracker loses its position and must re-synchronise on the next genuine
event — exactly the §II-B2 tolerance path.
:class:`ErrorInjector` reproduces that.

:class:`FaultyTransport` extends the idea to the oracle *service*: it
is a frame-aware proxy wedged between a
:class:`~repro.server.client.PythiaClient` and an
:class:`~repro.server.daemon.OracleServer` that injects the transport
faults production trace infrastructure treats as routine — dropped
connections, delayed replies, mid-frame cuts.  Every fault is scripted
by frame count, not by time or randomness, so the chaos test suite it
drives is deterministic.
"""

from __future__ import annotations

import os
import random
import socket
import struct
import threading
import time

__all__ = ["ErrorInjector", "FaultyTransport"]


class ErrorInjector:
    """Bernoulli injector of never-before-seen events."""

    __slots__ = ("rate", "rng", "injected", "_counter")

    def __init__(self, rate: float, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"error rate must be within [0, 1], got {rate}")
        self.rate = rate
        self.rng = random.Random(f"{seed}:error-injector")
        self.injected = 0
        self._counter = 0

    def maybe_inject(self, submit) -> bool:
        """With probability ``rate``, call ``submit(name, payload)`` with a
        fresh bogus event.  Returns True if an event was injected."""
        if self.rate <= 0.0 or self.rng.random() >= self.rate:
            return False
        self._counter += 1
        self.injected += 1
        submit("pythia_unexpected_event", self._counter)
        return True


_HEADER = struct.Struct(">I")
_BIN_HEADER = struct.Struct(">BBHI")  # v2 framing: magic 0xA7, op, flags, len
_BIN_MAGIC = 0xA7


def _read_raw_frame(sock: socket.socket) -> bytes | None:
    """One frame as raw bytes (header included), either framing.

    A first byte of ``0xA7`` is a v2 binary frame (8-byte header, u32
    body length at offset 4); anything else is a length-prefixed JSON
    frame.  ``None`` on EOF at a frame boundary; raises
    :class:`OSError` (via ``ConnectionResetError``) on EOF mid-frame —
    either way the bridge is over.
    """
    chunks: list[bytes] = []
    header_size = _HEADER.size
    need = 1
    got = 0
    while got < need:
        chunk = sock.recv(need - got)
        if not chunk:
            if got == 0:
                return None
            raise ConnectionResetError("peer closed mid-frame")
        chunks.append(chunk)
        got += len(chunk)
        if need == 1 and got >= 1:
            head = b"".join(chunks)
            chunks = [head]
            if head[0] == _BIN_MAGIC:
                header_size = _BIN_HEADER.size
            need = header_size
        if got == need == header_size:
            head = b"".join(chunks)
            chunks = [head]
            if header_size == _BIN_HEADER.size:
                length = struct.unpack_from(">I", head, 4)[0]
            else:
                (length,) = _HEADER.unpack(head)
            need += length
    return b"".join(chunks)


class _Bridge:
    """One proxied client connection: a pair of pump threads."""

    def __init__(self, proxy: "FaultyTransport", client: socket.socket) -> None:
        self.proxy = proxy
        self.client = client
        self.upstream = proxy._connect_upstream()
        self.alive = True
        self._threads = [
            threading.Thread(target=self._pump_requests, daemon=True),
            threading.Thread(target=self._pump_replies, daemon=True),
        ]

    def start(self) -> None:
        for t in self._threads:
            t.start()

    def kill(self) -> None:
        """Abruptly drop both sides (what a crashed proxy looks like)."""
        self.alive = False
        for sock in (self.client, self.upstream):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        self.proxy._bridges.discard(self)

    def _pump_requests(self) -> None:
        try:
            while self.alive:
                frame = _read_raw_frame(self.client)
                if frame is None:
                    break
                if not self.proxy._on_request(self, frame):
                    return
        except OSError:
            pass
        finally:
            self.kill()

    def _pump_replies(self) -> None:
        try:
            while self.alive:
                frame = _read_raw_frame(self.upstream)
                if frame is None:
                    break
                if not self.proxy._on_reply(self, frame):
                    return
        except OSError:
            pass
        finally:
            self.kill()


class FaultyTransport:
    """Deterministic fault-injection proxy for the oracle service.

    Listens on its own Unix socket and bridges every accepted client
    connection to ``upstream`` (a daemon's Unix socket path or
    ``(host, port)``).  Frames are forwarded intact until a scripted
    fault fires; all scripts count frames across the proxy's lifetime
    (1-based), so a test's fault schedule is reproducible run to run.

    Scripted faults
    ---------------
    - :meth:`cut_after_requests` — drop the connection (both sides,
      abruptly) right after forwarding the Nth request frame: the
      client's reply never comes;
    - :meth:`cut_mid_reply` — forward only the first half of the Nth
      reply frame, then drop the connection: the client is left with a
      half-read frame (the desync the reconnect layer must survive);
    - :meth:`delay_reply` — hold the Nth reply for a given time before
      delivering it (an overloaded daemon; with a delay beyond the
      client timeout, the stale-frame trap);
    - :attr:`reply_delay` — constant latency added to every reply;
    - :meth:`kill_all` — drop every live bridge now (daemon kill from
      the client's point of view; new connections still bridge, so a
      "restart" needs no proxy restart).
    """

    def __init__(
        self,
        upstream: str | os.PathLike | tuple[str, int],
        listen_path: str | os.PathLike,
    ) -> None:
        self.upstream = upstream
        self.listen_path = os.fspath(listen_path)
        self.reply_delay = 0.0
        self.requests_forwarded = 0
        self.replies_forwarded = 0
        self.cuts = 0
        self._cut_after_requests: set[int] = set()
        self._cut_mid_reply: set[int] = set()
        self._delay_reply: dict[int, float] = {}
        self._lock = threading.Lock()
        self._bridges: set[_Bridge] = set()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._running = threading.Event()

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "FaultyTransport":
        try:
            os.unlink(self.listen_path)
        except FileNotFoundError:
            pass
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(self.listen_path)
        listener.listen(16)
        self._listener = listener
        self._running.set()
        self._accept_thread = threading.Thread(target=self._accept, daemon=True)
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._running.clear()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        self.kill_all()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None
        try:
            os.unlink(self.listen_path)
        except FileNotFoundError:
            pass

    def __enter__(self) -> "FaultyTransport":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _connect_upstream(self) -> socket.socket:
        if isinstance(self.upstream, tuple):
            return socket.create_connection(self.upstream, timeout=30)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(30)
        sock.connect(os.fspath(self.upstream))
        return sock

    def _accept(self) -> None:
        assert self._listener is not None
        while self._running.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break
            try:
                bridge = _Bridge(self, conn)
            except OSError:
                conn.close()  # upstream down: refuse by hanging up
                continue
            self._bridges.add(bridge)
            bridge.start()

    # -- fault scripting -------------------------------------------------

    def cut_after_requests(self, n: int) -> None:
        """Drop the connection right after forwarding request #``n``."""
        with self._lock:
            self._cut_after_requests.add(n)

    def cut_mid_reply(self, n: int) -> None:
        """Forward half of reply #``n``'s bytes, then drop the connection."""
        with self._lock:
            self._cut_mid_reply.add(n)

    def delay_reply(self, n: int, seconds: float) -> None:
        """Deliver reply #``n`` only after ``seconds`` have passed."""
        with self._lock:
            self._delay_reply[n] = seconds

    def kill_all(self) -> None:
        """Abruptly drop every live bridge (a daemon crash, seen from
        the client); later connections bridge normally again."""
        for bridge in list(self._bridges):
            bridge.kill()

    # -- pump callbacks --------------------------------------------------

    def _on_request(self, bridge: _Bridge, frame: bytes) -> bool:
        with self._lock:
            self.requests_forwarded += 1
            seq = self.requests_forwarded
            cut = seq in self._cut_after_requests
        bridge.upstream.sendall(frame)
        if cut:
            with self._lock:
                self.cuts += 1
            # give the daemon a moment to process the request (the
            # fault models "applied but unacknowledged")
            time.sleep(0.01)
            bridge.kill()
            return False
        return True

    def _on_reply(self, bridge: _Bridge, frame: bytes) -> bool:
        with self._lock:
            self.replies_forwarded += 1
            seq = self.replies_forwarded
            cut = seq in self._cut_mid_reply
            hold = self._delay_reply.pop(seq, 0.0)
        if self.reply_delay:
            time.sleep(self.reply_delay)
        if hold:
            time.sleep(hold)
        if cut:
            with self._lock:
                self.cuts += 1
            bridge.client.sendall(frame[: max(5, len(frame) // 2)])
            bridge.kill()
            return False
        bridge.client.sendall(frame)
        return True
