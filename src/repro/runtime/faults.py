"""Random unexpected-event injection (§III-E).

The paper evaluates PYTHIA's resilience by modifying the runtime to
"randomly submit unexpected events with a given error rate".  The
injected events never occurred in the reference execution, so the
tracker loses its position and must re-synchronise on the next genuine
event — exactly the §II-B2 tolerance path.
"""

from __future__ import annotations

import random

__all__ = ["ErrorInjector"]


class ErrorInjector:
    """Bernoulli injector of never-before-seen events."""

    __slots__ = ("rate", "rng", "injected", "_counter")

    def __init__(self, rate: float, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"error rate must be within [0, 1], got {rate}")
        self.rate = rate
        self.rng = random.Random(f"{seed}:error-injector")
        self.injected = 0
        self._counter = 0

    def maybe_inject(self, submit) -> bool:
        """With probability ``rate``, call ``submit(name, payload)`` with a
        fresh bogus event.  Returns True if an event was injected."""
        if self.rate <= 0.0 or self.rng.random() >= self.rate:
            return False
        self._counter += 1
        self.injected += 1
        submit("pythia_unexpected_event", self._counter)
        return True
