"""The PYTHIA-enabled OpenMP runtime system (§III-B, §III-D).

Intercepts parallel-region begin/end in the simulated GOMP:

- **record mode** — submits ``GOMP_parallel_begin(region)`` /
  ``GOMP_parallel_end(region)`` events with the runtime clock as
  timestamp, so the saved trace carries every region's duration (the
  paper uses "the function pointer that contains the code of the
  parallel region as an event identifier");
- **predict mode** — at region begin, follows the event stream and asks
  the oracle for the estimated delay until the matching region-end
  event.  That estimate (the paper's ``D_est``) is handed to the
  adaptive thread policy.
"""

from __future__ import annotations

from typing import Any

from repro.core.events import Event
from repro.core.oracle import Pythia
from repro.runtime.faults import ErrorInjector

__all__ = ["OMPRuntimeSystem"]

#: simulated cost per recorded event (s)
RECORD_EVENT_COST = 0.25e-6

#: simulated cost of a distance-1 duration prediction (s)
PREDICT_COST = 2.0e-6

BEGIN = "GOMP_parallel_begin"
END = "GOMP_parallel_end"


class OMPRuntimeSystem:
    """GOMP interceptor bound to a Pythia oracle (one thread: the master)."""

    def __init__(
        self,
        oracle: Pythia,
        *,
        error_injector: ErrorInjector | None = None,
        thread: int = 0,
    ) -> None:
        self.oracle = oracle
        self.error_injector = error_injector
        self.thread = thread
        self._debt = 0.0
        self.stats = {"regions": 0, "predictions": 0, "no_prediction": 0}

    # -- GompRuntime interceptor protocol ----------------------------------

    def region_begin(self, region_id: Any, clock: float) -> float | None:
        """Submit the begin event; in predict mode return D_est (or None)."""
        if self.error_injector is not None:
            self.error_injector.maybe_inject(
                lambda name, payload: self._submit(name, payload, clock)
            )
        self.stats["regions"] += 1
        if not self.oracle.predicting:
            self._submit(BEGIN, region_id, clock)
            return None
        # fused submit + distance-1 duration query: one oracle call (and,
        # against a daemon, one round trip) instead of two.  require_match
        # keeps the §III-E rule: the tracker just lost or re-acquired its
        # position after an unexpected event -> do not trust a prediction
        # made right now, use the vanilla heuristic this region.
        expected, pred = self.oracle.event_and_predict(
            BEGIN,
            region_id,
            distance=1,
            thread=self.thread,
            with_time=True,
            timestamp=clock,
            require_match=True,
        )
        self._debt += RECORD_EVENT_COST + PREDICT_COST
        if not expected:
            self.stats["no_prediction"] += 1
            return None
        expected_end = self.oracle.registry.lookup(Event(END, region_id))
        if pred is None or pred.eta is None or pred.terminal != expected_end:
            # lost, no timing data, or the next event is not this region's
            # end: no usable duration estimate -> fall back to heuristics
            self.stats["no_prediction"] += 1
            return None
        self.stats["predictions"] += 1
        return pred.eta

    def region_end(self, region_id: Any, clock: float) -> None:
        """Submit the end event."""
        self._submit(END, region_id, clock)

    def overhead(self) -> float:
        """Oracle time to charge to the application clock."""
        debt, self._debt = self._debt, 0.0
        return debt

    # ------------------------------------------------------------------

    def _submit(self, name: str, payload: Any, clock: float) -> bool:
        expected = self.oracle.event(name, payload, timestamp=clock, thread=self.thread)
        self._debt += RECORD_EVENT_COST
        return expected
