"""Runtime systems that consult PYTHIA.

Two runtime-system shims mirror §III-B of the paper:

- :class:`repro.runtime.mpi_interpose.MPIRuntimeSystem` — intercepts
  every simulated MPI call, records one event per call (with the
  distinguishing payload), and requests predictions when entering
  ``MPI_Wait*`` or blocking collectives;
- :class:`repro.runtime.omp_interpose.OMPRuntimeSystem` — intercepts
  parallel-region begin/end in the simulated GOMP, and at region entry
  asks PYTHIA for the probable region duration (feeding the adaptive
  thread policy of §III-D).

:mod:`repro.runtime.faults` injects random unexpected events (§III-E)
and, via :class:`~repro.runtime.faults.FaultyTransport`, deterministic
transport faults between a client and the oracle daemon.
"""

from repro.runtime.faults import ErrorInjector, FaultyTransport
from repro.runtime.mpi_interpose import MPIRuntimeSystem, PredictionScore
from repro.runtime.omp_interpose import OMPRuntimeSystem

__all__ = [
    "ErrorInjector",
    "FaultyTransport",
    "MPIRuntimeSystem",
    "OMPRuntimeSystem",
    "PredictionScore",
]
