"""Fig 8 — accuracy of PYTHIA-PREDICT predictions.

Protocol (§III-C2): record a reference trace with the **small** working
set; then run each working set (small / medium / large) against that
trace.  When entering a blocking MPI function, predict the event that
will occur ``x`` events ahead, for ``x`` in 1..128; count correct vs
incorrect predictions.

The paper's headline: 8 of 13 applications stay above 90 % accuracy at
distance 128; AMG and Quicksilver sit around 70 % for short distances
(irregular grammars); LU/MG degrade across working sets because their
loop lengths depend on the problem size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.base import APPS, get_app
from repro.experiments.harness import (
    mpi_predict_run,
    mpi_record_run,
    temp_trace_path,
)
from repro.experiments.report import render_series

__all__ = ["AccuracyResult", "DISTANCES", "fig8_accuracy", "render_fig8"]

DISTANCES = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass(slots=True)
class AccuracyResult:
    """Accuracy curves of one application (one per working set)."""

    app: str
    distances: tuple[int, ...]
    #: working set -> [accuracy per distance]
    curves: dict[str, list[float]] = field(default_factory=dict)


def fig8_accuracy(
    apps: list[str] | None = None,
    *,
    working_sets: tuple[str, ...] = ("small", "medium", "large"),
    distances: tuple[int, ...] = DISTANCES,
    ranks: int | None = None,
    record_seed: int = 0,
    replay_seed: int = 1,
    target_samples: int = 120,
) -> list[AccuracyResult]:
    """Measure prediction accuracy vs distance for the selected apps.

    ``target_samples`` bounds the number of scored synchronisation
    points per rank (the shim's sampling stride is derived from the
    recorded event count), keeping Python-side wall time reasonable.
    """
    import os

    results: list[AccuracyResult] = []
    for name in apps or sorted(APPS):
        spec = get_app(name)
        nr = ranks or spec.default_ranks
        path = temp_trace_path(f"fig8-{name}")
        try:
            record = mpi_record_run(name, "small", path, ranks=nr, seed=record_seed)
            events_per_rank = max(1, record.events // nr)
            # roughly one sync point per 4 events in these skeletons
            stride = max(1, events_per_rank // (4 * target_samples))
            result = AccuracyResult(app=name, distances=distances)
            for ws in working_sets:
                predict = mpi_predict_run(
                    name,
                    ws,
                    path,
                    ranks=nr,
                    seed=replay_seed,
                    distances=distances,
                    sample_stride=stride,
                )
                result.curves[ws] = [predict.accuracy(d) for d in distances]
            results.append(result)
        finally:
            if os.path.exists(path):
                os.unlink(path)
    return results


def render_fig8(results: list[AccuracyResult]) -> str:
    """One accuracy table per application."""
    blocks = []
    for res in results:
        blocks.append(
            render_series(
                "distance",
                list(res.distances),
                {ws: [100.0 * a for a in curve] for ws, curve in res.curves.items()},
                title=f"Fig 8 - {res.app}: prediction accuracy (%)",
                fmt=lambda v: f"{v:.1f}",
            )
        )
    return "\n\n".join(blocks)
