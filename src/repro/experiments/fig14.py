"""Fig 14 — resilience to unexpected events (§III-E).

The OpenMP runtime randomly submits events that never occurred in the
reference execution.  Each injected event knocks the tracker off its
position; the following genuine event re-synchronises it, but the
prediction made in between is not trusted, so the affected regions run
with the vanilla heuristic (maximum threads).  As the error rate grows,
PYTHIA-PREDICT's advantage decays toward VANILLA — the paper's curve.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.experiments.harness import (
    omp_predict_run,
    omp_record_run,
    omp_vanilla_run,
    temp_trace_path,
)
from repro.experiments.report import render_series
from repro.machines import MachineSpec, PUDDING

__all__ = ["ERROR_RATES", "ErrorRateResult", "fig14_error_rate", "render_fig14"]

ERROR_RATES = (0.0, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5)


@dataclass(slots=True)
class ErrorRateResult:
    """Execution times vs injected error rate."""

    machine: str
    size: int
    rates: list[float]
    vanilla: float = 0.0
    record: float = 0.0
    predict: list[float] = field(default_factory=list)


def fig14_error_rate(
    machine: MachineSpec = PUDDING,
    *,
    size: int = 30,
    rates: tuple[float, ...] = ERROR_RATES,
    seed: int = 0,
) -> ErrorRateResult:
    """Measure Lulesh (size 30) while injecting unexpected events."""
    path = temp_trace_path(f"fig14-{machine.name}-{size}")
    result = ErrorRateResult(machine.name, size, list(rates))
    try:
        result.vanilla = omp_vanilla_run(machine, size).time
        result.record = omp_record_run(machine, size, path).time
        for rate in rates:
            run = omp_predict_run(machine, size, path, error_rate=rate, seed=seed)
            result.predict.append(run.time)
    finally:
        if os.path.exists(path):
            os.unlink(path)
    return result


def render_fig14(result: ErrorRateResult) -> str:
    """Fig 14-style table."""
    series = {
        "Vanilla (s)": [result.vanilla] * len(result.rates),
        "Record (s)": [result.record] * len(result.rates),
        "Predict (s)": result.predict,
    }
    return render_series(
        "error rate", [f"{r:.2f}" for r in result.rates], series,
        title=f"Fig 14 - Lulesh size {result.size} on {result.machine} vs error rate",
        fmt=lambda v: f"{v:.2f}",
    )
