"""Figs 10-13 — the adaptive OpenMP thread-count optimisation (§III-D).

- Figs 10/11: Lulesh execution time vs problem size (10..50) with all
  three configurations (Vanilla / PYTHIA-RECORD / PYTHIA-PREDICT) on
  Pudding (24 threads) and Pixel (16 threads).  Expected shape: PREDICT
  wins big at small sizes (~38 % at s=30 on Pudding), the gap closes as
  volume regions dominate.
- Figs 12/13: Lulesh (size 30) vs the maximum thread count.  All three
  configurations coincide up to ~8 threads; beyond that VANILLA and
  RECORD pay fork/barrier overhead on tiny regions while PREDICT keeps
  them nearly serial.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.experiments.harness import (
    omp_predict_run,
    omp_record_run,
    omp_vanilla_run,
    temp_trace_path,
)
from repro.experiments.report import render_series
from repro.machines import MachineSpec, PIXEL, PUDDING

__all__ = [
    "LULESH_SIZES",
    "OmpSweepResult",
    "fig10_11_problem_size_sweep",
    "fig12_13_thread_sweep",
    "render_omp_sweep",
]

LULESH_SIZES = (10, 20, 30, 40, 50)


@dataclass(slots=True)
class OmpSweepResult:
    """One machine's sweep: x values and per-configuration times."""

    machine: str
    x_label: str
    xs: list[int]
    vanilla: list[float] = field(default_factory=list)
    record: list[float] = field(default_factory=list)
    predict: list[float] = field(default_factory=list)

    def improvement_pct(self, i: int) -> float:
        """PREDICT's improvement over VANILLA at x index ``i``."""
        if self.vanilla[i] == 0:
            return 0.0
        return 100.0 * (self.vanilla[i] - self.predict[i]) / self.vanilla[i]


def _three_way(machine: MachineSpec, size: int, max_threads: int) -> tuple[float, float, float]:
    """Vanilla / record / predict times for one configuration."""
    path = temp_trace_path(f"omp-{machine.name}-{size}-{max_threads}")
    try:
        vanilla = omp_vanilla_run(machine, size, max_threads=max_threads)
        record = omp_record_run(machine, size, path, max_threads=max_threads)
        predict = omp_predict_run(machine, size, path, max_threads=max_threads)
    finally:
        if os.path.exists(path):
            os.unlink(path)
    return vanilla.time, record.time, predict.time


def fig10_11_problem_size_sweep(
    machines: tuple[MachineSpec, ...] = (PUDDING, PIXEL),
    *,
    sizes: tuple[int, ...] = LULESH_SIZES,
) -> list[OmpSweepResult]:
    """Figs 10 (Pudding) and 11 (Pixel): time vs problem size."""
    results = []
    for machine in machines:
        res = OmpSweepResult(machine.name, "size", list(sizes))
        for size in sizes:
            v, r, p = _three_way(machine, size, machine.cores)
            res.vanilla.append(v)
            res.record.append(r)
            res.predict.append(p)
        results.append(res)
    return results


def fig12_13_thread_sweep(
    machines: tuple[MachineSpec, ...] = (PUDDING, PIXEL),
    *,
    size: int = 30,
    thread_counts: dict[str, tuple[int, ...]] | None = None,
) -> list[OmpSweepResult]:
    """Figs 12 (Pudding) and 13 (Pixel): time vs maximum thread count."""
    results = []
    for machine in machines:
        if thread_counts and machine.name in thread_counts:
            counts = thread_counts[machine.name]
        else:
            counts = tuple(
                n for n in (1, 2, 4, 8, 12, 16, 20, 24) if n <= machine.cores
            )
        res = OmpSweepResult(machine.name, "max threads", list(counts))
        for n in counts:
            v, r, p = _three_way(machine, size, n)
            res.vanilla.append(v)
            res.record.append(r)
            res.predict.append(p)
        results.append(res)
    return results


def render_omp_sweep(results: list[OmpSweepResult], title: str) -> str:
    """Figure-style table per machine, with the improvement column."""
    blocks = []
    for res in results:
        series = {
            "Vanilla (s)": res.vanilla,
            "Record (s)": res.record,
            "Predict (s)": res.predict,
            "gain (%)": [res.improvement_pct(i) for i in range(len(res.xs))],
        }
        blocks.append(
            render_series(
                res.x_label, res.xs, series,
                title=f"{title} - {res.machine}",
                fmt=lambda v: f"{v:.2f}",
            )
        )
    return "\n\n".join(blocks)
