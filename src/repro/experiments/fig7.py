"""Fig 7 — the grammar PYTHIA extracts from BT.

The paper prints one MPI rank's grammar for BT.large:

    R -> Bcast^6 B Barrier A^200 Allreduce Allreduce B Reduce Barrier
    A -> B Isend Irecv [...] Wait^2
    B -> Irecv Irecv [...] WaitAll

This module records the BT skeleton and renders the resulting grammar
with event names, so the structural match can be inspected (and is
asserted in the test suite).
"""

from __future__ import annotations

from repro.core.oracle import Pythia
from repro.experiments.harness import default_network
from repro.apps.base import get_app
from repro.mpi.launcher import mpirun
from repro.runtime.mpi_interpose import MPIRuntimeSystem

__all__ = ["fig7_bt_grammar"]


def fig7_bt_grammar(*, ws: str = "large", ranks: int = 16, rank: int = 1, path: str | None = None) -> str:
    """Record BT and return rank ``rank``'s grammar in paper notation."""
    import tempfile, os

    app = get_app("bt")
    tmp = path or os.path.join(tempfile.gettempdir(), "pythia-fig7-bt.pythia")
    oracle = Pythia(tmp, mode="record", record_timestamps=False)
    mpirun(
        ranks,
        app.main,
        ws,
        0,
        network=default_network(app, ranks),
        interceptor_factory=lambda r, comm: MPIRuntimeSystem(oracle, r, comm),
        name="bt",
    )
    trace = oracle.finish()
    if path is None:
        os.unlink(tmp)
    grammar = trace.thread(rank).grammar
    names = {i: str(ev).replace("MPI_", "").replace("GOMP_", "")
             for i, ev in enumerate(oracle.registry)}
    return grammar.dump(lambda t: names.get(t, f"?{t}"))
