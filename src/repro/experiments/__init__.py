"""Regeneration of every table and figure of the paper's evaluation (§III).

Each module regenerates one artifact:

========  ====================================================  =============
artifact  content                                               module
========  ====================================================  =============
Table I   PYTHIA-RECORD overhead / #events / #rules, 13 apps    ``table1``
Fig 7     example grammar extracted from BT                     ``fig7``
Fig 8     prediction accuracy vs distance (3 working sets)      ``fig8``
Fig 9     cost of one prediction vs distance                    ``fig9``
Fig 10    Lulesh time vs problem size (Pudding, 24 threads)     ``fig10_13``
Fig 11    Lulesh time vs problem size (Pixel, 16 threads)       ``fig10_13``
Fig 12    Lulesh time vs max threads (Pudding, size 30)         ``fig10_13``
Fig 13    Lulesh time vs max threads (Pixel, size 30)           ``fig10_13``
Fig 14    Lulesh time vs injected error rate (Pudding)          ``fig14``
========  ====================================================  =============

``python -m repro.experiments`` runs everything at a reduced but
shape-preserving scale and prints the paper-style tables.
"""

from repro.experiments.fig7 import fig7_bt_grammar
from repro.experiments.fig8 import fig8_accuracy
from repro.experiments.fig9 import fig9_prediction_cost
from repro.experiments.fig10_13 import (
    fig10_11_problem_size_sweep,
    fig12_13_thread_sweep,
)
from repro.experiments.fig14 import fig14_error_rate
from repro.experiments.harness import (
    mpi_predict_run,
    mpi_record_run,
    mpi_vanilla_run,
    omp_predict_run,
    omp_record_run,
    omp_vanilla_run,
)
from repro.experiments.table1 import table1_record_overhead

__all__ = [
    "fig7_bt_grammar",
    "fig8_accuracy",
    "fig9_prediction_cost",
    "fig10_11_problem_size_sweep",
    "fig12_13_thread_sweep",
    "fig14_error_rate",
    "mpi_predict_run",
    "mpi_record_run",
    "mpi_vanilla_run",
    "omp_predict_run",
    "omp_record_run",
    "omp_vanilla_run",
    "table1_record_overhead",
]
