"""Plain-text rendering of experiment results (paper-style tables)."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "render_series", "format_time", "format_pct"]


def format_time(seconds: float) -> str:
    """Human-scaled time formatting."""
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.2f} us"
    return f"{seconds * 1e9:.0f} ns"


def format_pct(fraction: float) -> str:
    """Percentage with one decimal."""
    return f"{100.0 * fraction:.1f} %"


def render_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_series(
    x_label: str,
    xs: Sequence,
    series: dict[str, Sequence[float]],
    *,
    title: str = "",
    fmt=lambda v: f"{v:.4g}",
) -> str:
    """Render figure-style data: one row per x, one column per series."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [fmt(series[name][i]) for name in series])
    return render_table(headers, rows, title=title)
