"""Shared runners for the evaluation experiments.

Three execution modes per substrate, mirroring §III:

- **vanilla** — the application alone;
- **record** — with the PYTHIA-RECORD interposer (events + overhead);
- **predict** — with a previously recorded trace loaded, the oracle
  following the run and predictions requested at the paper's points.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Sequence

from repro.apps.base import AppSpec, get_app
from repro.apps.lulesh_omp import lulesh_omp_run
from repro.core.oracle import Pythia
from repro.core.trace_file import Trace
from repro.obs import span
from repro.obs.log import get_logger
from repro.machines import MachineSpec, PARAVANCE
from repro.mpi.launcher import MPIRun, mpirun
from repro.mpi.network import NetworkModel
from repro.openmp.costmodel import RegionCostModel
from repro.openmp.policies import AdaptivePythiaPolicy, MaxThreadsPolicy
from repro.openmp.runtime import GompRuntime
from repro.runtime.faults import ErrorInjector
from repro.runtime.mpi_interpose import MPIRuntimeSystem, PredictionScore
from repro.runtime.omp_interpose import OMPRuntimeSystem

__all__ = [
    "MPIExperimentResult",
    "OMPExperimentResult",
    "default_network",
    "mpi_predict_run",
    "mpi_record_run",
    "mpi_vanilla_run",
    "omp_predict_run",
    "omp_record_run",
    "omp_vanilla_run",
    "predict_oracle",
]

_log = get_logger("experiments")


def predict_oracle(trace_path: str, oracle_socket=None):
    """A predict-mode oracle: in-process, or remote via the daemon.

    With ``oracle_socket`` (a Unix socket path or ``(host, port)``
    tuple) the returned oracle is a
    :class:`~repro.server.client.PythiaClient` talking to a running
    ``pythia-trace serve`` daemon; otherwise the ordinary in-process
    :class:`Pythia`.  Both expose the same facade, so every predict
    runner below accepts the same one argument.
    """
    if oracle_socket is None:
        return Pythia(trace_path, mode="predict")
    from repro.server.client import PythiaClient

    return PythiaClient(trace_path, socket=oracle_socket)


def default_network(app: AppSpec, ranks: int) -> NetworkModel:
    """Paravance-like network with the paper's rank placement.

    NPB apps ran 16 ranks/node, hybrid apps 2 ranks/node (§III-C1);
    scaled proportionally for smaller worlds.
    """
    per_node = max(1, ranks // 4) if app.hybrid else max(1, ranks // 4 * 4)
    return NetworkModel.from_cluster(PARAVANCE, ranks_per_node=min(per_node, ranks))


@dataclass(slots=True)
class MPIExperimentResult:
    """Outcome of one simulated MPI execution."""

    app: str
    ws: str
    mode: str
    time: float
    events: int = 0
    rules_per_rank: float = 0.0
    scores: dict[int, PredictionScore] = field(default_factory=dict)
    run: MPIRun | None = None
    trace: Trace | None = None
    accuracy_report: dict = field(default_factory=dict)
    drift_report: dict = field(default_factory=dict)

    def accuracy(self, distance: int) -> float:
        """Aggregate prediction accuracy at one distance."""
        score = self.scores.get(distance)
        return score.accuracy if score else 0.0


def _run(app: AppSpec, ws: str, ranks: int, seed: int, factory) -> MPIRun:
    return mpirun(
        ranks,
        app.main,
        ws,
        seed,
        network=default_network(app, ranks),
        interceptor_factory=factory,
        name=app.name,
    )


def mpi_vanilla_run(
    app_name: str, ws: str, *, ranks: int | None = None, seed: int = 0
) -> MPIExperimentResult:
    """Run an application without any interposition."""
    app = get_app(app_name)
    ranks = ranks or app.default_ranks
    run = _run(app, ws, ranks, seed, None)
    return MPIExperimentResult(app.name, ws, "vanilla", run.time, run=run)


def mpi_record_run(
    app_name: str,
    ws: str,
    trace_path: str,
    *,
    ranks: int | None = None,
    seed: int = 0,
    timestamps: bool = False,
) -> MPIExperimentResult:
    """Run with PYTHIA-RECORD; writes the trace file."""
    app = get_app(app_name)
    ranks = ranks or app.default_ranks
    oracle = Pythia(
        trace_path,
        mode="record",
        record_timestamps=timestamps,
        meta={"app": app.name, "ws": ws, "ranks": ranks},
    )
    with span("experiment.mpi_record", app=app.name, ws=ws, ranks=ranks):
        run = _run(
            app, ws, ranks, seed,
            lambda rank, comm: MPIRuntimeSystem(oracle, rank, comm),
        )
        trace = oracle.finish()
    rules = sum(t.grammar.rule_count for t in trace.threads.values()) / len(trace.threads)
    _log.info(
        "mpi_record_done", app=app.name, ws=ws, ranks=ranks,
        events=trace.event_count, simulated_s=run.time,
    )
    return MPIExperimentResult(
        app.name, ws, "record", run.time,
        events=trace.event_count, rules_per_rank=rules, run=run, trace=trace,
    )


def mpi_predict_run(
    app_name: str,
    ws: str,
    trace_path: str,
    *,
    ranks: int | None = None,
    seed: int = 1,
    distances: Sequence[int] = (1,),
    sample_stride: int = 1,
    error_rate: float = 0.0,
    oracle_socket=None,
) -> MPIExperimentResult:
    """Run against a reference trace with predictions at sync points.

    ``oracle_socket`` switches the whole run to a shared oracle daemon
    (see :func:`predict_oracle`).
    """
    app = get_app(app_name)
    ranks = ranks or app.default_ranks
    oracle = predict_oracle(trace_path, oracle_socket)
    # the client has daemon-side drift/flight; only the in-process
    # facade needs it enabled here
    if hasattr(oracle, "enable_drift"):
        oracle.enable_drift()
    with span("experiment.mpi_predict", app=app.name, ws=ws, ranks=ranks):
        run = _run(
            app, ws, ranks, seed,
            lambda rank, comm: MPIRuntimeSystem(
                oracle, rank, comm,
                distances=distances,
                sample_stride=sample_stride,
                error_injector=ErrorInjector(error_rate, seed=seed + rank) if error_rate else None,
            ),
        )
    scores: dict[int, PredictionScore] = {d: PredictionScore(d) for d in distances}
    for shim in run.interceptors:
        for d, s in shim.summary().items():
            scores[d].correct += s.correct
            scores[d].incorrect += s.incorrect
            scores[d].missing += s.missing
    report = oracle.stats()
    drift = oracle.drift_report() if hasattr(oracle, "drift_report") else {}
    _log.info(
        "mpi_predict_done", app=app.name, ws=ws, ranks=ranks,
        hit_rate=report.get("hit_rate"),
        drift_state=drift.get("state"),
        simulated_s=run.time,
    )
    return MPIExperimentResult(
        app.name, ws, "predict", run.time,
        scores=scores, run=run, accuracy_report=report, drift_report=drift,
    )


# ----------------------------------------------------------------------
# OpenMP (single node, §III-D)
# ----------------------------------------------------------------------


@dataclass(slots=True)
class OMPExperimentResult:
    """Outcome of one OpenMP Lulesh execution."""

    machine: str
    size: int
    mode: str
    max_threads: int
    time: float
    average_team: float = 0.0
    stats: dict = field(default_factory=dict)
    accuracy_report: dict = field(default_factory=dict)
    drift_report: dict = field(default_factory=dict)


def _gomp(machine: MachineSpec, max_threads: int, policy, interceptor) -> GompRuntime:
    return GompRuntime(
        machine,
        max_threads=max_threads,
        policy=policy,
        pool_mode="park",
        cost_model=RegionCostModel(machine),
        interceptor=interceptor,
    )


def omp_vanilla_run(
    machine: MachineSpec, size: int, *, max_threads: int | None = None
) -> OMPExperimentResult:
    """Vanilla GNU OpenMP: maximum threads for every region."""
    max_threads = max_threads or machine.cores
    rt = _gomp(machine, max_threads, MaxThreadsPolicy(), None)
    time = lulesh_omp_run(rt, size)
    return OMPExperimentResult(machine.name, size, "vanilla", max_threads, time,
                               average_team=rt.average_team)


def omp_record_run(
    machine: MachineSpec,
    size: int,
    trace_path: str,
    *,
    max_threads: int | None = None,
) -> OMPExperimentResult:
    """Max threads + PYTHIA-RECORD (the reference execution)."""
    max_threads = max_threads or machine.cores
    oracle = Pythia(
        trace_path, mode="record", record_timestamps=True,
        meta={"app": "lulesh-omp", "size": size, "machine": machine.name},
    )
    shim = OMPRuntimeSystem(oracle)
    rt = _gomp(machine, max_threads, MaxThreadsPolicy(), shim)
    time = lulesh_omp_run(rt, size)
    oracle.finish()
    return OMPExperimentResult(machine.name, size, "record", max_threads, time,
                               average_team=rt.average_team, stats=dict(shim.stats))


def omp_predict_run(
    machine: MachineSpec,
    size: int,
    trace_path: str,
    *,
    max_threads: int | None = None,
    error_rate: float = 0.0,
    seed: int = 0,
    oracle_socket=None,
) -> OMPExperimentResult:
    """PYTHIA-PREDICT driving the adaptive thread-count policy.

    ``oracle_socket`` switches the run to a shared oracle daemon (see
    :func:`predict_oracle`).
    """
    max_threads = max_threads or machine.cores
    oracle = predict_oracle(trace_path, oracle_socket)
    monitor = oracle.enable_drift() if hasattr(oracle, "enable_drift") else None
    injector = ErrorInjector(error_rate, seed=seed) if error_rate else None
    shim = OMPRuntimeSystem(oracle, error_injector=injector)
    policy = AdaptivePythiaPolicy(
        cost_model=RegionCostModel(machine), max_threads=max_threads,
        drift_monitor=monitor,
    )
    rt = _gomp(machine, max_threads, policy, shim)
    with span("experiment.omp_predict", machine=machine.name, size=size):
        time = lulesh_omp_run(rt, size)
    stats = dict(shim.stats)
    stats.update(policy.decisions)
    report = oracle.stats()
    drift = oracle.drift_report() if hasattr(oracle, "drift_report") else {}
    _log.info(
        "omp_predict_done", machine=machine.name, size=size,
        hit_rate=report.get("hit_rate"), drift_state=drift.get("state"),
        simulated_s=time,
    )
    return OMPExperimentResult(machine.name, size, "predict", max_threads, time,
                               average_team=rt.average_team, stats=stats,
                               accuracy_report=report, drift_report=drift)


def temp_trace_path(tag: str) -> str:
    """A unique trace-file path in the system temp directory."""
    fd, path = tempfile.mkstemp(prefix=f"pythia-{tag}-", suffix=".pythia")
    os.close(fd)
    os.unlink(path)
    return path
