"""Run the full evaluation: ``python -m repro.experiments [--quick] [-o DIR]``.

Regenerates Table I and Figs 7-14 and writes one text file per artifact
(plus everything to stdout).  ``--quick`` trims the sweeps for a fast
smoke pass; the default configuration reproduces every series the paper
reports at this repo's reduced scale.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments.fig7 import fig7_bt_grammar
from repro.experiments.fig8 import DISTANCES, fig8_accuracy, render_fig8
from repro.experiments.fig9 import fig9_prediction_cost, render_fig9
from repro.experiments.fig10_13 import (
    fig10_11_problem_size_sweep,
    fig12_13_thread_sweep,
    render_omp_sweep,
)
from repro.experiments.fig14 import fig14_error_rate, render_fig14
from repro.experiments.table1 import render_table1, table1_record_overhead
from repro.machines import PIXEL, PUDDING


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced sweeps")
    parser.add_argument("-o", "--out", default="results", help="output directory")
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="artifacts to run (table1 fig7 fig8 fig9 fig10 fig12 fig14)",
    )
    args = parser.parse_args(argv)
    os.makedirs(args.out, exist_ok=True)
    selected = set(args.only) if args.only else None

    def wanted(tag: str) -> bool:
        return selected is None or tag in selected

    def emit(tag: str, text: str) -> None:
        print(f"\n{'=' * 72}\n{text}\n")
        with open(os.path.join(args.out, f"{tag}.txt"), "w") as fh:
            fh.write(text + "\n")

    t0 = time.time()
    if wanted("table1"):
        ws = "small" if args.quick else "large"
        rows = table1_record_overhead(ws=ws, ranks=4 if args.quick else None)
        emit("table1", render_table1(rows))
    if wanted("fig7"):
        grammar = fig7_bt_grammar(ws="small" if args.quick else "large",
                                  ranks=4 if args.quick else 16)
        emit("fig7", "Fig 7: grammar extracted from BT\n" + grammar)
    if wanted("fig8"):
        apps = ["bt", "lu", "amg", "quicksilver"] if args.quick else None
        res = fig8_accuracy(apps,
                            distances=(1, 4, 16, 64) if args.quick else DISTANCES,
                            ranks=4 if args.quick else None)
        emit("fig8", render_fig8(res))
    if wanted("fig9"):
        apps = ["bt", "quicksilver"] if args.quick else None
        res = fig9_prediction_cost(apps, ws="small" if args.quick else "large",
                                   ranks=4 if args.quick else None,
                                   repeats=10 if args.quick else 30)
        emit("fig9", render_fig9(res))
    if wanted("fig10"):
        sizes = (10, 30) if args.quick else (10, 20, 30, 40, 50)
        res = fig10_11_problem_size_sweep((PUDDING, PIXEL), sizes=sizes)
        emit("fig10_11", render_omp_sweep(res, "Figs 10/11 - Lulesh vs problem size"))
    if wanted("fig12"):
        counts = {"Pudding": (1, 8, 24), "Pixel": (1, 8, 16)} if args.quick else None
        res = fig12_13_thread_sweep((PUDDING, PIXEL), thread_counts=counts)
        emit("fig12_13", render_omp_sweep(res, "Figs 12/13 - Lulesh size 30 vs max threads"))
    if wanted("fig14"):
        rates = (0.0, 0.1, 0.5) if args.quick else None
        res = fig14_error_rate(rates=rates) if rates else fig14_error_rate()
        emit("fig14", render_fig14(res))
    print(f"done in {time.time() - t0:.1f}s; results in {args.out}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
