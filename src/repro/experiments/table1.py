"""Table I — performance evaluation of PYTHIA-RECORD.

For every application (large working set): execution time without and
with event recording, the recording overhead, the number of collected
events, and the average grammar size.  The paper runs on 4 Paravance
nodes (64 NPB ranks / 8x8 hybrid); this reproduction uses the same
placement shape at a reduced rank count and event scale, and reports the
paper's values side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import APPS, get_app
from repro.experiments.harness import mpi_record_run, mpi_vanilla_run, temp_trace_path
from repro.experiments.report import render_table

__all__ = ["Table1Row", "table1_record_overhead", "render_table1"]


@dataclass(slots=True)
class Table1Row:
    """One application's Table I measurements."""

    app: str
    vanilla_s: float
    record_s: float
    events: int
    rules: float

    @property
    def overhead_pct(self) -> float:
        """Recording overhead relative to vanilla."""
        if self.vanilla_s == 0:
            return 0.0
        return 100.0 * (self.record_s - self.vanilla_s) / self.vanilla_s


def table1_record_overhead(
    apps: list[str] | None = None,
    *,
    ws: str = "large",
    ranks: int | None = None,
    seed: int = 0,
) -> list[Table1Row]:
    """Run the Table I measurement for the selected applications."""
    rows: list[Table1Row] = []
    for name in apps or sorted(APPS):
        spec = get_app(name)
        nr = ranks or spec.default_ranks
        vanilla = mpi_vanilla_run(name, ws, ranks=nr, seed=seed)
        path = temp_trace_path(f"table1-{name}")
        try:
            record = mpi_record_run(name, ws, path, ranks=nr, seed=seed)
        finally:
            import os

            if os.path.exists(path):
                os.unlink(path)
        rows.append(
            Table1Row(
                app=f"{spec.name.upper()}.{ws.capitalize()}",
                vanilla_s=vanilla.time,
                record_s=record.time,
                events=record.events,
                rules=record.rules_per_rank,
            )
        )
    return rows


def render_table1(rows: list[Table1Row]) -> str:
    """Paper-style rendering, with the paper's reference values."""
    headers = [
        "Application", "Vanilla (s)", "RECORD (s)", "overhead(%)",
        "# events", "# rules", "paper ovh(%)", "paper # rules",
    ]
    out_rows = []
    for row in rows:
        paper = get_app(row.app.split(".")[0].lower()).paper
        out_rows.append(
            [
                row.app,
                f"{row.vanilla_s:.2f}",
                f"{row.record_s:.2f}",
                f"{row.overhead_pct:+.1f}",
                f"{row.events:,}",
                f"{row.rules:.0f}",
                f"{paper.get('overhead_pct', 0):+.1f}",
                f"{paper.get('rules', 0)}",
            ]
        )
    return render_table(headers, out_rows, title="Table I: PYTHIA-RECORD evaluation")
