"""Fig 9 — cost of PYTHIA-PREDICT predictions.

The paper measures the oracle's real response time as a function of the
prediction distance: a few hundred ns to ~2 us for short distances,
growing linearly, with irregular applications (complex grammars) costing
more.  Here the measured implementation is this repository's Python
predictor, so absolute numbers are larger by the Python constant, but
the *shape* — linear growth with distance, irregular apps slower — is
the reproduced claim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.apps.base import APPS, get_app
from repro.core.predict import PythiaPredict
from repro.experiments.harness import mpi_record_run, temp_trace_path
from repro.experiments.report import render_series

__all__ = ["PredictionCostResult", "COST_DISTANCES", "fig9_prediction_cost", "render_fig9"]

COST_DISTANCES = (1, 2, 4, 8, 16, 32, 64)


@dataclass(slots=True)
class PredictionCostResult:
    """Mean seconds per prediction, per distance, for one application."""

    app: str
    distances: tuple[int, ...]
    cost_s: list[float] = field(default_factory=list)


def fig9_prediction_cost(
    apps: list[str] | None = None,
    *,
    ws: str = "large",
    distances: tuple[int, ...] = COST_DISTANCES,
    ranks: int | None = None,
    repeats: int = 30,
    warm_events: int = 64,
) -> list[PredictionCostResult]:
    """Measure the wall-clock cost of one prediction vs distance."""
    import os

    results: list[PredictionCostResult] = []
    for name in apps or sorted(APPS):
        spec = get_app(name)
        nr = ranks or spec.default_ranks
        path = temp_trace_path(f"fig9-{name}")
        try:
            record = mpi_record_run(name, ws, path, ranks=nr, seed=0)
            trace = record.trace
            tt = trace.thread(min(1, nr - 1))
            predictor = PythiaPredict(tt.grammar, tt.timing)
            # warm the tracker onto the trace (mid-stream, like a runtime)
            stream = tt.grammar.unfold()
            for ev in stream[: min(warm_events, len(stream))]:
                predictor.observe(ev)
            costs = []
            for d in distances:
                t0 = time.perf_counter()
                for _ in range(repeats):
                    predictor.predict(d)
                costs.append((time.perf_counter() - t0) / repeats)
            results.append(PredictionCostResult(name, distances, costs))
        finally:
            if os.path.exists(path):
                os.unlink(path)
    return results


def render_fig9(results: list[PredictionCostResult]) -> str:
    """Prediction cost table (microseconds)."""
    series = {res.app: [c * 1e6 for c in res.cost_s] for res in results}
    xs = list(results[0].distances) if results else []
    return render_series(
        "distance", xs, series,
        title="Fig 9 - cost of one prediction (us)",
        fmt=lambda v: f"{v:.1f}",
    )
