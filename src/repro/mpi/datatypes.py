"""MPI value types: wildcards, reduction operations, statuses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

ANY_SOURCE = -1
"""Wildcard source rank for receives."""

ANY_TAG = -1
"""Wildcard message tag for receives."""


@dataclass(frozen=True, slots=True)
class ReduceOp:
    """A named, associative reduction operation."""

    name: str
    fn: Callable[[Any, Any], Any]

    def reduce(self, values: Sequence[Any]) -> Any:
        """Fold ``values`` left to right."""
        if not values:
            raise ValueError("cannot reduce zero values")
        acc = values[0]
        for v in values[1:]:
            acc = self.fn(acc, v)
        return acc

    def __str__(self) -> str:
        return self.name


SUM = ReduceOp("SUM", lambda a, b: a + b)
PROD = ReduceOp("PROD", lambda a, b: a * b)
MIN = ReduceOp("MIN", min)
MAX = ReduceOp("MAX", max)


@dataclass(slots=True)
class Status:
    """Receive status (source, tag, size in bytes)."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    size: int = 0


@dataclass(frozen=True, slots=True)
class Envelope:
    """Message envelope used for matching."""

    source: int
    dest: int
    tag: int
    size: int

    def matches(self, source: int, tag: int) -> bool:
        """MPI matching semantics with wildcards."""
        return (source == ANY_SOURCE or source == self.source) and (
            tag == ANY_TAG or tag == self.tag
        )
