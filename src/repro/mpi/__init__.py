"""Simulated MPI.

A faithful-enough MPI for PYTHIA's purposes: ranks run as simulator
processes, point-to-point messages go through matching queues with a
latency/bandwidth network model, nonblocking operations return requests,
and collectives synchronise the whole communicator with tree-shaped cost
models.  The :mod:`repro.runtime.mpi_interpose` layer hooks every call —
playing the role of the paper's ``LD_PRELOAD`` interception.
"""

from repro.mpi.comm import Request, SimComm
from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG, MAX, MIN, PROD, SUM, Status
from repro.mpi.launcher import MPIRun, mpirun
from repro.mpi.network import NetworkModel

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "MAX",
    "MIN",
    "MPIRun",
    "NetworkModel",
    "PROD",
    "Request",
    "SimComm",
    "Status",
    "SUM",
    "mpirun",
]
