"""Network cost model for the simulated MPI.

The classic latency/bandwidth (Hockney) model, with separate intra-node
and inter-node parameters and log-tree costs for collectives — enough to
give applications realistic-looking time structure without simulating a
fabric.  PYTHIA itself never sees these numbers; they only shape the
timestamps the oracle records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machines import ClusterSpec

__all__ = ["NetworkModel"]


@dataclass(frozen=True, slots=True)
class NetworkModel:
    """Point-to-point and collective communication costs.

    ``ranks_per_node`` maps ranks onto nodes round-robin-block style
    (rank r lives on node ``r // ranks_per_node``), mirroring the
    paper's "16 ranks per machine" placement.
    """

    latency: float = 25e-6
    bandwidth: float = 1.25e9
    intra_latency: float = 0.4e-6
    intra_bandwidth: float = 8e9
    ranks_per_node: int = 16

    @classmethod
    def from_cluster(cls, cluster: ClusterSpec, ranks_per_node: int) -> "NetworkModel":
        """Derive the model from a cluster description."""
        return cls(
            latency=cluster.latency,
            bandwidth=cluster.bandwidth,
            intra_latency=cluster.intra_latency,
            intra_bandwidth=cluster.intra_bandwidth,
            ranks_per_node=ranks_per_node,
        )

    def node_of(self, rank: int) -> int:
        """Node hosting ``rank``."""
        return rank // max(self.ranks_per_node, 1)

    def ptp_time(self, src: int, dst: int, size: int) -> float:
        """Transfer time for ``size`` bytes between two ranks."""
        if self.node_of(src) == self.node_of(dst):
            return self.intra_latency + size / self.intra_bandwidth
        return self.latency + size / self.bandwidth

    def collective_time(self, nranks: int, size: int, *, phases: int = 1) -> float:
        """Tree-based collective cost: ``phases * ceil(log2 P)`` stages.

        Each stage moves ``size`` bytes over the slower (inter-node)
        transport when the communicator spans nodes.
        """
        if nranks <= 1:
            return 0.0
        stages = max(1, math.ceil(math.log2(nranks))) * phases
        spans_nodes = self.node_of(0) != self.node_of(nranks - 1)
        lat = self.latency if spans_nodes else self.intra_latency
        bw = self.bandwidth if spans_nodes else self.intra_bandwidth
        return stages * (lat + size / bw)

    def alltoall_time(self, nranks: int, size: int) -> float:
        """All-to-all personalised exchange: P-1 pairwise steps."""
        if nranks <= 1:
            return 0.0
        return (nranks - 1) * (self.latency + size / self.bandwidth)
