"""``mpirun`` for the simulated MPI.

Spawns ``size`` rank processes inside one simulator, runs to completion
and reports per-rank results and the total simulated makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.mpi.comm import SimComm, SimMPIWorld
from repro.mpi.network import NetworkModel
from repro.sim.engine import Process, Simulator

__all__ = ["MPIRun", "mpirun"]

RankMain = Callable[..., Generator]
InterceptorFactory = Callable[[int, SimComm], Any]


@dataclass(slots=True)
class MPIRun:
    """Result of one simulated MPI execution."""

    sim: Simulator
    world: SimMPIWorld
    procs: list[Process]
    interceptors: list[Any] = field(default_factory=list)

    @property
    def time(self) -> float:
        """Total simulated wall time (the makespan)."""
        return self.sim.now

    @property
    def size(self) -> int:
        """Number of ranks."""
        return self.world.size

    def rank_result(self, rank: int) -> Any:
        """Return value of one rank's main generator."""
        return self.procs[rank].value

    def interceptor(self, rank: int) -> Any:
        """The interceptor attached to one rank (if any)."""
        return self.interceptors[rank]


def mpirun(
    size: int,
    main: RankMain,
    *args: Any,
    network: NetworkModel | None = None,
    interceptor_factory: InterceptorFactory | None = None,
    sim: Simulator | None = None,
    name: str = "app",
    **kwargs: Any,
) -> MPIRun:
    """Run ``main(comm, *args, **kwargs)`` on ``size`` simulated ranks.

    ``interceptor_factory(rank, comm)`` attaches a runtime-system shim to
    each rank (the PYTHIA MPI runtime in the experiments).
    """
    sim = sim or Simulator()
    network = network or NetworkModel(ranks_per_node=max(1, size // 4))
    world = SimMPIWorld(sim, size, network)
    procs: list[Process] = []
    interceptors: list[Any] = []
    for rank in range(size):
        comm = world.comm(rank)
        shim = None
        if interceptor_factory is not None:
            shim = interceptor_factory(rank, comm)
            comm.interceptor = shim
        interceptors.append(shim)
        procs.append(sim.spawn(main(comm, *args, **kwargs), name=f"{name}.{rank}"))
    sim.run()
    return MPIRun(sim=sim, world=world, procs=procs, interceptors=interceptors)
