"""The simulated MPI communicator.

Each rank holds a :class:`SimComm` handle.  Point-to-point messages are
matched through per-rank mailboxes with MPI semantics (source/tag
wildcards, non-overtaking order); nonblocking calls return
:class:`Request` objects consumed by ``wait``/``waitall``.  Collectives
synchronise all ranks of the world and complete together after a
tree-model cost.

Every MPI entry point reports itself to the rank's *interceptor* (if
set) — the moral equivalent of the paper's ``LD_PRELOAD`` shim — passing
the same distinguishing payload the paper records: source/destination
for point-to-point calls, the reduction operation for reductions, the
root for rooted collectives (§III-B).

All blocking calls are generators: application skeletons drive them with
``yield from``.
"""

from __future__ import annotations

from typing import Any, Generator, Protocol, Sequence

from repro.mpi.datatypes import ANY_SOURCE, ANY_TAG, Envelope, ReduceOp, Status, SUM
from repro.mpi.network import NetworkModel
from repro.obs import metrics as obs_metrics
from repro.sim.engine import AllOf, SimEvent, Simulator
from repro.sim.resources import Mailbox


def _observe_blocking(fn: str, dt: float) -> None:
    """Record one blocking call's simulated duration (per-function)."""
    obs_metrics.get_registry().histogram(
        "pythia_mpi_blocking_seconds",
        {"fn": fn},
        buckets=obs_metrics.LATENCY_BUCKETS_S,
        help="Simulated time spent inside blocking MPI calls",
    ).observe(dt)

__all__ = ["Interceptor", "Request", "SimComm", "SimMPIWorld"]


class Interceptor(Protocol):
    """What a runtime system plugs into the simulated MPI."""

    def mpi_call(self, fn: str, payload: Any) -> None:
        """An MPI function was entered (record an event)."""

    def mpi_sync(self, fn: str) -> None:
        """A blocking/synchronising function was entered (ask the oracle)."""

    def take_overhead(self) -> float:
        """Oracle time (s) accumulated since the last charge; the
        communicator adds it to simulated time at blocking calls."""


class Request:
    """Handle for a nonblocking operation."""

    __slots__ = ("event", "kind", "status")

    def __init__(self, event: SimEvent, kind: str) -> None:
        self.event = event
        self.kind = kind
        self.status = Status()

    @property
    def complete(self) -> bool:
        """True once the operation finished (test-style check)."""
        return self.event.triggered


class _Collective:
    """One collective operation instance across all ranks."""

    __slots__ = ("kind", "arrivals", "events", "meta")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.arrivals: dict[int, Any] = {}
        self.events: dict[int, SimEvent] = {}
        self.meta: dict[int, Any] = {}


class SimMPIWorld:
    """Shared state of one simulated ``MPI_COMM_WORLD``."""

    def __init__(self, sim: Simulator, size: int, network: NetworkModel) -> None:
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.sim = sim
        self.size = size
        self.network = network
        self.mailboxes = [Mailbox(sim) for _ in range(size)]
        self._coll_counter = [0] * size
        self._collectives: dict[int, _Collective] = {}
        self.stats = {"messages": 0, "bytes": 0, "collectives": 0}

    def comm(self, rank: int) -> "SimComm":
        """The communicator handle of one rank."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range")
        return SimComm(self, rank)

    # -- collective rendezvous -------------------------------------------

    def _collective_arrive(
        self, rank: int, kind: str, value: Any, cost_fn, combine
    ) -> SimEvent:
        """Register one rank's arrival at its next collective.

        ``cost_fn()`` yields the completion delay once everyone arrived;
        ``combine(values_by_rank)`` yields the per-rank results.
        """
        seq = self._coll_counter[rank]
        self._coll_counter[rank] += 1
        ctx = self._collectives.get(seq)
        if ctx is None:
            ctx = _Collective(kind)
            self._collectives[seq] = ctx
        elif ctx.kind != kind:
            raise RuntimeError(
                f"collective mismatch at op #{seq}: rank {rank} called {kind}, "
                f"others called {ctx.kind}"
            )
        if rank in ctx.arrivals:
            raise RuntimeError(f"rank {rank} arrived twice at collective #{seq}")
        ev = self.sim.event(f"{kind}#{seq}@{rank}")
        ctx.arrivals[rank] = value
        ctx.events[rank] = ev
        if len(ctx.arrivals) == self.size:
            del self._collectives[seq]
            self.stats["collectives"] += 1
            results = combine(ctx.arrivals)
            cost = cost_fn()
            for r, rev in ctx.events.items():
                self.sim.call_later(cost, rev.trigger, results[r])
        return ev


class SimComm:
    """Per-rank MPI interface (generator-based blocking calls)."""

    __slots__ = ("world", "rank", "interceptor")

    def __init__(self, world: SimMPIWorld, rank: int) -> None:
        self.world = world
        self.rank = rank
        self.interceptor: Interceptor | None = None

    # -- introspection -----------------------------------------------------

    @property
    def size(self) -> int:
        """Number of ranks in the world."""
        return self.world.size

    @property
    def sim(self) -> Simulator:
        """The underlying simulator (for timeouts/compute phases)."""
        return self.world.sim

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.world.sim.now

    def _note(self, fn: str, payload: Any = None) -> None:
        if self.interceptor is not None:
            self.interceptor.mpi_call(fn, payload)

    def _sync(self, fn: str) -> None:
        if self.interceptor is not None:
            self.interceptor.mpi_sync(fn)

    def _charge(self) -> Generator:
        """Add accumulated oracle overhead to simulated time."""
        if self.interceptor is not None:
            debt = self.interceptor.take_overhead()
            if debt > 0.0:
                yield self.sim.timeout(debt)

    # -- point-to-point ----------------------------------------------------

    def isend(self, data: Any, dest: int, tag: int = 0, size: int = 8) -> Request:
        """Nonblocking send (eager: completes locally at once)."""
        self._note("MPI_Isend", dest)
        return self._post_send(data, dest, tag, size)

    def _post_send(self, data: Any, dest: int, tag: int, size: int) -> Request:
        if not 0 <= dest < self.size:
            raise ValueError(f"invalid destination rank {dest}")
        world = self.world
        env = Envelope(self.rank, dest, tag, size)
        delay = world.network.ptp_time(self.rank, dest, size)
        world.sim.call_later(delay, world.mailboxes[dest].deliver, env, data)
        world.stats["messages"] += 1
        world.stats["bytes"] += size
        ev = world.sim.event("send-done")
        ev.trigger(None)
        return Request(ev, "send")

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive."""
        self._note("MPI_Irecv", source if source != ANY_SOURCE else None)
        ev = self.world.mailboxes[self.rank].receive(
            lambda env: env.matches(source, tag)
        )
        return Request(ev, "recv")

    def send(self, data: Any, dest: int, tag: int = 0, size: int = 8) -> Generator:
        """Blocking send."""
        self._note("MPI_Send", dest)
        yield from self._charge()
        req = self._post_send(data, dest, tag, size)
        yield req.event
        return None

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking receive; returns the payload."""
        self._note("MPI_Recv", source if source != ANY_SOURCE else None)
        yield from self._charge()
        ev = self.world.mailboxes[self.rank].receive(
            lambda env: env.matches(source, tag)
        )
        envelope, payload = yield ev
        return payload

    def wait(self, request: Request) -> Generator:
        """Complete one request; returns the received payload (or None)."""
        self._note("MPI_Wait")
        self._sync("MPI_Wait")
        t0 = self.now
        yield from self._charge()
        value = yield request.event
        _observe_blocking("MPI_Wait", self.now - t0)
        return self._finish(request, value)

    def waitall(self, requests: Sequence[Request]) -> Generator:
        """Complete several requests; returns their payloads in order."""
        self._note("MPI_Waitall")
        self._sync("MPI_Waitall")
        t0 = self.now
        yield from self._charge()
        values = yield AllOf([r.event for r in requests])
        _observe_blocking("MPI_Waitall", self.now - t0)
        return [self._finish(r, v) for r, v in zip(requests, values)]

    @staticmethod
    def _finish(request: Request, value: Any) -> Any:
        if request.kind == "recv" and value is not None:
            envelope, payload = value
            request.status = Status(envelope.source, envelope.tag, envelope.size)
            return payload
        return None

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True if a matching message already arrived."""
        self._note("MPI_Iprobe", source if source != ANY_SOURCE else None)
        return self.world.mailboxes[self.rank].probe(
            lambda env: env.matches(source, tag)
        )

    # -- collectives ---------------------------------------------------------

    def _collective(
        self, fn: str, payload: Any, value: Any, cost_fn, combine
    ) -> Generator:
        self._note(fn, payload)
        self._sync(fn)
        t0 = self.now
        yield from self._charge()
        ev = self.world._collective_arrive(self.rank, fn, value, cost_fn, combine)
        result = yield ev
        _observe_blocking(fn, self.now - t0)
        return result

    def barrier(self) -> Generator:
        """Synchronise all ranks."""
        net, n = self.world.network, self.size
        return self._collective(
            "MPI_Barrier",
            None,
            None,
            lambda: net.collective_time(n, 0),
            lambda vals: {r: None for r in vals},
        )

    def bcast(self, value: Any, root: int = 0, size: int = 8) -> Generator:
        """Broadcast from ``root``; every rank returns the root's value."""
        net, n = self.world.network, self.size
        return self._collective(
            "MPI_Bcast",
            root,
            value if self.rank == root else None,
            lambda: net.collective_time(n, size),
            lambda vals: {r: vals[root] for r in vals},
        )

    def reduce(self, value: Any, op: ReduceOp = SUM, root: int = 0, size: int = 8) -> Generator:
        """Reduce to ``root``; other ranks return None."""
        net, n = self.world.network, self.size

        def combine(vals: dict[int, Any]) -> dict[int, Any]:
            ordered = [vals[r] for r in sorted(vals)]
            result = op.reduce(ordered)
            return {r: (result if r == root else None) for r in vals}

        return self._collective(
            "MPI_Reduce", (str(op), root), value, lambda: net.collective_time(n, size), combine
        )

    def allreduce(self, value: Any, op: ReduceOp = SUM, size: int = 8) -> Generator:
        """Reduce and broadcast; every rank returns the result."""
        net, n = self.world.network, self.size

        def combine(vals: dict[int, Any]) -> dict[int, Any]:
            ordered = [vals[r] for r in sorted(vals)]
            result = op.reduce(ordered)
            return {r: result for r in vals}

        return self._collective(
            "MPI_Allreduce",
            str(op),
            value,
            lambda: net.collective_time(n, size, phases=2),
            combine,
        )

    def gather(self, value: Any, root: int = 0, size: int = 8) -> Generator:
        """Gather to ``root`` (rank-ordered list); others return None."""
        net, n = self.world.network, self.size

        def combine(vals: dict[int, Any]) -> dict[int, Any]:
            ordered = [vals[r] for r in sorted(vals)]
            return {r: (ordered if r == root else None) for r in vals}

        return self._collective(
            "MPI_Gather", root, value, lambda: net.collective_time(n, size * n), combine
        )

    def allgather(self, value: Any, size: int = 8) -> Generator:
        """Gather everywhere; every rank returns the rank-ordered list."""
        net, n = self.world.network, self.size

        def combine(vals: dict[int, Any]) -> dict[int, Any]:
            ordered = [vals[r] for r in sorted(vals)]
            return {r: list(ordered) for r in vals}

        return self._collective(
            "MPI_Allgather",
            None,
            value,
            lambda: net.collective_time(n, size * n, phases=2),
            combine,
        )

    def scatter(self, values: Sequence[Any] | None, root: int = 0, size: int = 8) -> Generator:
        """Scatter ``values`` from ``root``; rank ``i`` returns ``values[i]``."""
        net, n = self.world.network, self.size
        if self.rank == root and (values is None or len(values) != n):
            raise ValueError("scatter root must supply one value per rank")

        def combine(vals: dict[int, Any]) -> dict[int, Any]:
            data = vals[root]
            return {r: data[r] for r in vals}

        return self._collective(
            "MPI_Scatter",
            root,
            values if self.rank == root else None,
            lambda: net.collective_time(n, size * n),
            combine,
        )

    def alltoall(self, values: Sequence[Any], size: int = 8) -> Generator:
        """Personalised all-to-all: rank ``i`` returns ``[v[j][i] for j]``."""
        net, n = self.world.network, self.size
        if len(values) != n:
            raise ValueError("alltoall needs one value per destination rank")

        def combine(vals: dict[int, Any]) -> dict[int, Any]:
            return {r: [vals[src][r] for src in sorted(vals)] for r in vals}

        return self._collective(
            "MPI_Alltoall", None, list(values), lambda: net.alltoall_time(n, size), combine
        )

    def alltoallv(self, values: Sequence[Sequence[Any]], sizes: Sequence[int] | None = None) -> Generator:
        """Variable-size all-to-all (sizes in bytes per destination)."""
        net, n = self.world.network, self.size
        if len(values) != n:
            raise ValueError("alltoallv needs one bucket per destination rank")
        total = sum(sizes) if sizes else 8 * n

        def combine(vals: dict[int, Any]) -> dict[int, Any]:
            return {r: [vals[src][r] for src in sorted(vals)] for r in vals}

        return self._collective(
            "MPI_Alltoallv",
            None,
            [list(v) for v in values],
            lambda: net.alltoall_time(n, max(total // n, 1)),
            combine,
        )

    # -- compute phases ------------------------------------------------------

    def compute(self, seconds: float) -> SimEvent:
        """A local compute phase: ``yield comm.compute(dt)``."""
        return self.sim.timeout(seconds)
