"""Models of the paper's experimental platforms (§III-A1).

Only the parameters that drive the reported trends are modelled: core
counts, relative clock speed, thread-management overheads (for the
OpenMP experiments of §III-D) and network characteristics (for the MPI
experiments on Paravance).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineSpec", "ClusterSpec", "PUDDING", "PIXEL", "PARAVANCE"]


@dataclass(frozen=True, slots=True)
class MachineSpec:
    """A shared-memory node.

    The OpenMP overhead constants follow GNU OpenMP's behaviour: forking
    a parallel region costs a fixed dispatch plus a per-thread wake-up,
    and the closing barrier grows with the thread count.  Spawning a
    brand-new pthread is far more expensive than waking a parked one —
    the asymmetry the paper's thread-pool modification exploits.
    """

    name: str
    cores: int
    threads_per_core: int
    ghz: float
    #: fixed cost to enter any parallel region (s)
    fork_base: float = 1.2e-6
    #: per-woken-thread dispatch cost (s)
    fork_per_thread: float = 0.35e-6
    #: closing barrier: base + log2(n) * factor (s)
    barrier_base: float = 0.6e-6
    barrier_log: float = 0.9e-6
    #: waking a parked pool thread vs creating a fresh one (s)
    thread_wake: float = 1.5e-6
    thread_spawn: float = 60e-6
    #: destroying a thread (GNU OpenMP's default on shrink) (s)
    thread_destroy: float = 25e-6

    @property
    def hw_threads(self) -> int:
        """Total hardware threads (SMT included)."""
        return self.cores * self.threads_per_core

    def cycles_per_second(self) -> float:
        """Clock rate in Hz."""
        return self.ghz * 1e9

    def seconds_for_work(self, work_units: float) -> float:
        """Serial time for an abstract work amount (units of 1e9 cycles)."""
        return work_units / self.ghz


@dataclass(frozen=True, slots=True)
class ClusterSpec:
    """A cluster of identical nodes with a flat Ethernet fabric."""

    name: str
    node: MachineSpec
    nodes: int
    #: inter-node latency (s) and bandwidth (B/s)
    latency: float
    bandwidth: float
    #: intra-node (shared-memory) transport
    intra_latency: float = 0.4e-6
    intra_bandwidth: float = 8e9

    def total_cores(self) -> int:
        """Core count across the whole cluster."""
        return self.node.cores * self.nodes


#: Pudding: 2x Intel Xeon Silver 4116, 24 cores / 48 threads, 2.1 GHz
PUDDING = MachineSpec(name="Pudding", cores=24, threads_per_core=2, ghz=2.1)

#: Pixel: 2x Intel Xeon E5-2630 v3, 16 cores / 32 threads, 2.4 GHz
PIXEL = MachineSpec(name="Pixel", cores=16, threads_per_core=2, ghz=2.4)

#: Paravance: 72 nodes x 16 cores, 10 Gbps Ethernet
PARAVANCE = ClusterSpec(
    name="Paravance",
    node=MachineSpec(name="paravance-node", cores=16, threads_per_core=1, ghz=2.4),
    nodes=72,
    latency=25e-6,
    bandwidth=10e9 / 8,  # 10 Gbps -> 1.25 GB/s
)
