"""repro — a full reproduction of *PYTHIA: an oracle to guide runtime
system decisions* (Colin, Trahay, Conan; IEEE CLUSTER 2022).

Public entry points:

- :class:`repro.Pythia` — the oracle facade (record on first run,
  predict on later runs);
- :class:`repro.PythiaRecord` / :class:`repro.PythiaPredict` — the two
  halves used directly;
- :mod:`repro.mpi` / :mod:`repro.openmp` — the simulated runtime-system
  substrates the evaluation runs on;
- :mod:`repro.apps` — the 13 evaluated application skeletons;
- :mod:`repro.experiments` — regenerates every table and figure of the
  paper's evaluation section;
- :mod:`repro.server` — the oracle service (a multi-client prediction
  daemon with a shared trace store) and its :class:`PythiaClient`.
"""

from repro.core import (
    Event,
    EventRegistry,
    FrozenGrammar,
    Grammar,
    GrammarError,
    Prediction,
    Pythia,
    PythiaPredict,
    PythiaRecord,
    TimingTable,
    Trace,
    TraceFormatError,
    load_trace,
    save_trace,
)

__version__ = "1.0.0"

__all__ = [
    "Event",
    "EventRegistry",
    "FrozenGrammar",
    "Grammar",
    "GrammarError",
    "Prediction",
    "Pythia",
    "PythiaPredict",
    "PythiaRecord",
    "TimingTable",
    "Trace",
    "TraceFormatError",
    "load_trace",
    "save_trace",
    "__version__",
]
