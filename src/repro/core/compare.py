"""Comparing executions: where does a run diverge from its reference?

The paper positions PYTHIA next to trace-diffing work (DiffTrace) and
its §III-E experiment quantifies behaviour under divergence.  This
module gives that analysis a first-class API:

- :func:`follow` replays an event stream against a reference grammar
  and reports every *divergence point* (§ II-B2's unexpected events),
  with the tracker's expectation at that moment;
- :func:`similarity` condenses the replay into one score — the fraction
  of events that matched the oracle's expectation — which is what a
  runtime system would use to decide whether a stale reference trace is
  still worth consulting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.frozen import FrozenGrammar
from repro.core.predict import PythiaPredict

__all__ = ["Divergence", "ReplayReport", "follow", "similarity"]


@dataclass(frozen=True, slots=True)
class Divergence:
    """One point where the execution left the reference behaviour."""

    index: int            # position in the replayed stream
    got: int              # the terminal that actually occurred
    expected: int | None  # the oracle's top expectation (None: no idea)
    kind: str             # "unexpected" (known event, wrong place) | "unknown"


@dataclass(slots=True)
class ReplayReport:
    """Outcome of replaying one stream against a reference grammar."""

    total: int = 0
    matched: int = 0
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def match_fraction(self) -> float:
        """Fraction of events the oracle expected (1.0 = identical run)."""
        return self.matched / self.total if self.total else 1.0

    def summary(self) -> str:
        """One-line human-readable form."""
        return (
            f"{self.matched}/{self.total} events matched "
            f"({100 * self.match_fraction:.1f} %), "
            f"{len(self.divergences)} divergence(s)"
        )


def follow(
    fg: FrozenGrammar,
    stream: Iterable[int],
    *,
    max_divergences: int | None = None,
    max_candidates: int = 64,
) -> ReplayReport:
    """Replay ``stream`` against ``fg``, recording every divergence.

    The first event is a mid-stream attach and is not counted as a
    divergence (the paper's tracker never assumes it sees the start of
    the execution).
    """
    report = ReplayReport()
    tracker = PythiaPredict(fg, max_candidates=max_candidates)
    for i, terminal in enumerate(stream):
        expected = None
        if not tracker.lost and i > 0:
            pred = tracker.predict(1)
            if pred is not None:
                expected = pred.terminal
        ok = tracker.observe(terminal)
        report.total += 1
        if ok:
            report.matched += 1
        elif i > 0:
            kind = "unknown" if terminal not in fg.terminal_positions else "unexpected"
            report.divergences.append(
                Divergence(index=i, got=terminal, expected=expected, kind=kind)
            )
            if max_divergences is not None and len(report.divergences) >= max_divergences:
                break
    return report


def similarity(fg: FrozenGrammar, stream: Sequence[int]) -> float:
    """Match fraction of ``stream`` against the reference grammar."""
    return follow(fg, stream).match_fraction
