"""Provenance for oracle predictions: *why* did PYTHIA say that?

A prediction is an aggregate over candidate progress sequences (§II-B):
each candidate is a weighted position in the reference grammar, the
simulated future of each candidate contributes its weight to the
terminals it reaches, and :meth:`~repro.core.predict.PythiaPredict.predict`
reports the heaviest terminal.  That aggregation is exactly what a
consumer cannot see — a 0.55 probability backed by one ambiguous restart
looks identical to one backed by two well-confirmed loop positions.

:meth:`PythiaPredict.explain` re-runs the same simulation (same floats,
no counters touched) and keeps the final candidate set, which this
module renders as an :class:`Explanation`: per predicted terminal, the
candidate progress sequences that back it — their grammar rule paths
(bottom-first, as in Fig. 4), their normalized occurrence weights, and
how the probability mass was assembled — plus which traversal produced
it (the compiled successor machine or the ``compiled=False`` reference
path).  Everything serializes to JSON (:meth:`Explanation.to_obj`), so
the same payload flows through the daemon's ``explain`` op and the
``pythia-trace explain`` CLI verb.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SourceChain", "EventExplanation", "Explanation"]


@dataclass(frozen=True, slots=True)
class SourceChain:
    """One candidate progress sequence backing a predicted event.

    ``chain`` is the progress sequence itself — ``(rule, body index,
    iteration)`` steps, bottom-first (§II-B, Fig. 4); the empty tuple is
    the END-of-execution candidate.  ``weight`` is its normalized share
    of the candidate mass after the simulated ``distance`` steps: the
    occurrence weighting applied at (re)start time and every pruning
    since are already folded in.
    """

    chain: tuple
    terminal: int | None
    weight: float

    @property
    def rule_path(self) -> tuple[int, ...]:
        """Grammar rules traversed, bottom-first (innermost rule first)."""
        return tuple(step[0] for step in self.chain)

    def to_obj(self) -> dict:
        return {
            "chain": [list(step) for step in self.chain],
            "rule_path": list(self.rule_path),
            "terminal": self.terminal,
            "weight": self.weight,
        }

    @staticmethod
    def from_obj(obj: dict) -> "SourceChain":
        return SourceChain(
            chain=tuple(tuple(step) for step in obj["chain"]),
            terminal=obj["terminal"],
            weight=obj["weight"],
        )


@dataclass(frozen=True, slots=True)
class EventExplanation:
    """One predicted terminal with the sources of its probability mass.

    ``probability`` is exactly the mass :meth:`PythiaPredict.predict`
    reports for this terminal; ``sources`` lists the backing candidate
    chains heaviest-first (possibly truncated — ``source_count`` is the
    untruncated number, and ``probability`` always covers all of them).
    """

    terminal: int | None
    probability: float
    sources: tuple[SourceChain, ...]
    source_count: int

    def to_obj(self) -> dict:
        return {
            "terminal": self.terminal,
            "probability": self.probability,
            "source_count": self.source_count,
            "sources": [s.to_obj() for s in self.sources],
        }

    @staticmethod
    def from_obj(obj: dict) -> "EventExplanation":
        return EventExplanation(
            terminal=obj["terminal"],
            probability=obj["probability"],
            sources=tuple(SourceChain.from_obj(s) for s in obj["sources"]),
            source_count=obj["source_count"],
        )


@dataclass(frozen=True, slots=True)
class Explanation:
    """Provenance of one oracle query, JSON-serializable.

    ``events`` holds the top-k predicted terminals, heaviest first with
    ties in candidate-insertion order — so ``events[0]`` is *exactly*
    the terminal and probability :meth:`PythiaPredict.predict` would
    return for the same state and distance.  ``path`` records which
    traversal produced it (``"compiled"`` or ``"reference"``; both are
    byte-identical, the field exists so a surprising prediction can be
    pinned to the machine that served it), and ``deterministic`` whether
    every simulated step stayed on the single-successor fast path.
    """

    distance: int
    path: str
    deterministic: bool
    candidates: int
    eta: float | None
    events: tuple[EventExplanation, ...]

    @property
    def terminal(self) -> int | None:
        """The predicted terminal (``events[0]``), as ``predict()`` reports."""
        return self.events[0].terminal

    @property
    def probability(self) -> float:
        """The predicted probability (``events[0]``)."""
        return self.events[0].probability

    def to_obj(self, name_of=None) -> dict:
        """Plain-dict form; ``name_of(terminal)`` adds human names."""
        events = []
        for ev in self.events:
            obj = ev.to_obj()
            if name_of is not None:
                obj["name"] = None if ev.terminal is None else name_of(ev.terminal)
            events.append(obj)
        return {
            "distance": self.distance,
            "path": self.path,
            "deterministic": self.deterministic,
            "candidates": self.candidates,
            "eta": self.eta,
            "terminal": self.terminal,
            "probability": self.probability,
            "events": events,
        }

    @staticmethod
    def from_obj(obj: dict) -> "Explanation":
        return Explanation(
            distance=obj["distance"],
            path=obj["path"],
            deterministic=obj["deterministic"],
            candidates=obj["candidates"],
            eta=obj.get("eta"),
            events=tuple(EventExplanation.from_obj(e) for e in obj["events"]),
        )

    def describe(self, name_of=None) -> str:
        """Multi-line human rendering (the CLI's output)."""
        label = (
            (lambda t: "<end>" if t is None else (name_of(t) if name_of else f"#{t}"))
        )
        lines = [
            f"explain distance={self.distance} path={self.path}"
            f" deterministic={self.deterministic} candidates={self.candidates}"
        ]
        for rank, ev in enumerate(self.events, start=1):
            lines.append(
                f"  {rank}. {label(ev.terminal)}  p={ev.probability:.4f}"
                f"  ({ev.source_count} source chain{'s' if ev.source_count != 1 else ''})"
            )
            for src in ev.sources:
                path = "·".join(f"R{r}" for r in src.rule_path) or "<end>"
                lines.append(f"       w={src.weight:.4f}  rules {path}")
        return "\n".join(lines)
