"""Duration estimation (§II-C of the paper).

PYTHIA-RECORD optionally logs the timestamp of every event.  At the end of
the reference execution, the event sequence is *replayed* through the
prediction algorithm: for every event, the replay knows the full progress
sequence, and the elapsed time since the previous event is accumulated for
**every suffix** of that progress sequence.

This yields the context-sensitive estimates of Fig. 6: the duration
attached to the deep suffix ``B A b`` averages only the occurrences of
``b`` that happen in that context, while the shallow suffix ``A b``
averages all four occurrences of ``b`` after an ``a``.  At prediction
time, the longest recorded suffix of the candidate chain is used, so more
context means a tighter estimate.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.frozen import FrozenGrammar
from repro.core.progress import Chain, advance_exact, initial_chain, suffix_key

SuffixKey = tuple[tuple[int, int], ...]


class TimingTable:
    """Mean inter-event durations keyed by progress-sequence suffixes."""

    __slots__ = ("_sums", "_counts")

    def __init__(self) -> None:
        self._sums: dict[SuffixKey, float] = {}
        self._counts: dict[SuffixKey, int] = {}

    def __len__(self) -> int:
        return len(self._sums)

    def add(self, chain: Chain, dt: float) -> None:
        """Accumulate one observed delay for every suffix of ``chain``."""
        for depth in range(1, len(chain) + 1):
            key = suffix_key(chain, depth)
            self._sums[key] = self._sums.get(key, 0.0) + dt
            self._counts[key] = self._counts.get(key, 0) + 1

    def mean(self, key: SuffixKey) -> float | None:
        """Mean delay recorded for an exact suffix key, or ``None``."""
        count = self._counts.get(key)
        if not count:
            return None
        return self._sums[key] / count

    def count(self, key: SuffixKey) -> int:
        """Number of samples recorded for an exact suffix key."""
        return self._counts.get(key, 0)

    def estimate(self, chain: Chain) -> float | None:
        """Best duration estimate for stepping onto ``chain``.

        Looks up the longest recorded suffix (most context), falling back
        to shallower ones; ``None`` if even the single-step suffix is
        unknown.
        """
        for depth in range(len(chain), 0, -1):
            value = self.mean(suffix_key(chain, depth))
            if value is not None:
                return value
        return None

    # ------------------------------------------------------------------

    @classmethod
    def from_replay(
        cls,
        fg: FrozenGrammar,
        timestamps: Sequence[float],
    ) -> "TimingTable":
        """Build the table by replaying the reference trace (§II-C).

        ``timestamps[i]`` is the time of the ``i``-th event of the trace
        the grammar represents; the grammar itself supplies the event
        sequence, so only timestamps must be kept by the recorder.
        """
        table = cls()
        n = fg.trace_len
        if len(timestamps) != n:
            raise ValueError(
                f"{len(timestamps)} timestamps for a trace of {n} events"
            )
        if n == 0:
            return table
        chain = initial_chain(fg)
        prev_ts = timestamps[0]
        for i in range(1, n):
            chain = advance_exact(fg, chain)
            if chain == ():
                raise RuntimeError("replay ended before the trace did")
            dt = timestamps[i] - prev_ts
            table.add(chain, dt)
            prev_ts = timestamps[i]
        return table

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_obj(self) -> list[list]:
        """JSON-compatible representation."""
        out = []
        for key, total in self._sums.items():
            flat = [v for pair in key for v in pair]
            out.append([flat, total, self._counts[key]])
        return out

    @classmethod
    def from_obj(cls, obj: list) -> "TimingTable":
        """Inverse of :meth:`to_obj`."""
        table = cls()
        for flat, total, count in obj:
            key = tuple((flat[i], flat[i + 1]) for i in range(0, len(flat), 2))
            table._sums[key] = float(total)
            table._counts[key] = int(count)
        return table
